"""View projection ``L(·)`` for λJDB (Section 4.3).

A view ``L`` is a set of label names the observer is authorised to see.
Projection collapses faceted values, drops table rows whose branches are not
visible, and recursively projects stores and expressions.  The Projection
Theorem states that faceted evaluation projects to standard evaluation under
every view; the property tests use these functions to check it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from repro.lambda_jdb import ast
from repro.lambda_jdb.store import Store
from repro.lambda_jdb.values import Closure, FacetV, TableV, Value

#: A view is a frozen set of label names; labels not present read as False.
LView = FrozenSet[str]


def make_view(labels: Iterable[str]) -> LView:
    return frozenset(labels)


def branch_visible(branches, view: LView) -> bool:
    """The ``B ~ L`` relation: every positive label in L, every negative not."""
    for name, polarity in branches:
        if (name in view) != polarity:
            return False
    return True


def project_value(value: Value, view: LView) -> Value:
    """``L(V)``: collapse facets and filter table rows."""
    if isinstance(value, FacetV):
        chosen = value.high if value.label in view else value.low
        return project_value(chosen, view)
    if isinstance(value, TableV):
        rows = tuple(
            (frozenset(), fields)
            for branches, fields in value.rows
            if branch_visible(branches, view)
        )
        return TableV(rows)
    if isinstance(value, Closure):
        projected_env = tuple(
            (name, project_value(captured, view)) for name, captured in value.env
        )
        return Closure(value.param, project_expr(value.body, view), projected_env)
    return value


def project_store(store: Store, view: LView) -> Dict[str, Value]:
    """``L(Σ)`` restricted to the heap, keyed by address index.

    Policies are omitted: the Projection Theorem only constrains heap
    contents (policies influence outputs via print, which is compared on the
    projected values it produces).
    """
    return {
        address.index: project_value(value, view) for address, value in store.heap_items()
    }


def project_expr(expr: ast.Expr, view: LView) -> ast.Expr:
    """``L(e)``: choose facet sides according to the view, recursively."""
    if isinstance(expr, ast.FacetExpr):
        chosen = expr.high if expr.label in view else expr.low
        return project_expr(chosen, view)
    if isinstance(expr, (ast.Var, ast.Const)):
        return expr
    if isinstance(expr, ast.Lam):
        return ast.Lam(expr.param, project_expr(expr.body, view))
    if isinstance(expr, ast.App):
        return ast.App(project_expr(expr.fn, view), project_expr(expr.arg, view))
    if isinstance(expr, ast.Let):
        return ast.Let(
            expr.name, project_expr(expr.value, view), project_expr(expr.body, view)
        )
    if isinstance(expr, ast.Ref):
        return ast.Ref(project_expr(expr.init, view))
    if isinstance(expr, ast.Deref):
        return ast.Deref(project_expr(expr.ref, view))
    if isinstance(expr, ast.Assign):
        return ast.Assign(project_expr(expr.target, view), project_expr(expr.value, view))
    if isinstance(expr, ast.LabelDecl):
        return ast.LabelDecl(expr.label, project_expr(expr.body, view))
    if isinstance(expr, ast.Restrict):
        return ast.Restrict(expr.label, project_expr(expr.policy, view))
    if isinstance(expr, ast.Row):
        return ast.Row(tuple(project_expr(field, view) for field in expr.fields))
    if isinstance(expr, ast.Select):
        return ast.Select(expr.i, expr.j, project_expr(expr.table, view))
    if isinstance(expr, ast.Project):
        return ast.Project(expr.columns, project_expr(expr.table, view))
    if isinstance(expr, ast.Join):
        return ast.Join(project_expr(expr.left, view), project_expr(expr.right, view))
    if isinstance(expr, ast.Union):
        return ast.Union(project_expr(expr.left, view), project_expr(expr.right, view))
    if isinstance(expr, ast.Fold):
        return ast.Fold(
            project_expr(expr.fn, view),
            project_expr(expr.init, view),
            project_expr(expr.table, view),
        )
    if isinstance(expr, ast.If):
        return ast.If(
            project_expr(expr.cond, view),
            project_expr(expr.then, view),
            project_expr(expr.orelse, view),
        )
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, project_expr(expr.left, view), project_expr(expr.right, view))
    if isinstance(expr, ast.Print):
        return ast.Print(project_expr(expr.viewer, view), project_expr(expr.value, view))
    raise TypeError(f"unknown expression node {expr!r}")


def values_equivalent(a: Value, b: Value, view: LView) -> bool:
    """L-equivalence of two values: their projections under L coincide."""
    return _normalise(project_value(a, view)) == _normalise(project_value(b, view))


def _normalise(value: Value) -> object:
    """A comparable normal form for projected values."""
    if isinstance(value, TableV):
        return ("table", tuple(sorted(fields for _branches, fields in value.rows)))
    if isinstance(value, Closure):
        return ("closure", value.param, value.body)
    if isinstance(value, FacetV):  # projection removes facets; defensive
        return ("facet", value.label, _normalise(value.high), _normalise(value.low))
    return value
