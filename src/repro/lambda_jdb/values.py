"""Runtime values for the λJDB interpreter.

The value grammar of Section 4.2::

    R ::= c | a | (λx.e)            raw values
    F ::= R | <k ? F1 : F2>          faceted values
    T ::= ((B, s...) ...)            tables of branch-annotated string rows
    V ::= F | table T

Constants are Python ``bool``/``int``/``str``/``None``/``tuple`` objects
(tuples appear only as row contents handed to fold functions).  Tables store
each row with the set of branches describing who can see it, exactly as the
paper's faceted-row representation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.lambda_jdb.ast import Expr

#: A branch is (label name, polarity); ``("k", False)`` means ``¬k``.
BranchT = Tuple[str, bool]

#: The program counter: a frozen set of branches.
PC = FrozenSet[BranchT]

EMPTY_PC: PC = frozenset()


@dataclass(frozen=True)
class Address:
    """A heap address produced by ``ref``."""

    index: int

    def __repr__(self) -> str:
        return f"@{self.index}"


@dataclass(frozen=True)
class Closure:
    """A lambda value together with its captured environment."""

    param: str
    body: Expr
    env: Tuple[Tuple[str, object], ...]

    def __repr__(self) -> str:
        return f"Closure({self.param})"

    def env_dict(self) -> Dict[str, object]:
        return dict(self.env)


@dataclass(frozen=True)
class FacetV:
    """A faceted value ``<label ? high : low>`` over non-table values."""

    label: str
    high: object
    low: object

    def __repr__(self) -> str:
        return f"<{self.label} ? {self.high!r} : {self.low!r}>"


@dataclass(frozen=True)
class TableV:
    """A table: a tuple of ``(branches, fields)`` rows.

    ``branches`` is a frozen set of ``(label, polarity)`` pairs; ``fields``
    is a tuple of strings.  All rows of a table have the same arity.
    """

    rows: Tuple[Tuple[PC, Tuple[str, ...]], ...]

    def __repr__(self) -> str:
        return f"TableV({list(self.rows)!r})"

    def arity(self) -> Optional[int]:
        """Number of columns, or ``None`` for the empty table."""
        if not self.rows:
            return None
        return len(self.rows[0][1])


Value = object  # raw constants | Address | Closure | FacetV | TableV


def is_table(value: Value) -> bool:
    return isinstance(value, TableV)


def is_facet(value: Value) -> bool:
    return isinstance(value, FacetV)


def branch_negate(branch: BranchT) -> BranchT:
    name, polarity = branch
    return (name, not polarity)


def pc_consistent(branches: Iterable[BranchT], pc: PC) -> bool:
    """The "B consistent with pc" side condition of the fold rules."""
    for branch in branches:
        if branch_negate(branch) in pc:
            return False
    return True


def branches_consistent(branches: Iterable[BranchT]) -> bool:
    """True if a branch set does not contain a label and its negation."""
    seen: Dict[str, bool] = {}
    for name, polarity in branches:
        if name in seen and seen[name] != polarity:
            return False
        seen[name] = polarity
    return True


def values_equal(a: Value, b: Value) -> bool:
    """Structural equality on values (used by the sharing optimisation)."""
    if isinstance(a, FacetV) and isinstance(b, FacetV):
        return (
            a.label == b.label
            and values_equal(a.high, b.high)
            and values_equal(a.low, b.low)
        )
    if isinstance(a, TableV) and isinstance(b, TableV):
        return set(a.rows) == set(b.rows)
    if isinstance(a, (FacetV, TableV)) or isinstance(b, (FacetV, TableV)):
        return False
    if isinstance(a, Closure) or isinstance(b, Closure):
        return a is b
    return type(a) is type(b) and a == b


def make_facet_value(label: str, high: Value, low: Value) -> Value:
    """The ``⟨⟨k ? V_H : V_L⟩⟩`` operation of Section 4.2.

    For non-table values this builds a facet node (collapsing when both sides
    are identical).  For two tables it builds a single table whose rows carry
    ``k`` / ``¬k`` annotations, sharing rows common to both sides.  Mixing a
    table with a non-table value is a stuck program (raises ``TypeError``),
    mirroring the footnote in the paper.
    """
    high_is_table = isinstance(high, TableV)
    low_is_table = isinstance(low, TableV)
    if high_is_table != low_is_table:
        raise TypeError("cannot mix tables and non-tables in one faceted value")
    if not high_is_table:
        if values_equal(high, low):
            return high
        return FacetV(label, high, low)

    assert isinstance(high, TableV) and isinstance(low, TableV)
    high_rows = list(high.rows)
    low_rows = list(low.rows)
    # Tables are bags, so sharing must respect multiplicity: a row occurring
    # h times in the high table and l times in the low table contributes
    # min(h, l) unannotated copies plus the per-side excess under k / ¬k.
    high_counts = Counter(high_rows)
    low_counts = Counter(low_rows)
    shared_counts = {
        row: min(count, low_counts.get(row, 0)) for row, count in high_counts.items()
    }
    result = []
    seen_high: Counter = Counter()
    for branches, fields in high_rows:
        row = (branches, fields)
        seen_high[row] += 1
        if seen_high[row] <= shared_counts.get(row, 0):
            result.append(row)
            continue
        if (label, False) in branches:
            continue
        result.append((frozenset(branches | {(label, True)}), fields))
    seen_low: Counter = Counter()
    for branches, fields in low_rows:
        row = (branches, fields)
        seen_low[row] += 1
        if seen_low[row] <= shared_counts.get(row, 0):
            continue
        if (label, True) in branches:
            continue
        result.append((frozenset(branches | {(label, False)}), fields))
    return TableV(tuple(result))


def make_facet_branches(branches: Iterable[BranchT], high: Value, low: Value) -> Value:
    """The ``⟨⟨B ? V_H : V_L⟩⟩`` operation over a set of branches."""
    branch_list = list(branches)
    if not branch_list:
        return high
    (name, polarity), rest = branch_list[0], branch_list[1:]
    inner = make_facet_branches(rest, high, low)
    if polarity:
        return make_facet_value(name, inner, low)
    return make_facet_value(name, low, inner)


def collect_value_labels(value: Value) -> FrozenSet[str]:
    """All label names reachable from a value (facets, table rows, closures)."""
    found: set = set()

    def walk(node: Value) -> None:
        if isinstance(node, FacetV):
            found.add(node.label)
            walk(node.high)
            walk(node.low)
        elif isinstance(node, TableV):
            for branches, _ in node.rows:
                for name, _pol in branches:
                    found.add(name)
        elif isinstance(node, Closure):
            for _, captured in node.env:
                walk(captured)

    walk(value)
    return frozenset(found)
