"""An executable interpreter for the λJDB core calculus (Section 4).

λJDB extends λjeeves (an imperative λ-calculus with labels, policies and
faceted expressions) with relational tables and the operators of the
relational calculus: ``row``, selection, projection, join/cross product,
union and ``fold``.  This package implements:

* the abstract syntax (:mod:`repro.lambda_jdb.ast`);
* runtime values, faceted tables and the store (:mod:`repro.lambda_jdb.values`,
  :mod:`repro.lambda_jdb.store`);
* the big-step faceted evaluation relation ``Σ, e ⇓pc Σ', V`` with every rule
  of Figures 4 and 5 plus the λjeeves rules of Appendix A
  (:mod:`repro.lambda_jdb.interpreter`);
* the view projection ``L(·)`` used by the Projection and Non-Interference
  theorems (:mod:`repro.lambda_jdb.views`);
* the Early Pruning rule F-PRUNE (:mod:`repro.lambda_jdb.pruning`);
* an s-expression front end for writing λJDB programs as text
  (:mod:`repro.lambda_jdb.parser`).

The property-based tests in ``tests/lambda_jdb`` use this interpreter to
check the paper's theorems on randomly generated programs.
"""

from repro.lambda_jdb.ast import (
    App,
    Assign,
    BinOp,
    Const,
    Deref,
    Expr,
    FacetExpr,
    Fold,
    If,
    Join,
    LabelDecl,
    Lam,
    Let,
    Print,
    Project,
    Ref,
    Restrict,
    Row,
    Select,
    Union,
    Var,
)
from repro.lambda_jdb.values import (
    Address,
    Closure,
    FacetV,
    TableV,
    Value,
    make_facet_value,
    make_facet_branches,
)
from repro.lambda_jdb.store import Store
from repro.lambda_jdb.interpreter import EvalError, Interpreter, evaluate
from repro.lambda_jdb.views import (
    LView,
    make_view,
    project_expr,
    project_store,
    project_value,
    values_equivalent,
)
from repro.lambda_jdb.pruning import prune_table, prune_value
from repro.lambda_jdb.parser import ParseError, parse, parse_program
from repro.lambda_jdb.pprint import pretty

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Lam",
    "App",
    "Ref",
    "Deref",
    "Assign",
    "FacetExpr",
    "LabelDecl",
    "Restrict",
    "Row",
    "Select",
    "Project",
    "Join",
    "Union",
    "Fold",
    "Let",
    "Print",
    "If",
    "BinOp",
    "Value",
    "Closure",
    "FacetV",
    "TableV",
    "Address",
    "make_facet_value",
    "make_facet_branches",
    "Store",
    "Interpreter",
    "evaluate",
    "EvalError",
    "LView",
    "make_view",
    "project_value",
    "project_store",
    "project_expr",
    "values_equivalent",
    "prune_table",
    "prune_value",
    "parse",
    "parse_program",
    "ParseError",
    "pretty",
]
