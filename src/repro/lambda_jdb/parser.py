"""An s-expression front end for λJDB.

Grammar (s-expressions)::

    (lambda (x) body)             λx. body
    (let x value body)            let x = value in body
    (facet k high low)            <k ? high : low>
    (label k body)                label k in body
    (restrict k policy)           restrict(k, policy)
    (ref e)  (deref e)  (assign target value)
    (row e ...)                   single-row table
    (select i j table)            σ[i=j]
    (project (i ...) table)       π[i...]
    (join a b)  (union a b)
    (fold fn init table)
    (print viewer value)
    (if cond then else)
    (+ a b) (- a b) (* a b) (== a b) (!= a b) (< a b) (<= a b) (> a b)
    (>= a b) (and a b) (or a b) (field tuple i)
    (f x)                         application (any other head)

Atoms: integers, ``true``/``false``, ``unit`` (None), double-quoted strings,
and identifiers (variables).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from repro.lambda_jdb import ast


class ParseError(Exception):
    """Raised on malformed λJDB source text."""


Token = str
SExpr = Union[str, int, List["SExpr"]]

_BINOPS = {"+", "-", "*", "==", "!=", "<", "<=", ">", ">=", "and", "or", "field"}


def tokenize(text: str) -> List[Token]:
    """Split source text into parentheses, strings and atoms."""
    tokens: List[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == ";":
            while i < length and text[i] != "\n":
                i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == '"':
            j = i + 1
            buffer = []
            while j < length and text[j] != '"':
                if text[j] == "\\" and j + 1 < length:
                    buffer.append(text[j + 1])
                    j += 2
                else:
                    buffer.append(text[j])
                    j += 1
            if j >= length:
                raise ParseError("unterminated string literal")
            tokens.append('"' + "".join(buffer))
            i = j + 1
        else:
            j = i
            while j < length and not text[j].isspace() and text[j] not in '();"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _read(tokens: List[Token], position: int) -> Tuple[SExpr, int]:
    if position >= len(tokens):
        raise ParseError("unexpected end of input")
    token = tokens[position]
    if token == "(":
        items: List[SExpr] = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            item, position = _read(tokens, position)
            items.append(item)
        if position >= len(tokens):
            raise ParseError("missing closing parenthesis")
        return items, position + 1
    if token == ")":
        raise ParseError("unexpected ')'")
    return token, position + 1


def read_sexprs(text: str) -> List[SExpr]:
    """Read every top-level s-expression in ``text``."""
    tokens = tokenize(text)
    position = 0
    result: List[SExpr] = []
    while position < len(tokens):
        sexpr, position = _read(tokens, position)
        result.append(sexpr)
    return result


def _atom_to_expr(token: str) -> ast.Expr:
    if token.startswith('"'):
        return ast.Const(token[1:])
    if token == "true":
        return ast.Const(True)
    if token == "false":
        return ast.Const(False)
    if token == "unit":
        return ast.Const(None)
    try:
        return ast.Const(int(token))
    except ValueError:
        return ast.Var(token)


def _to_expr(sexpr: SExpr) -> ast.Expr:
    if isinstance(sexpr, str):
        return _atom_to_expr(sexpr)
    if not isinstance(sexpr, list) or not sexpr:
        raise ParseError(f"cannot parse {sexpr!r}")
    head = sexpr[0]
    if isinstance(head, str):
        if head == "lambda":
            if len(sexpr) != 3 or not isinstance(sexpr[1], list) or len(sexpr[1]) != 1:
                raise ParseError("lambda expects (lambda (x) body)")
            param = sexpr[1][0]
            if not isinstance(param, str):
                raise ParseError("lambda parameter must be an identifier")
            return ast.Lam(param, _to_expr(sexpr[2]))
        if head == "let":
            if len(sexpr) != 4 or not isinstance(sexpr[1], str):
                raise ParseError("let expects (let x value body)")
            return ast.Let(sexpr[1], _to_expr(sexpr[2]), _to_expr(sexpr[3]))
        if head == "facet":
            if len(sexpr) != 4 or not isinstance(sexpr[1], str):
                raise ParseError("facet expects (facet k high low)")
            return ast.FacetExpr(sexpr[1], _to_expr(sexpr[2]), _to_expr(sexpr[3]))
        if head == "label":
            if len(sexpr) != 3 or not isinstance(sexpr[1], str):
                raise ParseError("label expects (label k body)")
            return ast.LabelDecl(sexpr[1], _to_expr(sexpr[2]))
        if head == "restrict":
            if len(sexpr) != 3 or not isinstance(sexpr[1], str):
                raise ParseError("restrict expects (restrict k policy)")
            return ast.Restrict(sexpr[1], _to_expr(sexpr[2]))
        if head == "ref":
            _expect_arity(sexpr, 2, "ref")
            return ast.Ref(_to_expr(sexpr[1]))
        if head == "deref":
            _expect_arity(sexpr, 2, "deref")
            return ast.Deref(_to_expr(sexpr[1]))
        if head == "assign":
            _expect_arity(sexpr, 3, "assign")
            return ast.Assign(_to_expr(sexpr[1]), _to_expr(sexpr[2]))
        if head == "row":
            return ast.Row(tuple(_to_expr(item) for item in sexpr[1:]))
        if head == "select":
            _expect_arity(sexpr, 4, "select")
            return ast.Select(_as_int(sexpr[1]), _as_int(sexpr[2]), _to_expr(sexpr[3]))
        if head == "project":
            _expect_arity(sexpr, 3, "project")
            if not isinstance(sexpr[1], list):
                raise ParseError("project expects a list of column indices")
            columns = tuple(_as_int(item) for item in sexpr[1])
            return ast.Project(columns, _to_expr(sexpr[2]))
        if head == "join":
            _expect_arity(sexpr, 3, "join")
            return ast.Join(_to_expr(sexpr[1]), _to_expr(sexpr[2]))
        if head == "union":
            _expect_arity(sexpr, 3, "union")
            return ast.Union(_to_expr(sexpr[1]), _to_expr(sexpr[2]))
        if head == "fold":
            _expect_arity(sexpr, 4, "fold")
            return ast.Fold(_to_expr(sexpr[1]), _to_expr(sexpr[2]), _to_expr(sexpr[3]))
        if head == "print":
            _expect_arity(sexpr, 3, "print")
            return ast.Print(_to_expr(sexpr[1]), _to_expr(sexpr[2]))
        if head == "if":
            _expect_arity(sexpr, 4, "if")
            return ast.If(_to_expr(sexpr[1]), _to_expr(sexpr[2]), _to_expr(sexpr[3]))
        if head in _BINOPS:
            _expect_arity(sexpr, 3, head)
            return ast.BinOp(head, _to_expr(sexpr[1]), _to_expr(sexpr[2]))
    # Application: (f a b c) curries to (((f a) b) c)
    exprs = [_to_expr(item) for item in sexpr]
    result = exprs[0]
    for arg in exprs[1:]:
        result = ast.App(result, arg)
    return result


def _expect_arity(sexpr: List[SExpr], arity: int, name: str) -> None:
    if len(sexpr) != arity:
        raise ParseError(f"{name} expects {arity - 1} argument(s), got {len(sexpr) - 1}")


def _as_int(sexpr: SExpr) -> int:
    if isinstance(sexpr, str):
        try:
            return int(sexpr)
        except ValueError as exc:
            raise ParseError(f"expected an integer, got {sexpr!r}") from exc
    raise ParseError(f"expected an integer, got {sexpr!r}")


def parse(text: str) -> ast.Expr:
    """Parse a single λJDB expression from source text."""
    sexprs = read_sexprs(text)
    if len(sexprs) != 1:
        raise ParseError(f"expected exactly one expression, got {len(sexprs)}")
    return _to_expr(sexprs[0])


def parse_program(text: str) -> List[ast.Expr]:
    """Parse a sequence of top-level λJDB expressions (statements)."""
    return [_to_expr(sexpr) for sexpr in read_sexprs(text)]
