"""Pretty-printing λJDB expressions and values back to s-expression text."""

from __future__ import annotations

from repro.lambda_jdb import ast
from repro.lambda_jdb.values import Closure, FacetV, TableV, Value


def pretty(expr: ast.Expr) -> str:
    """Render an expression as parseable s-expression text."""
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Const):
        return _const(expr.value)
    if isinstance(expr, ast.Lam):
        return f"(lambda ({expr.param}) {pretty(expr.body)})"
    if isinstance(expr, ast.App):
        return f"({pretty(expr.fn)} {pretty(expr.arg)})"
    if isinstance(expr, ast.Let):
        return f"(let {expr.name} {pretty(expr.value)} {pretty(expr.body)})"
    if isinstance(expr, ast.Ref):
        return f"(ref {pretty(expr.init)})"
    if isinstance(expr, ast.Deref):
        return f"(deref {pretty(expr.ref)})"
    if isinstance(expr, ast.Assign):
        return f"(assign {pretty(expr.target)} {pretty(expr.value)})"
    if isinstance(expr, ast.FacetExpr):
        return f"(facet {expr.label} {pretty(expr.high)} {pretty(expr.low)})"
    if isinstance(expr, ast.LabelDecl):
        return f"(label {expr.label} {pretty(expr.body)})"
    if isinstance(expr, ast.Restrict):
        return f"(restrict {expr.label} {pretty(expr.policy)})"
    if isinstance(expr, ast.Row):
        fields = " ".join(pretty(field) for field in expr.fields)
        return f"(row {fields})" if fields else "(row)"
    if isinstance(expr, ast.Select):
        return f"(select {expr.i} {expr.j} {pretty(expr.table)})"
    if isinstance(expr, ast.Project):
        columns = " ".join(str(c) for c in expr.columns)
        return f"(project ({columns}) {pretty(expr.table)})"
    if isinstance(expr, ast.Join):
        return f"(join {pretty(expr.left)} {pretty(expr.right)})"
    if isinstance(expr, ast.Union):
        return f"(union {pretty(expr.left)} {pretty(expr.right)})"
    if isinstance(expr, ast.Fold):
        return f"(fold {pretty(expr.fn)} {pretty(expr.init)} {pretty(expr.table)})"
    if isinstance(expr, ast.Print):
        return f"(print {pretty(expr.viewer)} {pretty(expr.value)})"
    if isinstance(expr, ast.If):
        return f"(if {pretty(expr.cond)} {pretty(expr.then)} {pretty(expr.orelse)})"
    if isinstance(expr, ast.BinOp):
        return f"({expr.op} {pretty(expr.left)} {pretty(expr.right)})"
    raise TypeError(f"unknown expression node {expr!r}")


def _const(value: object) -> str:
    if value is None:
        return "unit"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return str(value)


def pretty_value(value: Value) -> str:
    """Render a runtime value for debugging and test failure messages."""
    if isinstance(value, FacetV):
        return f"<{value.label} ? {pretty_value(value.high)} : {pretty_value(value.low)}>"
    if isinstance(value, TableV):
        rows = []
        for branches, fields in value.rows:
            branch_text = ",".join(
                ("" if polarity else "¬") + name for name, polarity in sorted(branches)
            )
            rows.append(f"({{{branch_text}}}, {fields})")
        return "table[" + "; ".join(rows) + "]"
    if isinstance(value, Closure):
        return f"(lambda ({value.param}) ...)"
    return _const(value) if not isinstance(value, tuple) else repr(value)
