"""Big-step faceted evaluation for λJDB.

Implements the relation ``Σ, e ⇓pc Σ', V`` of Figures 4 and 5 together with
the λjeeves rules for labels, policies and printing from Appendix A.  The
store is threaded as mutable state on the interpreter; the program counter
``pc`` is an explicit argument, exactly as in the formal rules:

* F-VAL, F-APP, F-CTXT          -- standard call-by-value evaluation
* F-REF, F-DEREF(-NULL), F-ASSIGN -- heap with pc-guarded writes
* F-SPLIT, F-LEFT, F-RIGHT      -- faceted expressions
* F-STRICT                      -- strict contexts distribute over facets
* F-ROW, F-SELECT, F-PROJECT, F-JOIN, F-UNION -- relational operators
* F-FOLD-EMPTY / -INCONSISTENT / -CONSISTENT  -- table folds
* F-LABEL, F-RESTRICT, F-PRINT  -- Appendix A
* F-PRUNE                       -- Early Pruning (opt-in via ``early_pruning``)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.lambda_jdb import ast
from repro.lambda_jdb.values import (
    EMPTY_PC,
    PC,
    Address,
    BranchT,
    Closure,
    FacetV,
    TableV,
    Value,
    branches_consistent,
    collect_value_labels,
    make_facet_branches,
    make_facet_value,
    pc_consistent,
)
from repro.lambda_jdb.store import Store
from repro.solver.assignment import LabelAssigner
from repro.solver.formula import FALSE, TRUE, And, Formula, Not, Or, Var


class EvalError(Exception):
    """Raised when a λJDB program gets stuck."""


Env = Dict[str, Value]


def _env_extend(env: Env, name: str, value: Value) -> Env:
    extended = dict(env)
    extended[name] = value
    return extended


def _pc_add(pc: PC, branch: BranchT) -> PC:
    return frozenset(pc | {branch})


class Interpreter:
    """Evaluates λJDB expressions under faceted semantics."""

    def __init__(self, early_pruning: bool = False, max_steps: int = 200_000) -> None:
        self.store = Store()
        self.outputs: List[Tuple[Value, Value]] = []
        self.early_pruning = early_pruning
        self.max_steps = max_steps
        self._steps = 0
        #: maps a speculated viewer label assignment used by Early Pruning
        self.pruning_assignment: Optional[Dict[str, bool]] = None

    # -- public API ------------------------------------------------------------------

    def run(self, expr: ast.Expr, env: Optional[Env] = None, pc: PC = EMPTY_PC) -> Value:
        """Evaluate an expression in the given environment and pc."""
        return self.eval(expr, dict(env or {}), {}, pc)

    # -- evaluation -------------------------------------------------------------------

    def eval(self, expr: ast.Expr, env: Env, label_env: Dict[str, str], pc: PC) -> Value:
        self._steps += 1
        if self._steps > self.max_steps:
            raise EvalError("evaluation exceeded the step budget (possible divergence)")

        if isinstance(expr, ast.Const):
            return expr.value

        if isinstance(expr, ast.Var):
            if expr.name not in env:
                raise EvalError(f"unbound variable {expr.name!r}")
            return env[expr.name]

        if isinstance(expr, ast.Lam):
            captured = tuple(sorted(env.items(), key=lambda item: item[0]))
            return Closure(expr.param, _resolve_labels_in_expr(expr.body, label_env), captured)

        if isinstance(expr, ast.App):
            fn = self.eval(expr.fn, env, label_env, pc)
            arg = self.eval(expr.arg, env, label_env, pc)
            return self.apply(fn, arg, pc)

        if isinstance(expr, ast.Let):
            value = self.eval(expr.value, env, label_env, pc)
            return self.eval(expr.body, _env_extend(env, expr.name, value), label_env, pc)

        if isinstance(expr, ast.Ref):
            value = self.eval(expr.init, env, label_env, pc)
            address = self.store.alloc()
            self.store.write(address, make_facet_branches(sorted(pc), value, None))
            return address

        if isinstance(expr, ast.Deref):
            ref = self.eval(expr.ref, env, label_env, pc)
            return self.strict(ref, pc, self._deref_raw)

        if isinstance(expr, ast.Assign):
            target = self.eval(expr.target, env, label_env, pc)
            value = self.eval(expr.value, env, label_env, pc)
            return self.strict(
                target, pc, lambda address, inner_pc: self._assign_raw(address, value, inner_pc)
            )

        if isinstance(expr, ast.FacetExpr):
            label = label_env.get(expr.label, expr.label)
            return self._eval_facet(label, expr.high, expr.low, env, label_env, pc)

        if isinstance(expr, ast.LabelDecl):
            fresh = self.store.fresh_label(expr.label)
            self.store.declare_label(fresh)
            new_label_env = dict(label_env)
            new_label_env[expr.label] = fresh
            return self.eval(expr.body, env, new_label_env, pc)

        if isinstance(expr, ast.Restrict):
            label = label_env.get(expr.label, expr.label)
            self.store.declare_label(label)
            policy = self.eval(expr.policy, env, label_env, pc)
            guarded = make_facet_branches(
                sorted(_pc_add(pc, (label, True))), policy, _ALWAYS_TRUE
            )
            self.store.add_policy(label, guarded)
            return policy

        if isinstance(expr, ast.Row):
            fields = [self.eval(field, env, label_env, pc) for field in expr.fields]
            return self._build_row(fields, pc)

        if isinstance(expr, ast.Select):
            table = self.eval(expr.table, env, label_env, pc)
            return self.strict(
                table, pc, lambda t, inner_pc: self._select_raw(t, expr.i, expr.j, inner_pc)
            )

        if isinstance(expr, ast.Project):
            table = self.eval(expr.table, env, label_env, pc)
            return self.strict(
                table, pc, lambda t, inner_pc: self._project_raw(t, expr.columns, inner_pc)
            )

        if isinstance(expr, ast.Join):
            left = self.eval(expr.left, env, label_env, pc)
            right = self.eval(expr.right, env, label_env, pc)
            return self.strict(
                left,
                pc,
                lambda lt, pc1: self.strict(
                    right, pc1, lambda rt, pc2: self._join_raw(lt, rt, pc2)
                ),
            )

        if isinstance(expr, ast.Union):
            left = self.eval(expr.left, env, label_env, pc)
            right = self.eval(expr.right, env, label_env, pc)
            return self.strict(
                left,
                pc,
                lambda lt, pc1: self.strict(
                    right, pc1, lambda rt, pc2: self._union_raw(lt, rt, pc2)
                ),
            )

        if isinstance(expr, ast.Fold):
            fn = self.eval(expr.fn, env, label_env, pc)
            init = self.eval(expr.init, env, label_env, pc)
            table = self.eval(expr.table, env, label_env, pc)
            return self.strict(
                table, pc, lambda t, inner_pc: self._fold_raw(fn, init, t, inner_pc)
            )

        if isinstance(expr, ast.If):
            cond = self.eval(expr.cond, env, label_env, pc)
            return self.strict(
                cond,
                pc,
                lambda c, inner_pc: self.eval(
                    expr.then if c else expr.orelse, env, label_env, inner_pc
                ),
            )

        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env, label_env, pc)
            right = self.eval(expr.right, env, label_env, pc)
            return self.strict(
                left,
                pc,
                lambda lv, pc1: self.strict(
                    right, pc1, lambda rv, pc2: self._binop_raw(expr.op, lv, rv)
                ),
            )

        if isinstance(expr, ast.Print):
            viewer = self.eval(expr.viewer, env, label_env, pc)
            value = self.eval(expr.value, env, label_env, pc)
            return self._print(viewer, value)

        raise EvalError(f"unknown expression node {expr!r}")

    # -- facets ----------------------------------------------------------------------

    def _eval_facet(
        self,
        label: str,
        high: ast.Expr,
        low: ast.Expr,
        env: Env,
        label_env: Dict[str, str],
        pc: PC,
    ) -> Value:
        if (label, True) in pc:  # F-LEFT
            return self.eval(high, env, label_env, pc)
        if (label, False) in pc:  # F-RIGHT
            return self.eval(low, env, label_env, pc)
        # F-SPLIT
        high_value = self.eval(high, env, label_env, _pc_add(pc, (label, True)))
        low_value = self.eval(low, env, label_env, _pc_add(pc, (label, False)))
        return make_facet_value(label, high_value, low_value)

    def strict(self, value: Value, pc: PC, fn: Callable[[Value, PC], Value]) -> Value:
        """The F-STRICT rule: push a strict operation into facets.

        ``fn`` receives the raw leaf and the pc extended with the branches
        taken to reach it.
        """
        if isinstance(value, FacetV):
            label = value.label
            if (label, True) in pc:
                return self.strict(value.high, pc, fn)
            if (label, False) in pc:
                return self.strict(value.low, pc, fn)
            high = self.strict(value.high, _pc_add(pc, (label, True)), fn)
            low = self.strict(value.low, _pc_add(pc, (label, False)), fn)
            return make_facet_value(label, high, low)
        return fn(value, pc)

    def apply(self, fn: Value, arg: Value, pc: PC) -> Value:
        """Function application, strict in the callee (F-APP + F-STRICT)."""

        def apply_raw(callee: Value, inner_pc: PC) -> Value:
            if not isinstance(callee, Closure):
                raise EvalError(f"cannot apply non-function {callee!r}")
            env = callee.env_dict()
            env[callee.param] = arg
            return self.eval(callee.body, env, {}, inner_pc)

        return self.strict(fn, pc, apply_raw)

    # -- heap ------------------------------------------------------------------------

    def _deref_raw(self, address: Value, pc: PC) -> Value:
        if not isinstance(address, Address):
            raise EvalError(f"cannot dereference non-address {address!r}")
        if not self.store.contains(address):  # F-DEREF-NULL
            return None
        return self.store.read(address)

    def _assign_raw(self, address: Value, value: Value, pc: PC) -> Value:
        if not isinstance(address, Address):
            raise EvalError(f"cannot assign to non-address {address!r}")
        old = self.store.read(address)
        self.store.write(address, make_facet_branches(sorted(pc), value, old))
        return value

    # -- relational operators -----------------------------------------------------------

    def _build_row(self, fields: List[Value], pc: PC) -> Value:
        """F-ROW, generalised to faceted field values.

        The formal rule takes string constants; field values that are faceted
        are handled by distributing the row constructor over the facets (they
        are strict positions in the evaluation-context grammar).
        """

        def build(index: int, resolved: Tuple[str, ...], inner_pc: PC) -> Value:
            if index == len(fields):
                return TableV(((frozenset(), resolved),))
            return self.strict(
                fields[index],
                inner_pc,
                lambda leaf, pc2: build(index + 1, resolved + (_as_field(leaf),), pc2),
            )

        return build(0, (), pc)

    def _select_raw(self, table: Value, i: int, j: int, pc: PC) -> Value:
        if not isinstance(table, TableV):
            raise EvalError(f"select expects a table, got {table!r}")
        rows = []
        for branches, fields in table.rows:
            if i >= len(fields) or j >= len(fields):
                raise EvalError("select column index out of range")
            if fields[i] == fields[j]:
                rows.append((branches, fields))
        return TableV(tuple(rows))

    def _project_raw(self, table: Value, columns: Tuple[int, ...], pc: PC) -> Value:
        if not isinstance(table, TableV):
            raise EvalError(f"project expects a table, got {table!r}")
        rows = []
        for branches, fields in table.rows:
            try:
                projected = tuple(fields[c] for c in columns)
            except IndexError as exc:
                raise EvalError("project column index out of range") from exc
            rows.append((branches, projected))
        return TableV(tuple(rows))

    def _join_raw(self, left: Value, right: Value, pc: PC) -> Value:
        if not isinstance(left, TableV) or not isinstance(right, TableV):
            raise EvalError("join expects two tables")
        rows = []
        for branches_l, fields_l in left.rows:
            for branches_r, fields_r in right.rows:
                combined = frozenset(branches_l | branches_r)
                rows.append((combined, fields_l + fields_r))
        table = TableV(tuple(rows))
        return self._maybe_prune(table, pc)

    def _union_raw(self, left: Value, right: Value, pc: PC) -> Value:
        if not isinstance(left, TableV) or not isinstance(right, TableV):
            raise EvalError("union expects two tables")
        return self._maybe_prune(TableV(left.rows + right.rows), pc)

    def _fold_raw(self, fn: Value, init: Value, table: Value, pc: PC) -> Value:
        if not isinstance(table, TableV):
            raise EvalError(f"fold expects a table, got {table!r}")
        table = self._maybe_prune(table, pc)
        accumulator: Value = init
        # The formal rules peel the head row and fold the tail first, so the
        # head row is folded last; iterating the rows in reverse matches that.
        for branches, fields in reversed(table.rows):
            if not pc_consistent(branches, pc):  # F-FOLD-INCONSISTENT
                continue
            if not branches_consistent(branches):
                continue
            # F-FOLD-CONSISTENT
            row_value: Value = fields if len(fields) != 1 else fields[0]
            extended_pc = frozenset(pc | branches)
            applied = self.apply(fn, row_value, extended_pc)
            new_accumulator = self.apply(applied, accumulator, extended_pc)
            relevant = frozenset(branches - pc)
            accumulator = make_facet_branches(sorted(relevant), new_accumulator, accumulator)
        return accumulator

    def _maybe_prune(self, table: TableV, pc: PC) -> TableV:
        """The F-PRUNE rule, applied when Early Pruning is enabled."""
        if not self.early_pruning:
            return table
        rows = tuple(
            (branches, fields)
            for branches, fields in table.rows
            if pc_consistent(branches, pc) and branches_consistent(branches)
        )
        if self.pruning_assignment is not None:
            kept = []
            for branches, fields in rows:
                visible = all(
                    self.pruning_assignment.get(name, False) == polarity
                    for name, polarity in branches
                )
                if visible:
                    kept.append((branches, fields))
            rows = tuple(kept)
        return TableV(rows)

    # -- primitive operations ---------------------------------------------------------

    def _binop_raw(self, op: str, left: Value, right: Value) -> Value:
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "and":
                return bool(left) and bool(right)
            if op == "or":
                return bool(left) or bool(right)
            if op == "field":
                return left[int(right)]
        except (TypeError, IndexError, ValueError) as exc:
            raise EvalError(f"binary operation {op!r} failed: {exc}") from exc
        raise EvalError(f"unknown binary operator {op!r}")

    # -- print (Appendix A, F-PRINT) -----------------------------------------------------

    def _print(self, viewer: Value, value: Value) -> Value:
        """Resolve labels for an output and record ``(channel, value)``.

        Implements the [F-PRINT] recipe: compute the transitive label closure
        ``closeK``, evaluate the conjunction of the relevant policies applied
        to the viewer, and pick a label assignment that satisfies every
        policy, preferring to show data.
        """
        labels = set(collect_value_labels(viewer)) | set(collect_value_labels(value))
        labels = self._close_labels(labels)
        policies: Dict[str, Formula] = {}
        for label in sorted(labels):
            outcome = self._evaluate_policy(label, viewer)
            policies[label] = _faceted_bool_to_formula(outcome)

        if policies:
            assigner = LabelAssigner()
            named = assigner.assign(policies)
        else:
            named = {}
        assignment = {name: named.get(name, False) for name in labels}

        channel = _project_with_assignment(viewer, assignment)
        output = _project_with_assignment(value, assignment)
        self.outputs.append((channel, output))
        return output

    def _close_labels(self, labels: set) -> set:
        """The ``closeK`` fixpoint: labels reachable through policy values."""
        closed = set(labels)
        changed = True
        while changed:
            changed = False
            for label in list(closed):
                for policy in self.store.policies_for(label):
                    for nested in collect_value_labels(policy):
                        if nested not in closed:
                            closed.add(nested)
                            changed = True
        return closed

    def _evaluate_policy(self, label: str, viewer: Value) -> Value:
        """Apply every policy attached to ``label`` to the viewer, conjoined."""
        result: Value = True
        for policy in self.store.policies_for(label):
            outcome = self._apply_policy(policy, viewer)
            result = _facet_and(result, outcome)
        return result

    def _apply_policy(self, policy: Value, viewer: Value) -> Value:
        if isinstance(policy, FacetV):
            return make_facet_value(
                policy.label,
                self._apply_policy(policy.high, viewer),
                self._apply_policy(policy.low, viewer),
            )
        if isinstance(policy, Closure):
            return self.apply(policy, viewer, EMPTY_PC)
        if policy is _ALWAYS_TRUE:
            return True
        if isinstance(policy, bool):
            return policy
        raise EvalError(f"policy is not a function: {policy!r}")


#: Sentinel policy value meaning λx.true (used as the low facet in F-RESTRICT).
_ALWAYS_TRUE = object()


def _as_field(value: Value) -> str:
    """Coerce a row field to the string representation stored in tables."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if value is None:
        return ""
    raise EvalError(f"row fields must be scalar constants, got {value!r}")


def _facet_and(left: Value, right: Value) -> Value:
    """Faceted conjunction of two (possibly faceted) booleans."""
    if isinstance(left, FacetV):
        return make_facet_value(
            left.label, _facet_and(left.high, right), _facet_and(left.low, right)
        )
    if isinstance(right, FacetV):
        return make_facet_value(
            right.label, _facet_and(left, right.high), _facet_and(left, right.low)
        )
    return bool(left) and bool(right)


def _faceted_bool_to_formula(value: Value) -> Formula:
    if isinstance(value, FacetV):
        var = Var(value.label)
        return Or(
            And(var, _faceted_bool_to_formula(value.high)),
            And(Not(var), _faceted_bool_to_formula(value.low)),
        ).simplify()
    return TRUE if bool(value) else FALSE


def _project_with_assignment(value: Value, assignment: Dict[str, bool]) -> Value:
    """Collapse a value under a total label assignment (used by print)."""
    if isinstance(value, FacetV):
        chosen = value.high if assignment.get(value.label, False) else value.low
        return _project_with_assignment(chosen, assignment)
    if isinstance(value, TableV):
        rows = []
        for branches, fields in value.rows:
            if all(assignment.get(name, False) == polarity for name, polarity in branches):
                rows.append((frozenset(), fields))
        return TableV(tuple(rows))
    return value


def evaluate(
    expr: ast.Expr,
    env: Optional[Env] = None,
    pc: PC = EMPTY_PC,
    early_pruning: bool = False,
) -> Tuple[Value, Interpreter]:
    """Evaluate an expression with a fresh interpreter; returns (value, interp)."""
    interp = Interpreter(early_pruning=early_pruning)
    value = interp.run(expr, env=env, pc=pc)
    return value, interp


def _resolve_labels_in_expr(expr: ast.Expr, label_env: Dict[str, str]) -> ast.Expr:
    """Rename surface label names to their runtime (α-renamed) names.

    Needed when a lambda body mentioning declared labels escapes the
    ``label k in e`` scope as a closure.
    """
    if not label_env:
        return expr
    return _rename_labels(expr, label_env)


def _rename_labels(expr: ast.Expr, mapping: Dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.FacetExpr):
        return ast.FacetExpr(
            mapping.get(expr.label, expr.label),
            _rename_labels(expr.high, mapping),
            _rename_labels(expr.low, mapping),
        )
    if isinstance(expr, ast.Restrict):
        return ast.Restrict(
            mapping.get(expr.label, expr.label), _rename_labels(expr.policy, mapping)
        )
    if isinstance(expr, ast.LabelDecl):
        inner = {name: value for name, value in mapping.items() if name != expr.label}
        return ast.LabelDecl(expr.label, _rename_labels(expr.body, inner))
    if isinstance(expr, ast.Var) or isinstance(expr, ast.Const):
        return expr
    if isinstance(expr, ast.Lam):
        return ast.Lam(expr.param, _rename_labels(expr.body, mapping))
    if isinstance(expr, ast.App):
        return ast.App(_rename_labels(expr.fn, mapping), _rename_labels(expr.arg, mapping))
    if isinstance(expr, ast.Let):
        return ast.Let(
            expr.name,
            _rename_labels(expr.value, mapping),
            _rename_labels(expr.body, mapping),
        )
    if isinstance(expr, ast.Ref):
        return ast.Ref(_rename_labels(expr.init, mapping))
    if isinstance(expr, ast.Deref):
        return ast.Deref(_rename_labels(expr.ref, mapping))
    if isinstance(expr, ast.Assign):
        return ast.Assign(
            _rename_labels(expr.target, mapping), _rename_labels(expr.value, mapping)
        )
    if isinstance(expr, ast.Row):
        return ast.Row(tuple(_rename_labels(field, mapping) for field in expr.fields))
    if isinstance(expr, ast.Select):
        return ast.Select(expr.i, expr.j, _rename_labels(expr.table, mapping))
    if isinstance(expr, ast.Project):
        return ast.Project(expr.columns, _rename_labels(expr.table, mapping))
    if isinstance(expr, ast.Join):
        return ast.Join(_rename_labels(expr.left, mapping), _rename_labels(expr.right, mapping))
    if isinstance(expr, ast.Union):
        return ast.Union(_rename_labels(expr.left, mapping), _rename_labels(expr.right, mapping))
    if isinstance(expr, ast.Fold):
        return ast.Fold(
            _rename_labels(expr.fn, mapping),
            _rename_labels(expr.init, mapping),
            _rename_labels(expr.table, mapping),
        )
    if isinstance(expr, ast.If):
        return ast.If(
            _rename_labels(expr.cond, mapping),
            _rename_labels(expr.then, mapping),
            _rename_labels(expr.orelse, mapping),
        )
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op, _rename_labels(expr.left, mapping), _rename_labels(expr.right, mapping)
        )
    if isinstance(expr, ast.Print):
        return ast.Print(
            _rename_labels(expr.viewer, mapping), _rename_labels(expr.value, mapping)
        )
    raise EvalError(f"unknown expression node {expr!r}")
