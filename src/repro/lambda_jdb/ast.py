"""Abstract syntax for λJDB (Figure 3 of the paper).

Terms::

    e ::= x | c | λx.e | e1 e2
        | ref e | !e | e1 := e2
        | <k ? eH : eL>                 (faceted expression)
        | label k in e                  (label declaration)
        | restrict(k, e)                (policy specification)
        | row e...                      (create a single-row table)
        | σ[i=j] e                      (selection)
        | π[i...] e                     (projection)
        | e1 ⋈ e2                       (join / cross product)
        | e1 ∪ e2                       (union)
        | fold ef ep et                 (table fold)

Statements::

    S ::= let x = e in S | print {ev} er

For convenience the implementation also provides ``if`` and binary
operators; both are definable in the core calculus (Church encodings /
primitive constants) and do not change the metatheory, but they make the
randomly generated programs used by the property tests far more interesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union as TUnion


class Expr:
    """Base class for λJDB expressions."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        """Sub-expressions, used by generic traversals."""
        return ()


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference."""

    name: str


@dataclass(frozen=True)
class Const(Expr):
    """A constant: booleans, integers, strings or the unit value ``None``."""

    value: object


@dataclass(frozen=True)
class Lam(Expr):
    """A lambda abstraction ``λparam. body``."""

    param: str
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class App(Expr):
    """Function application ``fn arg``."""

    fn: Expr
    arg: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.fn, self.arg)


@dataclass(frozen=True)
class Ref(Expr):
    """Reference allocation ``ref e``."""

    init: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.init,)


@dataclass(frozen=True)
class Deref(Expr):
    """Dereference ``!e``."""

    ref: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.ref,)


@dataclass(frozen=True)
class Assign(Expr):
    """Assignment ``target := value``."""

    target: Expr
    value: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.target, self.value)


@dataclass(frozen=True)
class FacetExpr(Expr):
    """A faceted expression ``<label ? high : low>``."""

    label: str
    high: Expr
    low: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.high, self.low)


@dataclass(frozen=True)
class LabelDecl(Expr):
    """``label k in body``: allocate a fresh label named ``k`` in ``body``."""

    label: str
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Restrict(Expr):
    """``restrict(k, policy)``: attach a policy expression to label ``k``."""

    label: str
    policy: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.policy,)


@dataclass(frozen=True)
class Row(Expr):
    """``row e1 ... en``: create a single-row table of string fields."""

    fields: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.fields


@dataclass(frozen=True)
class Select(Expr):
    """``σ[i=j] table``: keep rows where columns ``i`` and ``j`` are equal."""

    i: int
    j: int
    table: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.table,)


@dataclass(frozen=True)
class Project(Expr):
    """``π[i...] table``: keep only the given column indices (0-based)."""

    columns: Tuple[int, ...]
    table: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.table,)


@dataclass(frozen=True)
class Join(Expr):
    """``left ⋈ right``: cross product of two tables."""

    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Union(Expr):
    """``left ∪ right``: append two tables."""

    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Fold(Expr):
    """``fold fn init table``: fold ``fn`` over the table's rows.

    ``fn`` has type ``B -> row -> B`` encoded as curried lambdas; each row is
    passed to the fold function as a table containing that single row, so the
    row's fields can be inspected with projections.
    """

    fn: Expr
    init: Expr
    table: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.fn, self.init, self.table)


@dataclass(frozen=True)
class Let(Expr):
    """``let name = value in body`` (the statement form, usable as an expr)."""

    name: str
    value: Expr
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.value, self.body)


@dataclass(frozen=True)
class Print(Expr):
    """``print {viewer} value``: the computation sink (Appendix A)."""

    viewer: Expr
    value: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.viewer, self.value)


@dataclass(frozen=True)
class If(Expr):
    """``if cond then a else b`` — a convenience strict conditional."""

    cond: Expr
    then: Expr
    orelse: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


@dataclass(frozen=True)
class BinOp(Expr):
    """A primitive binary operation on constants (``+ - * == < and or ...``)."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


def free_vars(expr: Expr) -> frozenset:
    """The free variables of an expression."""
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Lam):
        return free_vars(expr.body) - {expr.param}
    if isinstance(expr, Let):
        return free_vars(expr.value) | (free_vars(expr.body) - {expr.name})
    result: frozenset = frozenset()
    for child in expr.children():
        result |= free_vars(child)
    return result


def expr_size(expr: Expr) -> int:
    """Number of AST nodes (used to bound random program generation)."""
    return 1 + sum(expr_size(child) for child in expr.children())


def mentioned_labels(expr: Expr) -> frozenset:
    """All label names syntactically mentioned by the expression."""
    labels: set = set()

    def walk(node: Expr) -> None:
        if isinstance(node, FacetExpr):
            labels.add(node.label)
        if isinstance(node, (LabelDecl, Restrict)):
            labels.add(node.label)
        for child in node.children():
            walk(child)

    walk(expr)
    return frozenset(labels)
