"""The store Σ: heap addresses and label policies.

The paper's store maps addresses to values and labels to policy values
(``Σ ∈ Store = (Addr →p Val) ∪ (Label → Val)``).  Policies accumulate via
``restrict``; a label's effective policy is the faceted conjunction of all
values attached to it, with the default being the always-true policy.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lambda_jdb.values import Address, Value


class Store:
    """Mutable store threaded through evaluation."""

    def __init__(self) -> None:
        self._heap: Dict[Address, Value] = {}
        self._policies: Dict[str, List[Value]] = {}
        self._address_counter = itertools.count(1)
        self._label_counter = itertools.count(1)

    # -- heap --------------------------------------------------------------------

    def alloc(self) -> Address:
        """Allocate a fresh, unbound address."""
        return Address(next(self._address_counter))

    def contains(self, address: Address) -> bool:
        return address in self._heap

    def read(self, address: Address) -> Optional[Value]:
        """Heap lookup; unbound addresses read as ``None`` (the paper's 0)."""
        return self._heap.get(address)

    def write(self, address: Address, value: Value) -> None:
        self._heap[address] = value

    def heap_items(self) -> Iterable[Tuple[Address, Value]]:
        return tuple(self._heap.items())

    # -- labels and policies -------------------------------------------------------

    def fresh_label(self, hint: str = "k") -> str:
        """Allocate a fresh runtime label name (α-renaming in F-LABEL)."""
        return f"{hint}${next(self._label_counter)}"

    def declare_label(self, label: str) -> None:
        """Register a label with the default (empty = always-true) policy."""
        self._policies.setdefault(label, [])

    def has_label(self, label: str) -> bool:
        return label in self._policies

    def add_policy(self, label: str, policy: Value) -> None:
        """Conjoin an additional policy value onto a label (F-RESTRICT)."""
        self._policies.setdefault(label, []).append(policy)

    def policies_for(self, label: str) -> Tuple[Value, ...]:
        return tuple(self._policies.get(label, ()))

    def labels(self) -> Tuple[str, ...]:
        return tuple(self._policies.keys())

    # -- copying (needed by the projection property tests) -------------------------

    def copy(self) -> "Store":
        clone = Store()
        clone._heap = dict(self._heap)
        clone._policies = {label: list(ps) for label, ps in self._policies.items()}
        clone._address_counter = itertools.count(
            max((a.index for a in self._heap), default=0) + 1
        )
        used = [int(name.split("$")[-1]) for name in self._policies if "$" in name]
        clone._label_counter = itertools.count(max(used, default=0) + 1)
        return clone

    def __repr__(self) -> str:
        return f"Store(heap={len(self._heap)}, labels={len(self._policies)})"
