"""The Early Pruning optimisation at the value level (rule F-PRUNE).

Early Pruning shrinks a table by dropping rows whose branch annotations are
inconsistent with the current program counter; when the viewer is known in
advance (e.g. the session user of a web request), the program counter can be
seeded with the viewer's full label assignment, so only the facet rows the
viewer can actually see are carried through the computation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.lambda_jdb.values import (
    EMPTY_PC,
    PC,
    BranchT,
    FacetV,
    TableV,
    Value,
    branches_consistent,
    pc_consistent,
)


def prune_table(table: TableV, pc: PC) -> TableV:
    """Keep only rows consistent with ``pc`` (and internally consistent)."""
    rows = tuple(
        (branches, fields)
        for branches, fields in table.rows
        if pc_consistent(branches, pc) and branches_consistent(branches)
    )
    return TableV(rows)


def prune_value(value: Value, pc: PC) -> Value:
    """Prune facets and table rows under a known program counter."""
    if isinstance(value, FacetV):
        if (value.label, True) in pc:
            return prune_value(value.high, pc)
        if (value.label, False) in pc:
            return prune_value(value.low, pc)
        return FacetV(
            value.label,
            prune_value(value.high, frozenset(pc | {(value.label, True)})),
            prune_value(value.low, frozenset(pc | {(value.label, False)})),
        )
    if isinstance(value, TableV):
        return prune_table(value, pc)
    return value


def assignment_to_pc(assignment: Dict[str, bool]) -> PC:
    """Convert a total label assignment (the speculated viewer) to a pc."""
    return frozenset((name, polarity) for name, polarity in assignment.items())


def prune_for_viewer(value: Value, assignment: Dict[str, bool]) -> Value:
    """Early Pruning with a speculated viewer: prune under their assignment."""
    return prune_value(value, assignment_to_pc(assignment))
