"""Boolean satisfiability substrate used for label assignment.

The paper resolves information-flow labels at computation sinks by finding a
satisfying assignment to a system of boolean constraints of the form
``k => policy_k(viewer)`` (Section 2.3 and the [F-PRINT] rule).  The original
implementation delegates to the SAT subset of Z3; this package provides an
equivalent, dependency-free substrate:

* :mod:`repro.solver.formula` -- a small boolean formula AST with
  simplification, evaluation and free-variable queries.
* :mod:`repro.solver.cnf` -- conversion to conjunctive normal form via the
  Tseitin transformation.
* :mod:`repro.solver.dpll` -- a DPLL solver with unit propagation, pure
  literal elimination and a caller-supplied preference order (used to prefer
  ``True`` assignments so that Jacqueline "always attempts to show values
  unless policies require otherwise").
* :mod:`repro.solver.assignment` -- the label-assignment front end used by
  the Jeeves runtime.
"""

from repro.solver.formula import (
    FALSE,
    TRUE,
    And,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
)
from repro.solver.cnf import CNF, Clause, to_cnf
from repro.solver.dpll import DPLLSolver, solve
from repro.solver.assignment import LabelAssigner, UnsatisfiableError

__all__ = [
    "Formula",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
    "CNF",
    "Clause",
    "to_cnf",
    "DPLLSolver",
    "solve",
    "LabelAssigner",
    "UnsatisfiableError",
]
