"""Label assignment: the bridge between policies and the SAT solver.

At a computation sink the Jeeves runtime has, for every label ``k`` reachable
from the output value (the ``closeK`` closure), a boolean formula
``policy_k`` describing whether the viewer may see data guarded by ``k``.
Policies may themselves mention labels (mutual dependencies), so the
constraint system is

    for every label k:   k  =>  policy_k

The all-``False`` assignment is always a model; the runtime wants the model
that shows as much as possible, which the preference-guided DPLL search
provides by trying ``True`` first for every label, greedily in a fixed order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.solver.cnf import CNF, to_cnf
from repro.solver.dpll import DPLLSolver
from repro.solver.formula import FALSE, TRUE, Const, Formula, Implies, Var, conj


class UnsatisfiableError(Exception):
    """Raised when a constraint system has no satisfying assignment.

    With well-formed policy constraints this cannot happen (all-False is a
    model); it can only arise from extra user-supplied hard constraints.
    """


class LabelAssigner:
    """Finds show-maximising assignments for label constraint systems."""

    def __init__(self) -> None:
        self._extra: List[Formula] = []

    def add_constraint(self, formula: Formula) -> None:
        """Add an extra hard constraint (used by tests and extensions)."""
        self._extra.append(formula)

    def assign(
        self,
        policies: Mapping[str, Formula],
        prefer: Optional[Mapping[str, bool]] = None,
        order: Optional[Iterable[str]] = None,
    ) -> Dict[str, bool]:
        """Solve ``{k => policies[k]}`` plus any extra constraints.

        ``policies`` maps label names to fully evaluated policy formulas whose
        only free variables are label names.  Returns a total assignment over
        every mentioned label.
        """
        label_names = list(policies.keys())
        constraints: List[Formula] = []
        for name, policy in policies.items():
            constraints.append(Implies(Var(name), policy).simplify())
        constraints.extend(self._extra)
        system = conj(constraints)

        if isinstance(system, Const):
            if not system.value:
                raise UnsatisfiableError("constraint system is unsatisfiable")
            assignment = {}
        else:
            cnf = to_cnf(system)
            preferences = {name: True for name in label_names}
            if prefer:
                preferences.update(prefer)
            solver = DPLLSolver(cnf, prefer=preferences, decision_order=order or label_names)
            model = solver.solve()
            if model is None:
                raise UnsatisfiableError("constraint system is unsatisfiable")
            assignment = model

        result: Dict[str, bool] = {}
        for name in label_names:
            if name in assignment:
                result[name] = assignment[name]
            else:
                result[name] = (prefer or {}).get(name, True)
        # Variables mentioned by policies but not themselves policy labels
        # (free auxiliary variables) are also reported.
        for name, policy in policies.items():
            for free in policy.free_vars():
                if free not in result:
                    result[free] = assignment.get(free, True)
        return result

    def assign_greedy(
        self, policies: Mapping[str, Formula], order: Optional[Iterable[str]] = None
    ) -> Dict[str, bool]:
        """A direct greedy strategy used as a cross-check for the solver.

        Labels are processed in order; each is tentatively set ``True`` and
        reverted to ``False`` if the partially evaluated system becomes
        unsatisfiable under the remaining all-False completion.
        """
        names = list(order or policies.keys())
        for name in policies:
            if name not in names:
                names.append(name)
        assignment: Dict[str, bool] = {}

        def satisfied(candidate: Dict[str, bool]) -> bool:
            total = {name: candidate.get(name, False) for name in policies}
            for extra_name in candidate:
                total.setdefault(extra_name, candidate[extra_name])
            for label, policy in policies.items():
                free = policy.free_vars()
                env = {var: total.get(var, False) for var in free}
                if total.get(label, False) and not policy.evaluate(env):
                    return False
            for extra in self._extra:
                env = {var: total.get(var, False) for var in extra.free_vars()}
                if not extra.evaluate(env):
                    return False
            return True

        for name in names:
            assignment[name] = True
            if not satisfied(assignment):
                assignment[name] = False
        if not satisfied(assignment):
            raise UnsatisfiableError("constraint system is unsatisfiable")
        return assignment
