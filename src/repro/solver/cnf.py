"""Conversion of boolean formulas to conjunctive normal form.

Two strategies are provided:

* a direct distribution-based conversion for small formulas (used by the
  property tests because it preserves equivalence exactly), and
* the Tseitin transformation, which introduces fresh variables but stays
  linear in the size of the input (used by the label assigner on large
  constraint systems).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.solver.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    nnf,
)

#: A literal is a (variable name, polarity) pair; True means positive.
Literal = Tuple[str, bool]

#: A clause is a frozen set of literals (disjunction).
Clause = FrozenSet[Literal]


class CNF:
    """A formula in conjunctive normal form: a set of clauses.

    The empty CNF is trivially satisfiable; a CNF containing the empty clause
    is unsatisfiable.
    """

    def __init__(self, clauses: Iterable[Iterable[Literal]] = ()) -> None:
        self.clauses: List[Clause] = [frozenset(clause) for clause in clauses]

    def __repr__(self) -> str:
        return f"CNF({self.clauses!r})"

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self):
        return iter(self.clauses)

    def add(self, clause: Iterable[Literal]) -> None:
        """Append a clause."""
        self.clauses.append(frozenset(clause))

    def variables(self) -> Set[str]:
        """All variable names mentioned by the clauses."""
        names: Set[str] = set()
        for clause in self.clauses:
            for name, _ in clause:
                names.add(name)
        return names

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate the CNF under a total assignment."""
        for clause in self.clauses:
            if not any(assignment[name] == polarity for name, polarity in clause):
                return False
        return True

    def extend(self, other: "CNF") -> None:
        """Append all clauses from another CNF."""
        self.clauses.extend(other.clauses)


def _distribute(left: List[Clause], right: List[Clause]) -> List[Clause]:
    """Distribute OR over two clause lists (cartesian product of clauses)."""
    result: List[Clause] = []
    for a, b in itertools.product(left, right):
        result.append(a | b)
    return result


def _direct_cnf(formula: Formula) -> List[Clause]:
    """Distribution-based CNF of an NNF formula."""
    if isinstance(formula, Const):
        if formula.value:
            return []
        return [frozenset()]
    if isinstance(formula, Var):
        return [frozenset({(formula.name, True)})]
    if isinstance(formula, Not):
        operand = formula.operand
        if isinstance(operand, Var):
            return [frozenset({(operand.name, False)})]
        if isinstance(operand, Const):
            return _direct_cnf(TRUE if not operand.value else FALSE)
        raise ValueError("direct CNF expects an NNF formula")
    if isinstance(formula, And):
        return _direct_cnf(formula.left) + _direct_cnf(formula.right)
    if isinstance(formula, Or):
        return _distribute(_direct_cnf(formula.left), _direct_cnf(formula.right))
    raise ValueError(f"direct CNF expects an NNF formula, got {formula!r}")


def to_cnf(formula: Formula) -> CNF:
    """Equivalence-preserving CNF conversion (exponential worst case).

    Suitable for the moderate constraint systems produced by label
    resolution: the paper's policies relate a handful of labels per sink.
    """
    return CNF(_direct_cnf(nnf(formula)))


class _FreshNames:
    """Generator of fresh Tseitin variable names that cannot collide with
    label names (labels never contain ``'\\x00'``)."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def next(self) -> str:
        return f"\x00t{next(self._counter)}"


def tseitin(formula: Formula) -> CNF:
    """Tseitin transformation: equisatisfiable CNF, linear size.

    Fresh variables are prefixed with a NUL byte so they can be filtered out
    of the resulting model.
    """
    formula = formula.simplify()
    cnf = CNF()
    fresh = _FreshNames()

    def encode(node: Formula) -> Literal:
        if isinstance(node, Const):
            name = fresh.next()
            if node.value:
                cnf.add([(name, True)])
            else:
                cnf.add([(name, False)])
            return (name, True)
        if isinstance(node, Var):
            return (node.name, True)
        if isinstance(node, Not):
            inner_name, inner_pol = encode(node.operand)
            return (inner_name, not inner_pol)
        if isinstance(node, And):
            left = encode(node.left)
            right = encode(node.right)
            out = fresh.next()
            cnf.add([(out, False), left])
            cnf.add([(out, False), right])
            cnf.add([(out, True), _negate(left), _negate(right)])
            return (out, True)
        if isinstance(node, Or):
            left = encode(node.left)
            right = encode(node.right)
            out = fresh.next()
            cnf.add([(out, True), _negate(left)])
            cnf.add([(out, True), _negate(right)])
            cnf.add([(out, False), left, right])
            return (out, True)
        if isinstance(node, Implies):
            return encode(Or(Not(node.left), node.right))
        if isinstance(node, Iff):
            return encode(
                And(
                    Or(Not(node.left), node.right),
                    Or(Not(node.right), node.left),
                )
            )
        raise TypeError(f"unknown formula node {node!r}")

    root = encode(formula)
    cnf.add([root])
    return cnf


def _negate(literal: Literal) -> Literal:
    name, polarity = literal
    return (name, not polarity)


def is_tseitin_var(name: str) -> bool:
    """True if the variable was introduced by :func:`tseitin`."""
    return name.startswith("\x00")
