"""A DPLL SAT solver with unit propagation and pure-literal elimination.

The solver accepts a *preference* mapping that biases the branching order:
when a variable must be decided, the preferred polarity is tried first.  The
Jeeves runtime uses ``prefer=True`` for every label so that, among all
satisfying assignments, the solver finds one that shows as much data as
possible ("Jacqueline always attempts to show values unless policies require
otherwise", Section 2.3).  Assigning every label ``False`` is always a model
of the constraint system ``k => policy_k``, so the instances handed to the
solver are never unsatisfiable; the solver nevertheless reports
unsatisfiability correctly for general inputs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.solver.cnf import CNF, Clause, Literal, is_tseitin_var


class DPLLSolver:
    """Davis-Putnam-Logemann-Loveland search over a CNF instance."""

    def __init__(
        self,
        cnf: CNF,
        prefer: Optional[Mapping[str, bool]] = None,
        decision_order: Optional[Iterable[str]] = None,
    ) -> None:
        self.cnf = cnf
        self.prefer = dict(prefer or {})
        self._order = list(decision_order or [])
        self.statistics = {"decisions": 0, "propagations": 0, "conflicts": 0}

    # -- public API ------------------------------------------------------------

    def solve(self) -> Optional[Dict[str, bool]]:
        """Return a satisfying assignment over all variables, or ``None``.

        Variables that remain unconstrained after the search are filled with
        their preferred polarity (default ``True``).
        """
        clauses = [set(clause) for clause in self.cnf.clauses]
        assignment: Dict[str, bool] = {}
        result = self._search(clauses, assignment)
        if result is None:
            return None
        for name in self.cnf.variables():
            if name not in result:
                result[name] = self.prefer.get(name, True)
        return result

    def model_without_auxiliary(self) -> Optional[Dict[str, bool]]:
        """Like :meth:`solve` but with Tseitin auxiliary variables removed."""
        model = self.solve()
        if model is None:
            return None
        return {name: value for name, value in model.items() if not is_tseitin_var(name)}

    # -- search ----------------------------------------------------------------

    def _search(
        self, clauses: List[Set[Literal]], assignment: Dict[str, bool]
    ) -> Optional[Dict[str, bool]]:
        clauses, assignment, conflict = self._propagate(clauses, assignment)
        if conflict:
            self.statistics["conflicts"] += 1
            return None
        clauses, assignment = self._pure_literals(clauses, assignment)
        if not clauses:
            return assignment
        variable = self._pick_variable(clauses)
        self.statistics["decisions"] += 1
        first = self.prefer.get(variable, True)
        for value in (first, not first):
            trial_clauses = [set(clause) for clause in clauses]
            trial_assignment = dict(assignment)
            trial_assignment[variable] = value
            reduced = self._assign(trial_clauses, variable, value)
            if reduced is None:
                continue
            result = self._search(reduced, trial_assignment)
            if result is not None:
                return result
        return None

    def _propagate(
        self, clauses: List[Set[Literal]], assignment: Dict[str, bool]
    ) -> Tuple[List[Set[Literal]], Dict[str, bool], bool]:
        """Repeatedly assign variables forced by unit clauses."""
        clauses = [set(clause) for clause in clauses]
        assignment = dict(assignment)
        while True:
            unit: Optional[Literal] = None
            for clause in clauses:
                if len(clause) == 0:
                    return clauses, assignment, True
                if len(clause) == 1:
                    unit = next(iter(clause))
                    break
            if unit is None:
                return clauses, assignment, False
            name, polarity = unit
            assignment[name] = polarity
            self.statistics["propagations"] += 1
            reduced = self._assign(clauses, name, polarity)
            if reduced is None:
                return clauses, assignment, True
            clauses = reduced

    def _pure_literals(
        self, clauses: List[Set[Literal]], assignment: Dict[str, bool]
    ) -> Tuple[List[Set[Literal]], Dict[str, bool]]:
        """Assign variables that appear with a single polarity.

        A pure literal is only eliminated when its polarity agrees with the
        caller's preference for that variable: assigning against the
        preference would be sound for satisfiability but could needlessly
        hide data (the solver must find the show-maximising model).
        """
        polarities: Dict[str, Set[bool]] = {}
        for clause in clauses:
            for name, polarity in clause:
                polarities.setdefault(name, set()).add(polarity)
        assignment = dict(assignment)
        pure = {
            name: next(iter(values))
            for name, values in polarities.items()
            if len(values) == 1 and next(iter(values)) == self.prefer.get(name, next(iter(values)))
        }
        if not pure:
            return clauses, assignment
        for name, polarity in pure.items():
            assignment[name] = polarity
        remaining = [
            clause
            for clause in clauses
            if not any(
                name in pure and pure[name] == polarity for name, polarity in clause
            )
        ]
        return remaining, assignment

    def _assign(
        self, clauses: List[Set[Literal]], name: str, value: bool
    ) -> Optional[List[Set[Literal]]]:
        """Apply an assignment to the clause set.

        Returns ``None`` on an immediate conflict (an emptied clause).
        """
        result: List[Set[Literal]] = []
        for clause in clauses:
            if (name, value) in clause:
                continue
            if (name, not value) in clause:
                reduced = set(clause)
                reduced.discard((name, not value))
                if not reduced:
                    return None
                result.append(reduced)
            else:
                result.append(set(clause))
        return result

    def _pick_variable(self, clauses: List[Set[Literal]]) -> str:
        """Pick the next decision variable.

        Caller-supplied decision order wins; otherwise pick the variable with
        the highest occurrence count (a cheap activity heuristic).
        """
        present: Set[str] = set()
        counts: Dict[str, int] = {}
        for clause in clauses:
            for name, _ in clause:
                present.add(name)
                counts[name] = counts.get(name, 0) + 1
        for name in self._order:
            if name in present:
                return name
        return max(counts, key=lambda name: (counts[name], name))


def solve(
    cnf: CNF,
    prefer: Optional[Mapping[str, bool]] = None,
    decision_order: Optional[Iterable[str]] = None,
) -> Optional[Dict[str, bool]]:
    """Convenience wrapper: solve a CNF instance and return a model or ``None``."""
    return DPLLSolver(cnf, prefer=prefer, decision_order=decision_order).solve()
