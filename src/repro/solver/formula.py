"""Boolean formula AST.

Formulas are immutable trees built from variables, constants and the usual
connectives.  They support structural equality, hashing, evaluation under a
(partial) assignment, substitution, and lightweight simplification.  The
Jeeves runtime builds formulas of the shape ``k => policy_k(viewer)`` where
the policy result may itself mention other labels (mutual dependencies,
Section 2.3 of the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional


class Formula:
    """Base class for boolean formulas.

    Subclasses are immutable; all connectives are exposed both as classes
    (:class:`And`, :class:`Or`, ...) and as operators (``&``, ``|``, ``~``,
    ``>>`` for implication).
    """

    __slots__ = ()

    # -- construction helpers -------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, _coerce(other))

    def __rand__(self, other: object) -> "Formula":
        return And(_coerce(other), self)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, _coerce(other))

    def __ror__(self, other: object) -> "Formula":
        return Or(_coerce(other), self)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, _coerce(other))

    # -- queries ---------------------------------------------------------------

    def free_vars(self) -> FrozenSet[str]:
        """Return the names of all variables occurring in the formula."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a *total* assignment; raises ``KeyError`` if a
        variable is missing."""
        raise NotImplementedError

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> "Formula":
        """Substitute known variables and simplify; unknown variables remain."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Formula"]) -> "Formula":
        """Replace variables by formulas."""
        raise NotImplementedError

    def simplify(self) -> "Formula":
        """Apply constant folding and shallow boolean identities."""
        return self

    def is_const(self) -> bool:
        return isinstance(self, Const)


def _coerce(value: object) -> Formula:
    """Coerce Python booleans into formula constants."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise TypeError(f"cannot use {value!r} as a boolean formula")


class Const(Formula):
    """A boolean constant (use the module-level ``TRUE`` / ``FALSE``)."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Const is immutable")

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> Formula:
        return self

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return self


TRUE = Const(True)
FALSE = Const(False)


class Var(Formula):
    """A named boolean variable (one per information-flow label)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Var is immutable")

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment[self.name])

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> Formula:
        if self.name in assignment:
            return TRUE if assignment[self.name] else FALSE
        return self

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return mapping.get(self.name, self)


class Not(Formula):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula) -> None:
        object.__setattr__(self, "operand", _coerce(operand))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Not is immutable")

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("Not", self.operand))

    def free_vars(self) -> FrozenSet[str]:
        return self.operand.free_vars()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> Formula:
        inner = self.operand.partial_evaluate(assignment)
        return Not(inner).simplify()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Not(self.operand.substitute(mapping)).simplify()

    def simplify(self) -> Formula:
        inner = self.operand.simplify()
        if isinstance(inner, Const):
            return FALSE if inner.value else TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)


class _Binary(Formula):
    """Shared implementation for binary connectives."""

    __slots__ = ("left", "right")
    _name = "?"

    def __init__(self, left: Formula, right: Formula) -> None:
        object.__setattr__(self, "left", _coerce(left))
        object.__setattr__(self, "right", _coerce(right))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))

    def free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars() | self.right.free_vars()


class And(_Binary):
    """Logical conjunction."""

    __slots__ = ()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> Formula:
        return And(
            self.left.partial_evaluate(assignment),
            self.right.partial_evaluate(assignment),
        ).simplify()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return And(
            self.left.substitute(mapping), self.right.substitute(mapping)
        ).simplify()

    def simplify(self) -> Formula:
        left = self.left.simplify()
        right = self.right.simplify()
        if left == FALSE or right == FALSE:
            return FALSE
        if left == TRUE:
            return right
        if right == TRUE:
            return left
        if left == right:
            return left
        return And(left, right)


class Or(_Binary):
    """Logical disjunction."""

    __slots__ = ()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> Formula:
        return Or(
            self.left.partial_evaluate(assignment),
            self.right.partial_evaluate(assignment),
        ).simplify()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Or(
            self.left.substitute(mapping), self.right.substitute(mapping)
        ).simplify()

    def simplify(self) -> Formula:
        left = self.left.simplify()
        right = self.right.simplify()
        if left == TRUE or right == TRUE:
            return TRUE
        if left == FALSE:
            return right
        if right == FALSE:
            return left
        if left == right:
            return left
        return Or(left, right)


class Implies(_Binary):
    """Logical implication ``left => right``."""

    __slots__ = ()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return (not self.left.evaluate(assignment)) or self.right.evaluate(assignment)

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> Formula:
        return Implies(
            self.left.partial_evaluate(assignment),
            self.right.partial_evaluate(assignment),
        ).simplify()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Implies(
            self.left.substitute(mapping), self.right.substitute(mapping)
        ).simplify()

    def simplify(self) -> Formula:
        left = self.left.simplify()
        right = self.right.simplify()
        if left == FALSE or right == TRUE:
            return TRUE
        if left == TRUE:
            return right
        if right == FALSE:
            return Not(left).simplify()
        return Implies(left, right)


class Iff(_Binary):
    """Logical equivalence ``left <=> right``."""

    __slots__ = ()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def partial_evaluate(self, assignment: Mapping[str, bool]) -> Formula:
        return Iff(
            self.left.partial_evaluate(assignment),
            self.right.partial_evaluate(assignment),
        ).simplify()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Iff(
            self.left.substitute(mapping), self.right.substitute(mapping)
        ).simplify()

    def simplify(self) -> Formula:
        left = self.left.simplify()
        right = self.right.simplify()
        if left == TRUE:
            return right
        if right == TRUE:
            return left
        if left == FALSE:
            return Not(right).simplify()
        if right == FALSE:
            return Not(left).simplify()
        if left == right:
            return TRUE
        return Iff(left, right)


def conj(formulas: Iterable[object]) -> Formula:
    """Conjunction of an iterable of formulas (``TRUE`` for empty input)."""
    result: Formula = TRUE
    for item in formulas:
        result = And(result, _coerce(item)).simplify()
    return result


def disj(formulas: Iterable[object]) -> Formula:
    """Disjunction of an iterable of formulas (``FALSE`` for empty input)."""
    result: Formula = FALSE
    for item in formulas:
        result = Or(result, _coerce(item)).simplify()
    return result


def from_bool(value: object) -> Formula:
    """Convert a Python bool (or formula) into a :class:`Formula`."""
    return _coerce(value)


def nnf(formula: Formula) -> Formula:
    """Convert to negation normal form (negations only on variables)."""
    formula = formula.simplify()
    if isinstance(formula, (Const, Var)):
        return formula
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, (Const, Var)):
            return formula.simplify()
        if isinstance(inner, Not):
            return nnf(inner.operand)
        if isinstance(inner, And):
            return Or(nnf(Not(inner.left)), nnf(Not(inner.right))).simplify()
        if isinstance(inner, Or):
            return And(nnf(Not(inner.left)), nnf(Not(inner.right))).simplify()
        if isinstance(inner, Implies):
            return And(nnf(inner.left), nnf(Not(inner.right))).simplify()
        if isinstance(inner, Iff):
            return nnf(
                Or(
                    And(inner.left, Not(inner.right)),
                    And(Not(inner.left), inner.right),
                )
            )
        raise TypeError(f"unknown formula node {inner!r}")
    if isinstance(formula, And):
        return And(nnf(formula.left), nnf(formula.right)).simplify()
    if isinstance(formula, Or):
        return Or(nnf(formula.left), nnf(formula.right)).simplify()
    if isinstance(formula, Implies):
        return Or(nnf(Not(formula.left)), nnf(formula.right)).simplify()
    if isinstance(formula, Iff):
        return nnf(
            And(Implies(formula.left, formula.right), Implies(formula.right, formula.left))
        )
    raise TypeError(f"unknown formula node {formula!r}")
