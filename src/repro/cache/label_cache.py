"""The label-resolution memo.

Early Pruning resolves, for every record on a page, whether each guarding
label is visible to the session viewer -- and resolving one label runs the
model's policy, which typically issues further queries (the conflict lookup
of the paper's Figure 7 policy is the canonical example).  Across requests
by the same viewer these resolutions are identical until something the
policies read changes, so the memo keys outcomes by
``(label name, viewer identity)``.

Safety:

* entries are **per-viewer** -- a viewer key never matches another viewer,
  so a memoised outcome cannot leak across users;
* any database write clears the memo (policies may read *any* table, so
  table-granular invalidation would be unsound for label outcomes);
* entries are stamped with the global policy epoch
  (:mod:`repro.cache.epoch`) so out-of-band policy inputs -- e.g. the
  conference phase -- invalidate them too;
* viewers without a stable identity (no integer ``jid``) are never cached.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.cache.bus import InvalidationBus, subscribe_weak
from repro.cache.epoch import policy_epoch
from repro.cache.lru import LRUCache, MISSING


def viewer_cache_key(viewer: Any) -> Optional[Hashable]:
    """A stable identity for a viewer, or ``None`` when not cacheable.

    Model instances are recreated on every request, so object identity is
    useless; the (model name, jid) pair is the durable identity.  The
    anonymous viewer is a valid, distinct identity of its own.
    """
    if viewer is None:
        return ("<anonymous>",)
    jid = getattr(viewer, "jid", None)
    if isinstance(jid, int):
        return (type(viewer).__name__, jid)
    return None


class LabelResolutionCache:
    """Memoises per-viewer label outcomes, cleared on any database write."""

    def __init__(
        self,
        max_entries: Optional[int] = 8192,
        ttl: Optional[float] = None,
        clock=None,
    ) -> None:
        kwargs = {} if clock is None else {"clock": clock}
        self._lru = LRUCache(max_entries, ttl, **kwargs)
        self._bus: Optional[InvalidationBus] = None
        self._subscription = None
        #: bumped on every clear; lets callers reject fills computed before
        #: an invalidation that raced with the resolution (see :meth:`put`).
        self._generation = 0

    # -- bus wiring -----------------------------------------------------------------

    def bind(self, bus: InvalidationBus) -> None:
        if self._bus is bus:
            return
        self.unbind()
        self._bus = bus
        self._subscription = subscribe_weak(bus, self, LabelResolutionCache._on_write)

    def unbind(self) -> None:
        if self._bus is not None and self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
        self._bus = None
        self._subscription = None

    def _on_write(self, _table: str) -> None:
        # Policies may read any table, so every memoised outcome is suspect.
        # Must go through clear() so the generation bumps and in-flight
        # resolutions that started before this write cannot memoise.
        self.clear()

    # -- memoisation -------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Snapshot before resolving; pass to :meth:`put` to guard the fill."""
        return self._generation

    def get(self, label_name: str, viewer_key: Hashable) -> Optional[bool]:
        """The memoised outcome, or ``None`` on a miss/stale epoch."""
        entry = self._lru.lookup((label_name, viewer_key))
        if entry is MISSING:
            return None
        outcome, epoch = entry
        if epoch != policy_epoch():
            self._lru.remove((label_name, viewer_key))
            return None
        return outcome

    def put(
        self,
        label_name: str,
        viewer_key: Hashable,
        outcome: bool,
        generation: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Memoise an outcome.

        ``generation``/``epoch`` are the snapshots taken *before* the policy
        ran; if an invalidation or epoch bump landed in between, the outcome
        was computed against superseded state and is silently discarded --
        the same fill-vs-write guard the query cache gets from
        generation-stamped keys.
        """
        if generation is not None and generation != self._generation:
            return
        entry_epoch = policy_epoch() if epoch is None else epoch
        self._lru.put((label_name, viewer_key), (bool(outcome), entry_epoch))

    def clear(self) -> None:
        self._generation += 1
        self._lru.clear()

    @property
    def stats(self):
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def __repr__(self) -> str:
        return f"LabelResolutionCache({self._lru!r})"
