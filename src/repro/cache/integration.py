"""Binding the cache layers to one FORM.

A :class:`FormCaches` instance owns the three cache layers configured by a
:class:`~repro.cache.config.CacheConfig` and subscribes them to the owning
database's invalidation bus.  The FORM constructs one at init time; the
manager, web layer and benchmarks reach the layers through it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cache.bus import InvalidationBus
from repro.cache.config import CacheConfig
from repro.cache.fragment import FragmentCache
from repro.cache.label_cache import LabelResolutionCache
from repro.cache.query_cache import FacetedQueryCache


class FormCaches:
    """The cache layers of one FORM, wired to its database's write events."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config if config is not None else CacheConfig()
        self.queries = FacetedQueryCache(
            self.config.query_cache_size,
            self.config.query_cache_ttl,
            max_rows=self.config.query_cache_max_rows,
        )
        self.labels = LabelResolutionCache(
            self.config.label_cache_size, self.config.label_cache_ttl
        )
        self.fragments = FragmentCache(
            self.config.fragment_cache_size, self.config.fragment_cache_ttl
        )
        self._bus: Optional[InvalidationBus] = None
        # Export the three layers' CacheStats through the observability
        # registry (weakly referenced: a FORM going away takes its caches'
        # metrics with it).
        from repro import obs

        obs.register_caches(self)

    # -- enablement ------------------------------------------------------------------

    @property
    def query_cache_enabled(self) -> bool:
        return self.config.query_cache_enabled

    @property
    def label_cache_enabled(self) -> bool:
        return self.config.label_cache_enabled

    @property
    def fragments_enabled(self) -> bool:
        return self.config.fragments_enabled

    # -- bus wiring -------------------------------------------------------------------

    def bind(self, bus: InvalidationBus) -> None:
        """Subscribe the active layers to a database's write events."""
        self._bus = bus
        if self.query_cache_enabled:
            self.queries.bind(bus)
        if self.label_cache_enabled:
            self.labels.bind(bus)
        if self.fragments_enabled:
            self.fragments.bind(bus)

    def unbind(self) -> None:
        self.queries.unbind()
        self.labels.unbind()
        self.fragments.unbind()
        self._bus = None

    @property
    def bus(self) -> Optional[InvalidationBus]:
        return self._bus

    # -- lifecycle ---------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached entry in every layer."""
        self.queries.clear()
        self.labels.clear()
        self.fragments.clear()

    def on_external_change(self) -> None:
        """Invalidate viewer-facing layers after a mutation the bus cannot
        see (auth changes, handler side effects outside the database)."""
        self.labels.clear()
        self.fragments.clear()

    # -- introspection ------------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Hit/miss/eviction statistics of every layer, by name."""
        return {
            "queries": self.queries.stats.snapshot(),
            "labels": self.labels.stats.snapshot(),
            "fragments": self.fragments.stats.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"FormCaches(enabled={self.config.enabled}, queries={len(self.queries)}, "
            f"labels={len(self.labels)}, fragments={len(self.fragments)})"
        )
