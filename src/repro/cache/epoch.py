"""The global policy epoch.

Policies may consult state that lives outside the database -- the canonical
example is the conference phase of the paper's case study, a plain class
attribute.  Database writes flow through the invalidation bus, but such
out-of-band policy inputs do not, so anything mutating them must call
:func:`bump_policy_epoch`.  Viewer-dependent caches (the label memo and the
rendered-fragment cache) stamp entries with the epoch at insertion and treat
entries from an older epoch as misses.
"""

from __future__ import annotations

import itertools
import threading

_lock = threading.Lock()
_counter = itertools.count(1)
_current = 0


def policy_epoch() -> int:
    """The current epoch (monotonically increasing, starts at 0)."""
    return _current


def bump_policy_epoch() -> int:
    """Invalidate every epoch-stamped cache entry; returns the new epoch."""
    global _current
    with _lock:
        _current = next(_counter)
        return _current
