"""The write-through invalidation bus.

Database backends publish a table-level event after every successful write
(insert, update, delete, clear, drop).  Caches subscribe and drop the
entries the write could have affected, so a cached read can never observe
rows older than the latest committed write -- the "write-through" half of
the subsystem's correctness argument.

The bus also tracks two kinds of generation counters used in cache keys:

* a per-table **write generation**, bumped on every data write;
* a global **schema generation**, bumped on create/drop table, so cached
  query results never survive a schema change.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Subscriber signature: called with the affected table name.  Events that
#: concern every table (``clear``) are delivered once per known table plus
#: once with :data:`ALL_TABLES`.
Subscriber = Callable[[str], None]

#: Wildcard table name published when a write affects an unknown set of
#: tables (e.g. ``Database.clear()``).
ALL_TABLES = "*"


class InvalidationBus:
    """Table-level write events plus generation counters.

    Thread-safe: publishing snapshots the subscriber list under the lock and
    invokes callbacks outside it, so a subscriber may unsubscribe (or
    publish) re-entrantly without deadlocking.
    """

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self._write_generations: Dict[str, int] = {}
        self._schema_generation = 0
        self._lock = threading.Lock()
        #: total number of events delivered (for tests and diagnostics)
        self.events_published = 0

    # -- subscriptions --------------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register a callback; returns it so it can be unsubscribed later."""
        with self._lock:
            if subscriber not in self._subscribers:
                self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # -- publishing ------------------------------------------------------------------

    def publish(self, table: str) -> None:
        """Announce that rows of ``table`` changed."""
        with self._lock:
            self._write_generations[table] = self._write_generations.get(table, 0) + 1
            self.events_published += 1
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(table)

    def publish_many(self, tables: Iterable[str]) -> None:
        for table in dict.fromkeys(tables):
            self.publish(table)

    def publish_all(self) -> None:
        """Announce a write of unknown extent (``clear``): every cache entry
        derived from any table must go."""
        with self._lock:
            for table in self._write_generations:
                self._write_generations[table] += 1
            self.events_published += 1
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(ALL_TABLES)

    def schema_changed(self, table: Optional[str] = None) -> None:
        """Announce a create/drop; bumps the schema generation and, for a
        drop, also invalidates the table's cached data."""
        with self._lock:
            self._schema_generation += 1
        if table is not None:
            self.publish(table)

    # -- generations ------------------------------------------------------------------

    @property
    def schema_generation(self) -> int:
        with self._lock:
            return self._schema_generation

    def write_generation(self, table: str) -> int:
        with self._lock:
            return self._write_generations.get(table, 0)

    def __repr__(self) -> str:
        return (
            f"InvalidationBus(subscribers={self.subscriber_count}, "
            f"events={self.events_published}, schema_gen={self._schema_generation})"
        )


def subscribe_weak(
    bus: InvalidationBus, owner: Any, method: Callable[[Any, str], None]
) -> Subscriber:
    """Subscribe ``method(owner, table)`` holding ``owner`` only weakly.

    Caches live and die with their FORM, while the database (and its bus)
    may outlive many FORMs.  A strong subscription would pin every dead
    cache on the bus forever; this forwarder lets the cache be collected
    and lazily unsubscribes itself on the next event after that.
    """
    owner_ref = weakref.ref(owner)

    def forward(table: str) -> None:
        target = owner_ref()
        if target is None:
            bus.unsubscribe(forward)
            return
        method(target, table)

    bus.subscribe(forward)
    return forward
