"""Cache subsystem configuration.

A :class:`CacheConfig` travels on the :class:`~repro.form.context.FORM` and
controls which layers of the cache subsystem are active.  Caching is on by
default -- the paper-faithful benchmark baselines disable it with
``CacheConfig.disabled()`` so cold-path numbers keep matching the paper's
uncached measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and enablement knobs for the FORM cache layers.

    * ``query_cache_*`` -- the faceted query cache: raw row+jvar entries
      keyed before pruning, shared safely by all viewers;
    * ``label_cache_*`` -- the per-viewer label-resolution memo;
    * ``fragment_cache_*`` -- the per-viewer rendered-page cache in the web
      layer (off by default: it trades strict render freshness for speed and
      only pays off on read-heavy traffic).

    TTLs are in seconds; ``None`` disables time-based expiry.
    """

    enabled: bool = True
    query_cache_size: int = 512
    query_cache_ttl: Optional[float] = None
    #: results with more rows than this are served but not cached -- the LRU
    #: bound counts entries, so one huge result must not pin a full-table
    #: copy per filter/ordering combination (``None`` = no row cap).
    query_cache_max_rows: Optional[int] = 10_000
    label_cache_size: int = 8192
    label_cache_ttl: Optional[float] = None
    fragment_cache_enabled: bool = False
    fragment_cache_size: int = 256
    fragment_cache_ttl: Optional[float] = 30.0

    @classmethod
    def disabled(cls) -> "CacheConfig":
        """A configuration with every cache layer off (benchmark baselines)."""
        return cls(enabled=False, fragment_cache_enabled=False)

    def with_fragments(self, size: int = 256, ttl: Optional[float] = 30.0) -> "CacheConfig":
        """This configuration with the rendered-fragment cache switched on."""
        return replace(
            self,
            fragment_cache_enabled=True,
            fragment_cache_size=size,
            fragment_cache_ttl=ttl,
        )

    @property
    def query_cache_enabled(self) -> bool:
        return self.enabled and self.query_cache_size != 0

    @property
    def label_cache_enabled(self) -> bool:
        return self.enabled and self.label_cache_size != 0

    @property
    def fragments_enabled(self) -> bool:
        return self.enabled and self.fragment_cache_enabled and self.fragment_cache_size != 0
