"""The faceted query cache.

Entries are keyed by ``(table, normalized query, schema generation)`` and
store the raw unmarshalled ``(jid, jvar branches, column values)`` rows of a
query result *before* Early Pruning runs.  That ordering is what makes the
cache safe to share across viewers: pruning and policy resolution still
happen per request, for the actual viewer, against exactly the rows an
uncached fetch would have produced.  Nothing viewer-specific is ever stored
here.

The same store caches aggregate plans: an aggregate pushdown's jvars
partitions (``(branches, per-partition aggregate row)`` pairs) are
pre-pruning data by the same argument -- the faceted merge and the
per-viewer visibility filter both run per request -- and the aggregate
query's own normalised text keys the entry, so a row-fetching plan and an
aggregate plan over the same filters never collide.

Invalidation is write-through: the cache subscribes to the owning database's
:class:`~repro.cache.bus.InvalidationBus` and drops every entry whose query
touched a written table (``Query.tables_read()`` registers joins and tables
referenced only inside subqueries).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.cache.bus import ALL_TABLES, InvalidationBus, subscribe_weak
from repro.cache.lru import LRUCache, MISSING

#: One cached result row: (jid, jvar branches, unqualified column values).
CachedEntry = Tuple[int, Tuple[Tuple[str, bool], ...], Dict[str, Any]]

#: One cached aggregate partition: (jvar branches, per-partition aggregates).
AggregateEntry = Tuple[Tuple[Tuple[str, bool], ...], Dict[str, Any]]


def normalize_query(query: Any) -> str:
    """A deterministic textual key for a query description.

    ``repro.db.query.Query`` is a frozen dataclass tree (expressions
    included), so its ``repr`` is stable and canonical for our purposes --
    two structurally identical queries normalise to the same string.
    """
    return repr(query)


class FacetedQueryCache:
    """Caches pre-pruning query results, invalidated by table writes."""

    def __init__(
        self,
        max_entries: Optional[int] = 512,
        ttl: Optional[float] = None,
        clock=None,
        max_rows: Optional[int] = None,
    ) -> None:
        kwargs = {} if clock is None else {"clock": clock}
        self._lru = LRUCache(max_entries, ttl, on_evict=self._forget_key, **kwargs)
        #: row-count cap per stored result (None = uncapped); the entry-count
        #: LRU bound alone would let one huge result pin a full-table copy.
        self.max_rows = max_rows
        #: table name -> keys of live entries that read from the table
        self._keys_by_table: Dict[str, set] = {}
        self._index_lock = threading.Lock()
        self._bus: Optional[InvalidationBus] = None
        self._subscription = None

    # -- bus wiring -----------------------------------------------------------------

    def bind(self, bus: InvalidationBus) -> None:
        """Subscribe to a database's write events (idempotent per bus).

        The subscription holds only a weak reference to this cache, so a
        cache that goes out of scope (e.g. with a discarded FORM) does not
        accumulate as a dead subscriber on a long-lived database's bus.
        """
        if self._bus is bus:
            return
        self.unbind()
        self._bus = bus
        self._subscription = subscribe_weak(bus, self, FacetedQueryCache._on_write)

    def unbind(self) -> None:
        if self._bus is not None and self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
        self._bus = None
        self._subscription = None

    def _on_write(self, table: str) -> None:
        if table == ALL_TABLES:
            self.clear()
            return
        self.invalidate_table(table)

    # -- lookups ----------------------------------------------------------------------

    def key_for(self, table: str, query: Any) -> Hashable:
        """The cache key of one query.

        Besides the table and normalised query text, the key carries the
        schema generation and the write generation of every table the query
        reads -- joins *and* tables referenced only inside subqueries (a
        bounded query's jid subselect reads the same tables, but a future
        pushdown may not).  Stamping write generations makes cache fills
        safe against concurrent writers: a result computed *before* a write
        is stored under the pre-write generations, which no post-write
        lookup ever produces, so it can never be served stale -- event-
        driven invalidation then only reclaims the memory.
        """
        tables = self._tables_read(table, query)
        if self._bus is not None:
            schema_generation = self._bus.schema_generation
            write_generations = tuple(self._bus.write_generation(t) for t in tables)
        else:
            schema_generation = 0
            write_generations = ()
        return (table, normalize_query(query), schema_generation, write_generations)

    @staticmethod
    def _tables_read(table: str, query: Any) -> Tuple[str, ...]:
        """Every table ``query`` reads, subqueries included; duck-typed so
        plain strings/objects without the Query protocol still key safely."""
        tables_read = getattr(query, "tables_read", None)
        if callable(tables_read):
            tables = tables_read()
            if table not in tables:
                tables = (table, *tables)
            return tuple(tables)
        return (table, *(join.table for join in getattr(query, "joins", ())))

    def get(self, key: Hashable) -> Optional[List[CachedEntry]]:
        value = self._lru.lookup(key)
        return None if value is MISSING else value

    def put(self, key: Hashable, tables: Sequence[str], entries: List[CachedEntry]) -> None:
        """Store a result and register it for invalidation on each table.

        Oversized results (more rows than ``max_rows``) are served but not
        stored, bounding per-entry memory."""
        if self.max_rows is not None and len(entries) > self.max_rows:
            return
        with self._index_lock:
            for table in tables:
                self._keys_by_table.setdefault(table, set()).add(key)
        self._lru.put(key, entries)

    # -- invalidation -----------------------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        """Drop every cached result that read from ``table``."""
        with self._index_lock:
            keys = list(self._keys_by_table.pop(table, ()))
        dropped = 0
        for key in keys:
            if self._lru.remove(key):
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._lru.clear()
        with self._index_lock:
            self._keys_by_table.clear()

    def _forget_key(self, key: Hashable, _value: Any) -> None:
        """Eviction callback: keep the table index free of dead keys."""
        # Re-entrant: LRUCache invokes this under its own lock from put/
        # remove/clear; never call back into the LRU from here.
        with self._index_lock:
            for keys in self._keys_by_table.values():
                keys.discard(key)

    # -- introspection ------------------------------------------------------------------

    @property
    def stats(self):
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def __repr__(self) -> str:
        return f"FacetedQueryCache({self._lru!r})"
