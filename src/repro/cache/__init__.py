"""Policy-aware caching for the faceted ORM (the ``repro.cache`` subsystem).

Caching faceted data is security-sensitive: a cache entry must never leak
one viewer's facet to another.  The subsystem therefore splits into layers
with distinct sharing rules:

* :class:`~repro.cache.lru.LRUCache` -- the generic bounded TTL cache with
  hit/miss/eviction statistics everything else is built on;
* :class:`~repro.cache.query_cache.FacetedQueryCache` -- raw row+jvar
  query results cached *before* Early Pruning, so one fetch is shared by
  all viewers without storing anything viewer-specific;
* :class:`~repro.cache.label_cache.LabelResolutionCache` -- per-viewer
  label outcomes, keyed by ``(label name, viewer identity)``;
* :class:`~repro.cache.fragment.FragmentCache` -- optional per-viewer
  rendered page bodies for the web layer;
* :class:`~repro.cache.bus.InvalidationBus` -- write-through invalidation:
  every database write publishes a table-level event the caches consume.

:class:`~repro.cache.config.CacheConfig` on the FORM selects and sizes the
layers (``CacheConfig.disabled()`` restores the uncached, paper-faithful
behaviour); :class:`~repro.cache.integration.FormCaches` wires them up.
"""

from repro.cache.bus import ALL_TABLES, InvalidationBus, subscribe_weak
from repro.cache.config import CacheConfig
from repro.cache.epoch import bump_policy_epoch, policy_epoch
from repro.cache.fragment import FragmentCache
from repro.cache.integration import FormCaches
from repro.cache.label_cache import LabelResolutionCache, viewer_cache_key
from repro.cache.lru import MISSING, CacheStats, LRUCache
from repro.cache.query_cache import FacetedQueryCache, normalize_query

__all__ = [
    "ALL_TABLES",
    "CacheConfig",
    "CacheStats",
    "FacetedQueryCache",
    "FormCaches",
    "FragmentCache",
    "InvalidationBus",
    "LRUCache",
    "LabelResolutionCache",
    "MISSING",
    "bump_policy_epoch",
    "normalize_query",
    "policy_epoch",
    "subscribe_weak",
    "viewer_cache_key",
]
