"""The per-viewer rendered-fragment cache.

Caches whole rendered page bodies keyed by ``(path, sorted query params,
viewer identity)``.  Because concretisation has already happened by the
time a body exists, a cached body is only ever replayed to the viewer it
was rendered for -- the viewer identity is part of the key, and uncacheable
viewers (no stable identity) bypass the cache entirely.

Freshness: any database write and any policy-epoch bump invalidates the
whole fragment cache (a rendered page may depend on any table and any
policy input), and entries carry a TTL as a further bound.  The web layer
additionally clears it after every non-GET request, covering mutations that
bypass both channels (e.g. session/auth state).
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping, Optional, Tuple

from repro.cache.bus import InvalidationBus, subscribe_weak
from repro.cache.epoch import policy_epoch
from repro.cache.lru import LRUCache, MISSING


class FragmentCache:
    """Rendered page bodies, keyed per viewer, aggressively invalidated."""

    def __init__(
        self,
        max_entries: Optional[int] = 256,
        ttl: Optional[float] = 30.0,
        clock=None,
    ) -> None:
        kwargs = {} if clock is None else {"clock": clock}
        self._lru = LRUCache(max_entries, ttl, **kwargs)
        self._bus: Optional[InvalidationBus] = None
        self._subscription = None
        #: bumped on every clear; guards fills that raced an invalidation.
        self._generation = 0

    # -- bus wiring -----------------------------------------------------------------

    def bind(self, bus: InvalidationBus) -> None:
        if self._bus is bus:
            return
        self.unbind()
        self._bus = bus
        self._subscription = subscribe_weak(bus, self, FragmentCache._on_write)

    def unbind(self) -> None:
        if self._bus is not None and self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
        self._bus = None
        self._subscription = None

    def _on_write(self, _table: str) -> None:
        # Through clear() so the generation bumps: renders that started
        # before this write must not be cached after it.
        self.clear()

    # -- lookups ----------------------------------------------------------------------

    @staticmethod
    def key_for(
        path: str, params: Mapping[str, Any], viewer_key: Hashable
    ) -> Hashable:
        frozen_params = tuple(sorted((str(k), str(v)) for k, v in params.items()))
        return (path, frozen_params, viewer_key)

    @property
    def generation(self) -> int:
        """Snapshot before rendering; pass to :meth:`put` to guard the fill."""
        return self._generation

    def get(self, key: Hashable) -> Optional[Tuple[str, dict]]:
        """The cached ``(body, headers)`` pair, or ``None``."""
        entry = self._lru.lookup(key)
        if entry is MISSING:
            return None
        body, headers, epoch = entry
        if epoch != policy_epoch():
            self._lru.remove(key)
            return None
        return body, dict(headers)

    def put(
        self,
        key: Hashable,
        body: str,
        headers: Optional[Mapping[str, str]] = None,
        generation: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Store a rendered page.

        ``generation``/``epoch`` are snapshots taken *before* rendering
        started; a write or epoch bump landing mid-render makes the fill a
        no-op (or stamps it already-stale), so a body rendered from
        pre-write data is never replayed after its invalidation event.
        """
        if generation is not None and generation != self._generation:
            return
        entry_epoch = policy_epoch() if epoch is None else epoch
        self._lru.put(key, (body, dict(headers or {}), entry_epoch))

    def clear(self) -> None:
        self._generation += 1
        self._lru.clear()

    @property
    def stats(self):
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def __repr__(self) -> str:
        return f"FragmentCache({self._lru!r})"
