"""A generic LRU cache with TTL, size bounds and statistics.

Every higher-level cache in :mod:`repro.cache` (the faceted query cache, the
label-resolution memo, the rendered-fragment cache and the template parse
cache) is built on this one primitive.  Entries are evicted in
least-recently-used order once ``max_entries`` is reached; a per-cache TTL
expires entries lazily on access.  The clock is injectable so tests can
drive expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional, Tuple

#: Sentinel distinguishing "missing" from cached falsy values (False, None).
MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.puts = 0
        self.evictions = self.expirations = self.invalidations = 0


class LRUCache:
    """A thread-safe bounded mapping with LRU eviction and optional TTL.

    ``max_entries`` bounds the number of live entries (``None`` means
    unbounded); ``ttl`` is a lifetime in seconds (``None`` means entries
    never expire).  ``on_evict(key, value)`` is invoked for entries removed
    by eviction, expiry or explicit invalidation -- higher-level caches use
    it to keep secondary indexes consistent.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 1024,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._on_evict = on_evict
        self._entries: "OrderedDict[Hashable, Tuple[Any, float]]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- core mapping operations ---------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, or ``default``; refreshes LRU recency on hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return default
            value, stored_at = entry
            if self._expired(stored_at):
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                self._notify_evict(key, value)
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def lookup(self, key: Hashable) -> Any:
        """Like :meth:`get` but returns :data:`MISSING` on a miss, so falsy
        values (``False``, ``None``) can be cached unambiguously."""
        return self.get(key, MISSING)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU tail if needed."""
        if self.max_entries == 0:
            return
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (value, self._clock())
            self.stats.puts += 1
            while self.max_entries is not None and len(self._entries) > self.max_entries:
                evicted_key, (evicted_value, _at) = self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._notify_evict(evicted_key, evicted_value)

    def remove(self, key: Hashable) -> bool:
        """Invalidate one entry; returns whether it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self.stats.invalidations += 1
            self._notify_evict(key, entry[0])
            return True

    def clear(self) -> int:
        """Invalidate everything; returns the number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            if self._on_evict is not None:
                for key, (value, _at) in list(self._entries.items()):
                    self._notify_evict(key, value)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            return not self._expired(entry[1])

    def keys(self) -> Iterable[Hashable]:
        with self._lock:
            return list(self._entries.keys())

    def purge_expired(self) -> int:
        """Eagerly drop expired entries (normally expiry is lazy)."""
        if self.ttl is None:
            return 0
        with self._lock:
            doomed = [
                key for key, (_value, stored_at) in self._entries.items()
                if self._expired(stored_at)
            ]
            for key in doomed:
                value, _at = self._entries.pop(key)
                self.stats.expirations += 1
                self._notify_evict(key, value)
            return len(doomed)

    # -- internals ------------------------------------------------------------------

    def _expired(self, stored_at: float) -> bool:
        return self.ttl is not None and (self._clock() - stored_at) > self.ttl

    def _notify_evict(self, key: Hashable, value: Any) -> None:
        if self._on_evict is not None:
            self._on_evict(key, value)

    def __repr__(self) -> str:
        return (
            f"LRUCache(entries={len(self._entries)}, max={self.max_entries}, "
            f"ttl={self.ttl}, hit_rate={self.stats.hit_rate:.2f})"
        )
