"""Span-tree tracing: per-request scoping with a near-zero disabled path.

A :class:`Trace` is one tree of :class:`Span` nodes (monotonic timings from
``time.perf_counter``) plus a flat counter map accumulated by
:func:`repro.obs.metrics.add`.  The active trace and span live in a
thread-local stack, so concurrent request threads never observe each
other's spans -- the same isolation contract as the FORM's viewer and form
stacks.

Tracing is off by default.  While disabled, :func:`span` and :func:`event`
return one shared stateless no-op object and :func:`trace` yields ``None``,
so the instrumentation threaded through the query and write paths costs a
single flag check per call site:

>>> disable()
>>> span("form.fetch") is span("anything.else")   # shared no-op singleton
True
>>> with tracing():
...     with trace("GET /papers") as tr:
...         with span("form.fetch"):
...             event("plan.bounded", limit=2)
>>> [child.name for child in tr.root.children]
['form.fetch']
>>> [leaf.name for leaf in tr.root.children[0].children]
['plan.bounded']
"""

from __future__ import annotations

import contextlib
import threading
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional

_enabled = False
_local = threading.local()


def enable() -> None:
    """Turn tracing on process-wide (spans/counters start recording)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off process-wide (instrumentation becomes no-ops)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether tracing is currently on."""
    return _enabled


def active() -> bool:
    """Whether tracing is on *and* this thread has a trace in flight.

    The one check hot paths (the backends' statement hook) perform before
    paying for any event construction.
    """
    return _enabled and getattr(_local, "trace", None) is not None


@contextlib.contextmanager
def tracing(on: bool = True) -> Iterator[None]:
    """Scoped enable/disable (tests and benchmarks; restores the old state)."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "attributes", "started", "duration", "children", "counters")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = attributes or {}
        self.started = time.perf_counter()
        self.duration: Optional[float] = None
        self.children: List["Span"] = []
        self.counters: Dict[str, float] = {}

    def finish(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self.started

    def annotate(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def bump(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "duration": self.duration}
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def tree_lines(self, indent: int = 0) -> List[str]:
        """A human-readable per-phase breakdown (``--trace`` benchmark mode)."""
        duration = f"{self.duration * 1e3:8.3f} ms" if self.duration is not None else "   (open)"
        extras = " ".join(
            f"{key}={value}" for key, value in sorted(self.counters.items())
        )
        line = f"{'  ' * indent}{duration}  {self.name}"
        if extras:
            line = f"{line}  [{extras}]"
        lines = [line]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines


class Trace:
    """One request-scoped span tree plus its accumulated counters."""

    __slots__ = ("trace_id", "root", "counters")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        self.trace_id = uuid.uuid4().hex[:16]
        self.root = Span(name, attributes)
        self.counters: Dict[str, float] = {}

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def duration(self) -> Optional[float]:
        return self.root.duration

    def annotate(self, **attributes: Any) -> "Trace":
        self.root.annotate(**attributes)
        return self

    def bump(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "duration": self.root.duration,
            "counters": dict(self.counters),
            "spans": self.root.to_dict(),
        }

    def tree_lines(self) -> List[str]:
        return self.root.tree_lines()


class _Noop:
    """The shared do-nothing span/trace context (stateless, re-entrant)."""

    __slots__ = ()

    def __enter__(self) -> "_Noop":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def annotate(self, **attributes: Any) -> "_Noop":
        return self

    def bump(self, name: str, value: float) -> None:
        pass


NOOP = _Noop()


class _SpanContext:
    """Context manager pushing one span onto the thread's span stack."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        _span_stack().append(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> bool:
        self._span.finish()
        stack = _span_stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        return False


def _span_stack() -> List[Span]:
    stack = getattr(_local, "spans", None)
    if stack is None:
        stack = []
        _local.spans = stack
    return stack


def current_trace() -> Optional[Trace]:
    """This thread's in-flight trace, or ``None``."""
    return getattr(_local, "trace", None)


def current_span() -> Optional[Span]:
    """The innermost open span of this thread's trace, or its root."""
    trace = current_trace()
    if trace is None:
        return None
    stack = _span_stack()
    return stack[-1] if stack else trace.root


@contextlib.contextmanager
def trace(name: str, **attributes: Any) -> Iterator[Optional[Trace]]:
    """Run the enclosed block as one trace (yields ``None`` when disabled).

    The finished trace is stored in the process-wide registry, retrievable
    by id (the ``/debug/trace/<id>`` endpoint).  Nested calls stack: the
    inner trace temporarily replaces the outer one for this thread.
    """
    if not _enabled:
        yield None
        return
    started = Trace(name, attributes or None)
    previous = getattr(_local, "trace", None)
    previous_spans = getattr(_local, "spans", None)
    _local.trace = started
    _local.spans = []
    try:
        yield started
    finally:
        started.root.finish()
        _local.trace = previous
        _local.spans = previous_spans if previous_spans is not None else []
        from repro.obs.registry import get_registry  # late: registry is tiny

        get_registry().store_trace(started)


def span(name: str, **attributes: Any) -> Any:
    """A timed child span of the current trace (no-op when disabled)."""
    if not _enabled:
        return NOOP
    trace_ = getattr(_local, "trace", None)
    if trace_ is None:
        return NOOP
    node = Span(name, attributes or None)
    parent = current_span()
    if parent is not None:
        parent.children.append(node)
    return _SpanContext(node)


def event(name: str, **attributes: Any) -> None:
    """Record an instantaneous event as a zero-duration child span."""
    if not _enabled:
        return
    parent = current_span()
    if parent is None:
        return
    node = Span(name, attributes or None)
    node.duration = 0.0
    parent.children.append(node)
