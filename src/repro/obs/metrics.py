"""Typed counters mapping runtime work to the paper's cost model.

Every counter name is declared in :data:`COUNTER_GLOSSARY` with the paper
concept it measures; :func:`add` bumps the process-wide totals and -- when a
trace is in flight on the calling thread -- the current trace and span, so
per-request numbers and global numbers always add up.

While tracing is disabled :func:`add` returns after one flag check and
allocates nothing:

>>> from repro import obs
>>> obs.disable()
>>> before = totals.snapshot()
>>> add("policy.evaluations")
>>> totals.snapshot() == before
True
"""

from __future__ import annotations

import threading
from typing import Dict

# Bind the submodule, not the package attribute: ``repro.obs`` re-exports the
# ``trace`` context manager under the same name, shadowing the module (and
# ``import ... as`` resolves through the package attribute too).
import repro.obs.trace
import sys

_trace = sys.modules["repro.obs.trace"]

#: counter name -> the paper concept it measures.
COUNTER_GLOSSARY: Dict[str, str] = {
    "policy.evaluations": "policy closures run (Section 3.2 policy checks)",
    "labels.resolved": "label polarities computed for a viewer (Early Pruning)",
    "facet.rows.unmarshalled": "jid/jvars rows rebuilt into instances (Section 3.1.1)",
    "facet.rows.expanded": "facet rows produced by save-side expansion (Table 1)",
    "worlds.merged": "per-assignment partitions merged into faceted results",
    "pc.guard.rewrites": "pc-guarded facet-row rewrites (Section 2.2 writes)",
    "writes.fast_path": "bulk writes compiled to one UPDATE/DELETE statement",
    "writes.fallback": "bulk writes taking the batched facet rewrite",
    "writes.forced_fallback.read_set": (
        "eligible fast-path updates forced to the batched rewrite because "
        "a public-facet method reads an assigned column (repro.analysis)"
    ),
    "plan.delete_guarded_pushdown": (
        "pc-guarded deletes compiled to one guarded UPDATE statement "
        "(pc labels statically absent from the table's jvars)"
    ),
    "plan.bounded": "bounded reads compiled to the jid-subselect pushdown",
    "plan.keys": "projected record-key queries (write fallback jid scans)",
    "plan.aggregate_pushdown": "aggregates compiled to one grouped statement",
    "plan.update_pushdown": "updates compiled to one UPDATE statement",
    "plan.delete_pushdown": "deletes compiled to one DELETE statement",
    "plan.policy_pushdown": (
        "pruned reads whose pruning predicate was compiled into the SQL "
        "statement (Early Pruning in SQL, repro.form.pushdown)"
    ),
    "plan.policy_pushdown.opaque_fallback": (
        "pruned reads kept on the Python path because a policy classified "
        "as opaque (repro.analysis.classify)"
    ),
    "plan.policy_pushdown.direct": (
        "policied tables served at the direct tier: the compiled symbolic "
        "predicate rendered inline in the WHERE clause, no label store"
    ),
    "plan.policy_pushdown.indexable": (
        "policied tables served at the indexable tier: inline predicate "
        "with prefix/range atoms servable from ordered indexes"
    ),
    "plan.index.hash_probe": (
        "memory-engine reads served by a hash-index bucket probe "
        "(=, IN, IS NULL on an indexed column)"
    ),
    "plan.index.range_probe": (
        "memory-engine reads served by an ordered-index range probe "
        "(<, <=, >, >=, BETWEEN, prefix LIKE on an ordered column)"
    ),
    "plan.index.ordered_scan": (
        "memory-engine reads served by an in-order ordered-index walk "
        "(ORDER BY without a sort, early exit under LIMIT)"
    ),
    "plan.index.full_scan": (
        "memory-engine reads where the cost model chose (or was forced "
        "to) a full heap scan"
    ),
    "pushdown.store.refresh": (
        "label-assignment store repopulations (one per stale "
        "(table, viewer) slice; Early Pruning in SQL)"
    ),
    "db.statements": "SQL statements executed by the backends",
    "db.rows": "rows returned or changed by those statements",
    "web.requests": "requests dispatched by the web applications",
    "web.wsgi.requests": "requests arriving through the WSGI adapter",
}


class Totals:
    """Thread-safe process-wide counter totals."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}
        self._lock = threading.Lock()

    def add(self, name: str, value: float) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._values)

    def get(self, name: str) -> float:
        with self._lock:
            return self._values.get(name, 0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


#: The process-wide totals (reset via :func:`repro.obs.reset`).
totals = Totals()


def add(name: str, value: float = 1) -> None:
    """Bump a counter (global totals + current trace + current span).

    No-op while tracing is disabled, so call sites on hot paths pay one
    flag check.  Unknown names are accepted (applications may count their
    own work) but the core instrumentation sticks to the glossary.
    """
    if not _trace._enabled:
        return
    totals.add(name, value)
    current = _trace.current_trace()
    if current is not None:
        current.bump(name, value)
        span = _trace.current_span()
        if span is not None:
            span.bump(name, value)
