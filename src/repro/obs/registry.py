"""The process-wide observability registry.

One place aggregating everything the instrumentation produces: a bounded
ring of recent traces (served by ``/debug/trace/<id>``), the counter totals,
and the cache layers' ``CacheStats`` -- every
:class:`~repro.cache.integration.FormCaches` registers itself on
construction (weakly, so test FORMs are collected normally) and
:meth:`ObsRegistry.snapshot` sums the live layers.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Dict, List, Optional

#: How many finished traces the ring buffer keeps.
TRACE_RING_SIZE = 256

#: ``CacheStats.snapshot`` keys that sum across cache instances.
_SUMMABLE = ("hits", "misses", "puts", "evictions", "expirations", "invalidations")


class ObsRegistry:
    """Recent traces + counter totals + registered cache-stat sources."""

    def __init__(self) -> None:
        self._traces: "OrderedDict[str, Any]" = OrderedDict()
        self._caches: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._lock = threading.Lock()

    # -- traces ------------------------------------------------------------------

    def store_trace(self, trace: Any) -> None:
        with self._lock:
            self._traces[trace.trace_id] = trace
            while len(self._traces) > TRACE_RING_SIZE:
                self._traces.popitem(last=False)

    def get_trace(self, trace_id: str) -> Optional[Any]:
        with self._lock:
            return self._traces.get(trace_id)

    def recent_traces(self, count: int = 20) -> List[Any]:
        with self._lock:
            return list(self._traces.values())[-count:]

    # -- cache sources -----------------------------------------------------------

    def register_caches(self, caches: Any) -> None:
        """Track a FormCaches instance (weakly) for the metrics snapshot."""
        with self._lock:
            self._caches.add(caches)

    def cache_stats(self) -> Dict[str, Any]:
        """Per-layer ``CacheStats``, summed over every live registered FORM."""
        with self._lock:
            sources = list(self._caches)
        layers: Dict[str, Dict[str, float]] = {}
        for source in sources:
            for layer, stats in source.stats().items():
                bucket = layers.setdefault(layer, {key: 0 for key in _SUMMABLE})
                for key in _SUMMABLE:
                    bucket[key] += stats.get(key, 0)
        return {"sources": len(sources), "layers": layers}

    # -- the JSON snapshot ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload: counters, caches, recent trace index."""
        # Import the submodules directly: the package namespace rebinds
        # ``trace`` to the context-manager function of the same name.
        from repro.obs.metrics import totals
        from repro.obs.trace import enabled

        return {
            "enabled": enabled(),
            "counters": totals.snapshot(),
            "caches": self.cache_stats(),
            "traces": [
                {
                    "trace_id": item.trace_id,
                    "name": item.name,
                    "duration": item.duration,
                }
                for item in self.recent_traces()
            ],
        }

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()


_registry = ObsRegistry()


def get_registry() -> ObsRegistry:
    """The process-wide registry singleton."""
    return _registry
