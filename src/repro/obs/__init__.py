"""`repro.obs`: tracing, faceted-execution metrics and the metrics registry.

The paper's argument is about *where* policy enforcement costs live --
policy checks, facet blowup, early pruning.  This subsystem makes those
costs first-class observables:

* :mod:`repro.obs.trace` -- a thread-safe span tree with monotonic timings,
  scoped per request, near-zero-overhead while disabled;
* :mod:`repro.obs.metrics` -- typed counters whose glossary maps each name
  to the paper concept it measures (policy evaluations, facet rows
  unmarshalled, worlds merged, ...);
* :mod:`repro.obs.registry` -- the process-wide registry aggregating recent
  traces, counter totals and every FORM's cache statistics into one JSON
  snapshot (the ``/metrics`` endpoint).

Everything is stdlib-only and imported by the db/form/web layers; this
package imports nothing from them.
"""

from repro.obs.metrics import COUNTER_GLOSSARY, add, totals
from repro.obs.registry import ObsRegistry, get_registry
from repro.obs.trace import (
    NOOP,
    Span,
    Trace,
    active,
    current_span,
    current_trace,
    disable,
    enable,
    enabled,
    event,
    span,
    trace,
    tracing,
)

__all__ = [
    "COUNTER_GLOSSARY",
    "NOOP",
    "ObsRegistry",
    "Span",
    "Trace",
    "active",
    "add",
    "current_span",
    "current_trace",
    "disable",
    "enable",
    "enabled",
    "event",
    "get_registry",
    "get_trace",
    "record_statement",
    "register_caches",
    "reset",
    "snapshot",
    "span",
    "totals",
    "trace",
    "tracing",
]


def register_caches(caches) -> None:
    """Register a FormCaches instance with the process-wide registry."""
    get_registry().register_caches(caches)


def get_trace(trace_id: str):
    """A finished trace by id, or ``None`` (ring buffer of recent traces)."""
    return get_registry().get_trace(trace_id)


def snapshot() -> dict:
    """The registry's JSON-ready metrics snapshot."""
    return get_registry().snapshot()


def reset() -> None:
    """Clear counter totals and stored traces (tests and benchmarks)."""
    totals.reset()
    get_registry().reset()


def record_statement(event_) -> None:
    """Fold one backend statement event into the active trace.

    Called by :meth:`repro.db.backend.Backend._notify_statement` after the
    explicit observers; appends a ``db.sql`` leaf span carrying the rendered
    SQL and measured duration, and bumps the ``db.*`` counters.  No-op when
    no trace is in flight.
    """
    if not active():
        return
    parent = current_span()
    if parent is not None:
        leaf = Span("db.sql", {"kind": event_.kind, "sql": event_.sql, "rows": event_.rows})
        leaf.started = leaf.started - (event_.duration or 0)
        leaf.duration = event_.duration
        parent.children.append(leaf)
    add("db.statements")
    add("db.rows", event_.rows)
