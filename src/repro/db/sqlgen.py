"""SQL text generation.

Renders schemas and :class:`~repro.db.query.Query` objects to SQL.  Also
provides :func:`django_style_sql` and :func:`jacqueline_style_sql`, which
reproduce the Table 2 comparison from the paper: the Jacqueline translation
of an ORM query selects the ``jid``/``jvars`` meta-data columns of every
joined table and joins foreign keys on ``jid`` instead of the primary key.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.query import (
    Aggregate,
    DeletePlan,
    Query,
    UpdatePlan,
    order_outside_selection,
)
from repro.db.schema import TableSchema


def schema_to_sql(schema: TableSchema) -> str:
    """CREATE TABLE statement for a schema."""
    parts = []
    for column in schema.columns:
        fragment = f'"{column.name}" {column.type.sql_type()}'
        if column.primary_key:
            fragment += " PRIMARY KEY AUTOINCREMENT"
        elif not column.nullable:
            fragment += " NOT NULL"
        parts.append(fragment)
    body = ", ".join(parts)
    return f'CREATE TABLE IF NOT EXISTS "{schema.name}" ({body})'


def query_to_sql(
    query: Query, qualify: bool = False, _select: Optional[str] = None
) -> Tuple[str, List[Any]]:
    """Render a query to a SELECT statement and its bound parameters.

    The bounded-query pushdown renders as a jid subselect -- the LIMIT sits
    inside, so the database prunes to *n* records before the outer query
    fetches their facet rows:

    >>> from repro.db.expr import eq
    >>> sub = (Query("Paper").filter(eq("accepted", True))
    ...        .select("jid").distinct_rows().limited(5))
    >>> outer = Query("Paper").filter(eq("accepted", True)).in_subquery("jid", sub)
    >>> statement, params = query_to_sql(outer)
    >>> print(statement)
    SELECT * FROM "Paper" WHERE (accepted = ? AND jid IN (SELECT DISTINCT "jid" FROM "Paper" WHERE accepted = ? LIMIT 5))
    >>> params
    [True, True]

    An *ordered* bounded subquery renders in the grouped form instead --
    SQLite's ``DISTINCT ... ORDER BY non-selected-column`` sorts each key
    by an arbitrary row, so the order column is aggregated per key (MIN
    ascending / MAX descending, key tie-break) to make the kept record set
    deterministic and backend-independent:

    >>> sub = Query("Paper").select("jid").distinct_rows().ordered_by("title").limited(5)
    >>> print(query_to_sql(sub)[0])
    SELECT "jid" FROM "Paper" GROUP BY "jid" ORDER BY (MIN("title") IS NULL) ASC, MIN("title") ASC, "jid" ASC LIMIT 5

    Aggregate pushdowns render the same way on both backends: scalar
    aggregates (``COUNT(DISTINCT jid)``, ``EXISTS``) become one statement,
    and grouped aggregate selections alias each aggregate with its
    ``result_key`` so result rows are keyed identically everywhere:

    >>> print(query_to_sql(Query("Paper").with_aggregate("COUNT", "jid", distinct=True))[0])
    SELECT COUNT(DISTINCT "jid") FROM "Paper"
    >>> print(query_to_sql(Query("Paper").with_aggregate("EXISTS"))[0])
    SELECT EXISTS(SELECT 1 FROM "Paper")
    >>> grouped = (Query("Paper").select_aggregates(Aggregate("SUM", "score"))
    ...            .grouped_by("jvars"))
    >>> print(query_to_sql(grouped)[0])
    SELECT "jvars" AS "jvars", SUM("score") AS "SUM(score)" FROM "Paper" GROUP BY "jvars"
    """
    params: List[Any] = []

    if query.aggregate is not None and query.aggregate.function.upper() == "EXISTS":
        # EXISTS wraps the whole (aggregate-free) query: the database
        # answers the membership probe without returning any row.  DISTINCT
        # and ORDER BY cannot change whether any row exists, so they are
        # dropped from the subselect (LIMIT/OFFSET can, and stay).
        inner = replace(query, aggregate=None, distinct=False, order_by=())
        inner_sql, inner_params = query_to_sql(inner, qualify=qualify, _select="1")
        return f"SELECT EXISTS({inner_sql})", inner_params

    # A distinct query ordered by non-selected columns evaluates in grouped
    # form (see order_outside_selection): DISTINCT becomes GROUP BY over
    # the selected columns and every order term becomes MIN/MAX per group.
    grouped_order = order_outside_selection(query)
    names: Optional[Sequence[str]] = None

    if _select is not None:
        select_clause = _select
    elif query.aggregates:
        parts = [f'{_quote_name(name)} AS "{name}"' for name in query.group_by]
        parts.extend(
            f'{_render_aggregate(aggregate)} AS "{aggregate.result_key()}"'
            for aggregate in query.aggregates
        )
        select_clause = ", ".join(parts)
    elif query.aggregate is not None:
        select_clause = _render_aggregate(query.aggregate)
    elif query.columns:
        names = query.qualified_columns() if qualify else query.columns
        select_clause = ", ".join(_quote_name(name) for name in names)
    elif qualify:
        select_clause = ", ".join(
            f'"{table}".*' for table in [query.table] + [join.table for join in query.joins]
        )
    else:
        select_clause = "*"

    if query.distinct and not grouped_order:
        select_clause = f"DISTINCT {select_clause}"

    statement = f'SELECT {select_clause} FROM "{query.table}"'

    for join in query.joins:
        left = _quote_name(
            join.left_column if "." in join.left_column else f"{query.table}.{join.left_column}"
        )
        right = _quote_name(
            join.right_column if "." in join.right_column else f"{join.table}.{join.right_column}"
        )
        statement += f' JOIN "{join.table}" ON {left} = {right}'

    if query.where is not None:
        where_sql, where_params = query.where.to_sql()
        statement += f" WHERE {_quote_where(where_sql)}"
        params.extend(where_params)

    if query.group_by:
        statement += " GROUP BY " + ", ".join(_quote_name(c) for c in query.group_by)
    elif grouped_order:
        statement += " GROUP BY " + ", ".join(_quote_name(name) for name in names)

    if query.order_by:
        terms = []
        for order in query.order_by:
            direction = "ASC" if order.ascending else "DESC"
            if grouped_order:
                # Aggregate per group, with an explicit IS-NULL sort flag:
                # the memory engine sorts None last ascending (first
                # descending), while bare SQL puts NULL first ascending --
                # the flag pins both backends to the same record set.
                function = "MIN" if order.ascending else "MAX"
                target = f"{function}({_quote_name(order.column)})"
                terms.append(f"({target} IS NULL) {direction}")
                terms.append(f"{target} {direction}")
            else:
                # Plain ORDER BY gets the same IS-NULL sort flag: SQLite
                # sorts NULL first ascending while the memory engine sorts
                # None last, so without the flag the two backends disagree
                # on row order whenever the order column is nullable.
                terms.append(f"({_quote_name(order.column)} IS NULL) {direction}")
                terms.append(f"{_quote_name(order.column)} {direction}")
        if grouped_order:
            # Deterministic tie-break so equal aggregate keys cannot make
            # the two backends keep different records under a LIMIT.
            terms.extend(f"{_quote_name(name)} ASC" for name in names)
        statement += " ORDER BY " + ", ".join(terms)

    if query.limit is not None:
        statement += f" LIMIT {int(query.limit)}"
        if query.offset:
            statement += f" OFFSET {int(query.offset)}"
    elif query.offset:
        # SQLite requires a LIMIT clause before OFFSET; -1 means unbounded.
        statement += f" LIMIT -1 OFFSET {int(query.offset)}"

    return statement, params


def update_to_sql(plan: UpdatePlan) -> Tuple[str, List[Any]]:
    """Render an :class:`~repro.db.query.UpdatePlan` to one UPDATE statement.

    The WHERE clause may nest a record-key subselect (see
    :func:`~repro.db.query.plan_update`), rendered inline exactly like a
    read query's pushdown -- the whole write stays one statement:

    >>> from repro.db.expr import eq
    >>> from repro.db.query import Query, plan_update
    >>> plan = plan_update(
    ...     Query("Paper").filter(eq("accepted", True)).limited(3),
    ...     {"decided": True}, "jid")
    >>> print(update_to_sql(plan)[0])
    UPDATE "Paper" SET "decided" = ? WHERE jid IN (SELECT DISTINCT "jid" FROM "Paper" WHERE accepted = ? LIMIT 3)
    """
    assignments = ", ".join(f'"{name}" = ?' for name in plan.values)
    params: List[Any] = list(plan.values.values())
    statement = f'UPDATE "{plan.table}" SET {assignments}'
    if plan.where is not None:
        where_sql, where_params = plan.where.to_sql()
        statement += f" WHERE {where_sql}"
        params.extend(where_params)
    return statement, params


def delete_to_sql(plan: DeletePlan) -> Tuple[str, List[Any]]:
    """Render a :class:`~repro.db.query.DeletePlan` to one DELETE statement.

    >>> from repro.db.expr import eq
    >>> from repro.db.query import DeletePlan
    >>> delete_to_sql(DeletePlan("Paper", eq("withdrawn", True)))
    ('DELETE FROM "Paper" WHERE withdrawn = ?', [True])
    >>> delete_to_sql(DeletePlan("Paper"))
    ('DELETE FROM "Paper"', [])
    """
    statement = f'DELETE FROM "{plan.table}"'
    params: List[Any] = []
    if plan.where is not None:
        where_sql, where_params = plan.where.to_sql()
        statement += f" WHERE {where_sql}"
        params.extend(where_params)
    return statement, params


def _render_aggregate(aggregate: Aggregate) -> str:
    """``COUNT(*)`` / ``SUM("score")`` / ``COUNT(DISTINCT "jid")``."""
    column = aggregate.column
    target = column if column == "*" else _quote_name(column)
    if aggregate.distinct:
        target = f"DISTINCT {target}"
    return f"{aggregate.function.upper()}({target})"


def _quote_name(name: str) -> str:
    if "." in name:
        table, column = name.rsplit(".", 1)
        return f'"{table}"."{column}"'
    return f'"{name}"'


def _quote_where(fragment: str) -> str:
    """Qualify bare column tokens in a rendered where clause.

    Expression.to_sql emits bare names; SQLite accepts them as-is, so the
    clause only needs cosmetic quoting for qualified names.
    """
    return fragment


# -- Table 2: Django vs. Jacqueline translations ----------------------------------------


def django_style_sql(
    base_table: str,
    columns: Sequence[str],
    join_table: str,
    fk_column: str,
    where_column: str,
    where_value: str,
) -> str:
    """The SQL Django would issue for ``filter(rel__field=value)`` (Table 2, left)."""
    select = ", ".join(f"{base_table}.{name}" for name in columns)
    return (
        f"SELECT {select} "
        f"FROM {base_table} "
        f"JOIN {join_table} ON {base_table}.{fk_column} = {join_table}.id "
        f"WHERE {join_table}.{where_column} = '{where_value}';"
    )


def jacqueline_style_sql(
    base_table: str,
    columns: Sequence[str],
    join_table: str,
    fk_column: str,
    where_column: str,
    where_value: str,
) -> str:
    """The SQL the FORM issues for the same query (Table 2, right).

    Differences from the Django translation, exactly as in the paper:

    * the base table's ``jid`` and ``jvars`` columns and the joined table's
      ``jvars`` column are added to the SELECT list;
    * the foreign key joins on the referenced table's ``jid`` rather than its
      primary key ``id``.
    """
    select_columns = [f"{base_table}.{name}" for name in columns]
    select_columns += [f"{base_table}.jid", f"{base_table}.jvars", f"{join_table}.jvars"]
    select = ", ".join(select_columns)
    return (
        f"SELECT {select} "
        f"FROM {base_table} "
        f"JOIN {join_table} ON {base_table}.{fk_column} = {join_table}.jid "
        f"WHERE {join_table}.{where_column} = '{where_value}';"
    )
