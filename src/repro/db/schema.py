"""Table schemas and column types."""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


class ColumnType(enum.Enum):
    """The scalar column types supported by both backends."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATETIME = "DATETIME"

    def python_type(self) -> type:
        return {
            ColumnType.INTEGER: int,
            ColumnType.REAL: float,
            ColumnType.TEXT: str,
            ColumnType.BOOLEAN: bool,
            ColumnType.DATETIME: datetime.datetime,
        }[self]

    def coerce(self, value: Any) -> Any:
        """Coerce a Python value into this column type (``None`` passes)."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            return int(value)
        if self is ColumnType.REAL:
            return float(value)
        if self is ColumnType.TEXT:
            return str(value)
        if self is ColumnType.BOOLEAN:
            if isinstance(value, str):
                return value.lower() in {"1", "true", "yes"}
            return bool(value)
        if self is ColumnType.DATETIME:
            if isinstance(value, datetime.datetime):
                return value
            if isinstance(value, str):
                return datetime.datetime.fromisoformat(value)
            raise TypeError(f"cannot coerce {value!r} to DATETIME")
        raise TypeError(f"unknown column type {self!r}")  # pragma: no cover

    def sql_type(self) -> str:
        """The SQLite storage class used for this column."""
        return {
            ColumnType.INTEGER: "INTEGER",
            ColumnType.REAL: "REAL",
            ColumnType.TEXT: "TEXT",
            ColumnType.BOOLEAN: "INTEGER",
            ColumnType.DATETIME: "TEXT",
        }[self]


@dataclass(frozen=True)
class Column:
    """A single column definition.

    ``indexed`` requests a hash index on the memory engine (exact
    ``=``/``IN``/``IS NULL`` probes) and a ``CREATE INDEX`` on SQLite;
    ``ordered`` additionally requests an *ordered* index serving range
    predicates, prefix matches and ORDER BY (SQLite's B-tree indexes are
    ordered already, so there it only adds the DDL when ``indexed`` is
    unset).
    """

    name: str
    type: ColumnType
    primary_key: bool = False
    nullable: bool = True
    default: Any = None
    indexed: bool = False
    ordered: bool = False

    def coerce(self, value: Any) -> Any:
        if value is None:
            if not self.nullable and not self.primary_key:
                raise ValueError(f"column {self.name!r} is not nullable")
            return None
        return self.type.coerce(value)


@dataclass(frozen=True)
class IndexSpec:
    """A (possibly composite) ordered secondary index declaration.

    ``columns`` are ordered most-significant first, like SQL composite
    indexes: a range or prefix probe on ``columns[0]`` can always be
    served, and the index orders rows by the full column tuple.  The name
    defaults to ``idx_<table>_<col1>_<col2>`` at DDL-emission time (see
    :func:`index_name`), keeping SQLite's per-database index namespace
    collision-free.

    >>> IndexSpec(("score", "jid")).columns
    ('score', 'jid')
    """

    columns: Tuple[str, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("an index needs at least one column")
        if len(self.columns) != len(set(self.columns)):
            raise SchemaError(f"index has duplicate columns: {self.columns!r}")


def index_name(table: str, spec: IndexSpec) -> str:
    """The DDL name of an index (explicit, or derived from its columns).

    >>> index_name("Task", IndexSpec(("path", "jid")))
    'idx_Task_path_jid'
    """
    return spec.name or "idx_{}_{}".format(table, "_".join(spec.columns))


class SchemaError(Exception):
    """Raised for malformed schemas or rows that violate them."""


@dataclass
class TableSchema:
    """A table schema: an ordered list of columns with one primary key.

    The primary key must be an INTEGER column; both backends auto-assign it
    on insert when left unset (mirroring Django's implicit ``id``).
    """

    name: str
    columns: Tuple[Column, ...]
    #: Explicit (possibly composite) ordered-index declarations, beyond the
    #: single-column indexes implied by ``Column.indexed``/``Column.ordered``.
    indexes: Tuple[IndexSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        primary = [column for column in self.columns if column.primary_key]
        if len(primary) != 1:
            raise SchemaError(f"table {self.name!r} must have exactly one primary key")
        if primary[0].type is not ColumnType.INTEGER:
            raise SchemaError(f"primary key of {self.name!r} must be INTEGER")
        self._by_name: Dict[str, Column] = {column.name: column for column in self.columns}
        self._primary_key: Column = primary[0]
        for spec in self.indexes:
            for column in spec.columns:
                if column not in self._by_name:
                    raise SchemaError(
                        f"index {index_name(self.name, spec)!r} references "
                        f"unknown column {column!r}"
                    )

    # -- queries ---------------------------------------------------------------

    @property
    def primary_key(self) -> Column:
        # Cached at construction: per-row index maintenance on the write
        # paths reads this once per row, which a column scan would dominate.
        return self._primary_key

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from exc

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def indexed_columns(self) -> List[Column]:
        return [column for column in self.columns if column.indexed]

    def ordered_indexes(self) -> List[IndexSpec]:
        """Every ordered index of this table, single-column and composite.

        ``Column(ordered=True)`` contributes a single-column spec; the
        schema's explicit :attr:`indexes` follow (duplicate column tuples
        collapse, first declaration wins).
        """
        specs: List[IndexSpec] = [
            IndexSpec((column.name,)) for column in self.columns if column.ordered
        ]
        specs.extend(self.indexes)
        seen: Dict[Tuple[str, ...], None] = {}
        unique = []
        for spec in specs:
            if spec.columns in seen:
                continue
            seen[spec.columns] = None
            unique.append(spec)
        return unique

    # -- row helpers -------------------------------------------------------------

    def validate_row(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Coerce and validate a row dict, filling defaults for missing columns."""
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown column(s) {sorted(unknown)} for table {self.name!r}")
        row: Dict[str, Any] = {}
        for column in self.columns:
            if column.name in values:
                row[column.name] = column.coerce(values[column.name])
            elif column.primary_key:
                row[column.name] = None
            elif column.default is not None:
                row[column.name] = column.coerce(column.default)
            elif column.nullable:
                row[column.name] = None
            else:
                raise SchemaError(
                    f"missing value for non-nullable column {column.name!r} of "
                    f"table {self.name!r}"
                )
        return row

    def with_extra_columns(self, extra: Sequence[Column]) -> "TableSchema":
        """A copy of this schema with additional columns appended.

        Used by the FORM to augment application schemas with the ``jid`` and
        ``jvars`` meta-data columns, and by the legacy-data migration helper.
        """
        existing = set(self.column_names())
        appended = tuple(column for column in extra if column.name not in existing)
        return TableSchema(self.name, self.columns + appended, self.indexes)

    def with_indexes(self, extra: Sequence[IndexSpec]) -> "TableSchema":
        """A copy of this schema with additional ordered indexes appended."""
        existing = {spec.columns for spec in self.indexes}
        appended = tuple(spec for spec in extra if spec.columns not in existing)
        return TableSchema(self.name, self.columns, self.indexes + appended)
