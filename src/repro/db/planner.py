"""Cost-aware access-path planning for the relational substrate.

The planner chooses *how* a single-table predicate is evaluated: a full
scan, an exact hash-index probe (``=`` / ``IN`` / ``IS NULL``), an ordered
range probe (``<`` ``<=`` ``>`` ``>=`` ``BETWEEN`` and case-sensitive
prefix ``LIKE``), or an ordered index scan that serves ORDER BY with an
early exit.  Costs are estimated from :class:`TableStatistics` -- row
count plus per-index key cardinality -- with the classic System R default
selectivities for range predicates (1/4 when bounded on both sides, 1/3
half-open).  The same function drives the memory engine's execution *and*
``explain()``, so the reported plan is always the plan that runs.

>>> stats = TableStatistics(
...     row_count=10000,
...     hash_indexes={"jid": 2500},
...     ordered_indexes={"idx_T_score": ("score",)},
...     ordered_cardinality={"idx_T_score": 90},
... )
>>> from repro.db.expr import between
>>> choice = choose_plan(between("score", 10, 20), statistics=stats)
>>> choice.chosen.kind
'ordered-range'
>>> from repro.db.expr import eq
>>> choose_plan(eq("jid", 7), statistics=stats).chosen.kind
'hash-probe'
>>> choose_plan(None, statistics=stats).chosen.kind
'full-scan'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.db.expr import (
    AndExpr,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    NullSafeEq,
    string_successor,
)

#: System R default selectivity of a range bounded on both sides.
BOUNDED_RANGE_SELECTIVITY = 0.25
#: System R default selectivity of a half-open range.
OPEN_RANGE_SELECTIVITY = 1.0 / 3.0
#: Assumed selectivity of an arbitrary residual filter under an ordered scan.
RESIDUAL_FILTER_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class TableStatistics:
    """The statistics the cost model consumes, as one immutable snapshot.

    ``hash_indexes`` maps hash-indexed columns to their key cardinality;
    ``ordered_indexes`` maps each ordered index's name to its column tuple
    (most-significant first); ``ordered_cardinality`` maps the same names
    to the distinct count of their leading column.
    """

    row_count: int
    hash_indexes: Mapping[str, int] = field(default_factory=dict)
    ordered_indexes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    ordered_cardinality: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class AccessPath:
    """One way of producing a table's candidate rows, with its cost.

    ``exact`` means the candidates are precisely the matching rows (no
    per-row re-evaluation needed); ``serves_order`` means the rows come
    out already in the query's ORDER BY order (no sort, early exit under
    LIMIT).  The probe payload (``values`` for hash probes, ``low``/
    ``high`` ``(value, inclusive)`` bounds for range probes,
    ``descending`` for index scans) is what the executor consumes.
    """

    kind: str  # "full-scan" | "hash-probe" | "ordered-range" | "ordered-scan"
    cost: float
    estimated_rows: float
    index: Optional[str] = None
    column: Optional[str] = None
    exact: bool = False
    serves_order: bool = False
    reason: str = ""
    values: Optional[Tuple[Any, ...]] = None
    low: Optional[Tuple[Any, bool]] = None
    high: Optional[Tuple[Any, bool]] = None
    descending: bool = False
    empty: bool = False

    def describe(self) -> Dict[str, Any]:
        """The explain()-facing summary of this path."""
        description: Dict[str, Any] = {
            "access": self.kind,
            "cost": round(self.cost, 3),
            "estimated_rows": round(self.estimated_rows, 3),
        }
        if self.index is not None:
            description["index"] = self.index
        if self.column is not None:
            description["column"] = self.column
        if self.exact:
            description["exact"] = True
        if self.serves_order:
            description["serves_order"] = True
        if self.reason:
            description["reason"] = self.reason
        return description


@dataclass(frozen=True)
class PlanChoice:
    """The chosen access path plus every alternative the planner costed."""

    chosen: AccessPath
    considered: Tuple[AccessPath, ...]

    def describe(self) -> Dict[str, Any]:
        return {
            "chosen_plan": self.chosen.describe(),
            "considered_plans": [path.describe() for path in self.considered],
        }


# -- probe detection --------------------------------------------------------------


def _bare(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def equality_probe(
    where: Expression, columns
) -> Optional[Tuple[str, Tuple[Any, ...], bool]]:
    """Detect a hash-servable ``= literal`` / ``IN`` / ``IS NULL`` probe.

    Returns ``(column, candidate key values, exact)``.  An ``IN`` list
    drops NULL entries -- a NULL never compares equal, so no matching row
    can live in the NULL bucket -- while ``IS NULL`` reads exactly that
    bucket; both probes are *exact* (bucket membership equals the
    predicate), as is ``= literal`` for a non-NULL literal.  Only
    AND-conjunctions are descended: an OR branch could match rows outside
    any single index bucket, and a descended probe is merely a superset
    (``exact=False``).
    """
    if isinstance(where, Comparison) and where.op == "=":
        if isinstance(where.left, ColumnRef) and isinstance(where.right, Literal):
            name = _bare(where.left.name)
            if name in columns:
                # "= NULL" is UNKNOWN, never a match: the NULL bucket is
                # a superset that per-row evaluation must reject.
                return name, (where.right.value,), where.right.value is not None
    if isinstance(where, InList) and isinstance(where.operand, ColumnRef):
        name = _bare(where.operand.name)
        if name in columns:
            values = tuple(value for value in where.values if value is not None)
            try:
                for value in values:
                    hash(value)
            except TypeError:  # unhashable: cannot probe a hash index
                return None
            return name, values, True
    if isinstance(where, IsNull) and not where.negated:
        if isinstance(where.operand, ColumnRef):
            name = _bare(where.operand.name)
            if name in columns:
                return name, (None,), True
    if isinstance(where, NullSafeEq) and not where.negated:
        # "column IS literal" reads exactly the literal's bucket: IS is
        # two-valued, so even an IS NULL-valued probe is exact.
        if isinstance(where.left, ColumnRef) and isinstance(where.right, Literal):
            name = _bare(where.left.name)
            if name in columns:
                return name, (where.right.value,), True
    if isinstance(where, AndExpr):
        hit = equality_probe(where.left, columns) or equality_probe(
            where.right, columns
        )
        if hit is not None:
            column, values, _exact = hit
            return column, values, False
    return None


@dataclass
class _RangeAtom:
    column: str
    low: Optional[Tuple[Any, bool]]
    high: Optional[Tuple[Any, bool]]
    exact_leaf: bool
    empty: bool


def _atomic_range(expression: Expression, columns) -> Optional[_RangeAtom]:
    """One range-shaped leaf over an ordered column, or ``None``."""
    if isinstance(expression, Comparison):
        op, left, right = expression.op, expression.left, expression.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            name, value = _bare(left.name), right.value
        elif isinstance(left, Literal) and isinstance(right, ColumnRef):
            # Flip "literal op column" into "column op' literal".
            name, value = _bare(right.name), left.value
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        else:
            return None
        if name not in columns:
            return None
        if op == "=":
            if value is None:
                return _RangeAtom(name, None, None, True, True)
            return _RangeAtom(name, (value, True), (value, True), True, False)
        if op not in ("<", "<=", ">", ">="):
            return None
        if value is None:  # comparison with NULL is UNKNOWN for every row
            return _RangeAtom(name, None, None, True, True)
        if op == "<":
            return _RangeAtom(name, None, (value, False), True, False)
        if op == "<=":
            return _RangeAtom(name, None, (value, True), True, False)
        if op == ">":
            return _RangeAtom(name, (value, False), None, True, False)
        return _RangeAtom(name, (value, True), None, True, False)
    if isinstance(expression, Between):
        if not isinstance(expression.operand, ColumnRef):
            return None
        name = _bare(expression.operand.name)
        if name not in columns:
            return None
        if not isinstance(expression.low, Literal) or not isinstance(
            expression.high, Literal
        ):
            return None
        low, high = expression.low.value, expression.high.value
        if low is None or high is None:
            # One NULL bound can still fail definitely on the other side,
            # but never *match*: BETWEEN is >= AND <=, and an AND with an
            # UNKNOWN side is never TRUE.
            return _RangeAtom(name, None, None, True, True)
        return _RangeAtom(name, (low, True), (high, True), True, False)
    if isinstance(expression, Like) and expression.case_sensitive:
        if not isinstance(expression.operand, ColumnRef):
            return None
        name = _bare(expression.operand.name)
        if name not in columns:
            return None
        prefix, pure = expression.literal_prefix()
        if not prefix:
            return None
        upper = string_successor(prefix)
        high = (upper, False) if upper is not None else None
        # A pure "prefix%" pattern matches exactly the strings in the
        # half-open range; anything fancier needs per-row re-evaluation.
        return _RangeAtom(name, (prefix, True), high, pure, False)
    return None


def _gather_ranges(
    expression: Expression, columns, atoms: List[_RangeAtom]
) -> bool:
    """Collect range atoms from an AND-tree; returns whether *every* node
    of the tree was such an atom (the precondition for exactness)."""
    atom = _atomic_range(expression, columns)
    if atom is not None:
        atoms.append(atom)
        return atom.exact_leaf
    if isinstance(expression, AndExpr):
        left = _gather_ranges(expression.left, columns, atoms)
        right = _gather_ranges(expression.right, columns, atoms)
        return left and right
    return False


def _tighter_low(
    a: Optional[Tuple[Any, bool]], b: Optional[Tuple[Any, bool]]
) -> Optional[Tuple[Any, bool]]:
    if a is None:
        return b
    if b is None:
        return a
    if a[0] == b[0]:
        return (a[0], a[1] and b[1])
    return a if a[0] > b[0] else b


def _tighter_high(
    a: Optional[Tuple[Any, bool]], b: Optional[Tuple[Any, bool]]
) -> Optional[Tuple[Any, bool]]:
    if a is None:
        return b
    if b is None:
        return a
    if a[0] == b[0]:
        return (a[0], a[1] and b[1])
    return a if a[0] < b[0] else b


def range_probes(
    where: Expression, columns
) -> Dict[str, Tuple[Optional[Tuple[Any, bool]], Optional[Tuple[Any, bool]], bool, bool]]:
    """Per-column combined range constraints extracted from ``where``.

    Returns ``{column: (low, high, exact, empty)}`` where bounds are
    ``(value, inclusive)`` or ``None`` for unbounded.  ``exact`` holds
    when the whole tree is range atoms on that single column, so range
    membership *is* the predicate; ``empty`` flags a provably
    unsatisfiable conjunct (a NULL bound: that comparison is UNKNOWN for
    every row, and an AND over UNKNOWN is never TRUE).
    """
    atoms: List[_RangeAtom] = []
    pure = _gather_ranges(where, columns, atoms)
    combined: Dict[str, Tuple[Any, Any, bool, bool]] = {}
    touched = {atom.column for atom in atoms}
    for atom in atoms:
        exact = pure and len(touched) == 1
        entry = combined.get(atom.column)
        if entry is None:
            combined[atom.column] = (atom.low, atom.high, exact, atom.empty)
            continue
        low, high, _exact, empty = entry
        try:
            low = _tighter_low(low, atom.low)
            high = _tighter_high(high, atom.high)
        except TypeError:
            # Incomparable bound types (mixed-type literals): keep the
            # first interval, which is still a valid superset.
            combined[atom.column] = (entry[0], entry[1], False, empty or atom.empty)
            continue
        combined[atom.column] = (low, high, exact, empty or atom.empty)
    return combined


# -- cost model -------------------------------------------------------------------


def _range_selectivity(low, high, empty: bool) -> float:
    if empty:
        return 0.0
    if low is not None and high is not None:
        if low[0] == high[0]:
            return 0.05  # equality-as-range: a single key
        return BOUNDED_RANGE_SELECTIVITY
    return OPEN_RANGE_SELECTIVITY


def choose_plan(
    where: Optional[Expression],
    order_by: Sequence[Any] = (),
    limit: Optional[int] = None,
    offset: int = 0,
    *,
    statistics: TableStatistics,
    use_indexes: bool = True,
) -> PlanChoice:
    """Cost every applicable access path and pick the cheapest.

    ``order_by`` is a sequence of :class:`repro.db.query.Order` terms.
    Ties break deterministically by kind: hash probe, then ordered range,
    then ordered scan, then full scan.  With ``use_indexes=False`` (the
    forced-scan mode plan-parity fuzzing runs against) the full scan is
    chosen regardless, but alternatives are still listed as considered.
    """
    rows = float(statistics.row_count)
    order_columns = [(_bare(term.column), term.ascending) for term in order_by]
    sortable = bool(order_by)

    paths: List[AccessPath] = []
    scan_cost = rows + (rows if sortable else 0.0)
    paths.append(
        AccessPath(
            kind="full-scan",
            cost=scan_cost,
            estimated_rows=rows,
            reason="every row is examined"
            + (", then sorted" if sortable else ""),
        )
    )

    if where is not None:
        hit = equality_probe(where, statistics.hash_indexes)
        if hit is not None:
            column, values, exact = hit
            cardinality = max(1, statistics.hash_indexes.get(column) or 1)
            estimated = min(rows, len(values) * rows / cardinality)
            cost = estimated + (estimated if sortable else 0.0)
            paths.append(
                AccessPath(
                    kind="hash-probe",
                    cost=cost,
                    estimated_rows=estimated,
                    index=f"hash:{column}",
                    column=column,
                    exact=exact,
                    reason=(
                        f"{len(values)} key(s) against ~{cardinality} "
                        "distinct values"
                    ),
                    values=values,
                )
            )

    first_column_to_index: Dict[str, str] = {}
    for name, index_columns in statistics.ordered_indexes.items():
        first_column_to_index.setdefault(index_columns[0], name)

    probes: Dict[str, Any] = {}
    if where is not None and first_column_to_index:
        probes = range_probes(where, first_column_to_index)
        for column, (low, high, exact, empty) in probes.items():
            if low is None and high is None and not empty:
                continue
            index = first_column_to_index[column]
            selectivity = _range_selectivity(low, high, empty)
            estimated = rows * selectivity
            # Only a single-column index serves ORDER BY scan-identically:
            # a composite index breaks value ties by its later columns,
            # where the scan path's stable sort keeps heap (pk) order.
            serves = (
                len(order_columns) == 1
                and order_columns[0][0] == column
                and len(statistics.ordered_indexes[index]) == 1
            )
            cost = estimated + (estimated if sortable and not serves else 0.0)
            paths.append(
                AccessPath(
                    kind="ordered-range",
                    cost=cost,
                    estimated_rows=estimated,
                    index=index,
                    column=column,
                    exact=exact,
                    serves_order=serves,
                    descending=serves and not order_columns[0][1],
                    reason=f"range probe, selectivity ~{selectivity:.2f}",
                    low=low,
                    high=high,
                    empty=empty,
                )
            )

    if (
        len(order_columns) == 1
        and order_columns[0][0] in first_column_to_index
        # A range atom on the order column makes the ordered-range path
        # the same in-order walk, started at the bound instead of the
        # index head -- it strictly dominates, so don't offer the scan.
        and order_columns[0][0] not in probes
        and len(
            statistics.ordered_indexes[first_column_to_index[order_columns[0][0]]]
        )
        == 1
    ):
        column, ascending = order_columns[0]
        index = first_column_to_index[column]
        if limit is not None:
            needed = limit + offset
            selectivity = 1.0 if where is None else RESIDUAL_FILTER_SELECTIVITY
            cost = min(rows, needed / max(selectivity, 1e-9))
        else:
            cost = rows  # in-order walk, but no sort afterwards
        paths.append(
            AccessPath(
                kind="ordered-scan",
                cost=cost,
                estimated_rows=rows,
                index=index,
                column=column,
                serves_order=True,
                descending=not ascending,
                reason=(
                    "in-order walk with early exit"
                    if limit is not None
                    else "in-order walk, no sort"
                ),
            )
        )

    priority = {"hash-probe": 0, "ordered-range": 1, "ordered-scan": 2, "full-scan": 3}
    if use_indexes:
        chosen = min(paths, key=lambda path: (path.cost, priority[path.kind]))
    else:
        chosen = next(path for path in paths if path.kind == "full-scan")
    return PlanChoice(chosen=chosen, considered=tuple(paths))
