"""A backend on top of the standard library's ``sqlite3``.

This demonstrates the paper's claim that the FORM "works with existing
relational database implementations": the same meta-data manipulation used
by the in-memory engine runs unmodified against a real SQL database.

Concurrency model (the serving layer runs requests on worker threads):

* **File databases** use one connection per thread from a small pool, with
  WAL journaling so readers never block on the single writer.  Reads run on
  the calling thread's own connection without any framework lock; writes
  serialise on a process-wide write lock and commit before the lock is
  released, so the invalidation bus publishes exactly once per committed
  write and no cached read can observe rows older than that write.
* **In-memory databases** cannot be shared between connections, so every
  operation -- reads included -- serialises on the write lock over the one
  shared connection.  That keeps ``:memory:`` correct (tests, benchmarks)
  at the cost of read concurrency; use a file path for concurrent serving.
"""

from __future__ import annotations

import contextlib
import datetime
import sqlite3
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.db.backend import Backend
from repro.db.expr import Expression
from repro.db.observe import insert_summary, replace_summary
from repro.db.query import DeletePlan, Query, UpdatePlan, compute_aggregate
from repro.db.schema import Column, ColumnType, SchemaError, TableSchema, index_name
from repro.db.sqlgen import delete_to_sql, query_to_sql, schema_to_sql, update_to_sql


class _ConnectionPool:
    """Per-thread ``sqlite3`` connections against one database file.

    A thread borrows a connection on first use and keeps it for its
    lifetime; connections owned by finished threads are reclaimed onto a
    free list (swept deterministically whenever another thread needs a
    connection -- no reliance on GC finalisers), so thread-per-connection
    servers reuse a handful of connections instead of leaking one per
    request thread.  Connections are configured for WAL + busy-timeout and
    tracked so :meth:`close_all` can release them
    (``check_same_thread=False`` permits the cross-thread reuse and close).
    """

    def __init__(self, path: str, timeout: float) -> None:
        self._path = path
        self._timeout = timeout
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._free: List[sqlite3.Connection] = []
        #: thread ident -> (thread, its borrowed connection)
        self._owners: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self._closed = False

    def connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection
        me = threading.current_thread()
        with self._lock:
            if self._closed:
                raise sqlite3.ProgrammingError("connection pool is closed")
            self._reclaim_dead_locked()
            connection = self._free.pop() if self._free else None
        created = False
        if connection is None:
            connection = sqlite3.connect(
                self._path, timeout=self._timeout, check_same_thread=False
            )
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(f"PRAGMA busy_timeout={int(self._timeout * 1000)}")
            created = True
        with self._lock:
            # Re-check under the registering lock hold: close_all() may have
            # run while this connection was being opened, and a connection
            # registered after the close would never be closed.
            if not self._closed:
                if created:
                    self._connections.append(connection)
                self._owners[me.ident] = (me, connection)
                self._local.connection = connection
                return connection
        try:
            connection.close()
        except sqlite3.Error:  # pragma: no cover - close is best-effort
            pass
        raise sqlite3.ProgrammingError("connection pool is closed")

    def _reclaim_dead_locked(self) -> None:
        """Move connections of finished threads back to the free list."""
        for ident, (thread, connection) in list(self._owners.items()):
            if not thread.is_alive():
                del self._owners[ident]
                self._free.append(connection)

    def size(self) -> int:
        with self._lock:
            return len(self._connections)

    def close_all(self) -> None:
        with self._lock:
            self._closed = True
            connections, self._connections = self._connections, []
            self._free.clear()
            self._owners.clear()
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass


class SqliteBackend(Backend):
    """Stores tables in a SQLite database (in-memory by default).

    ``emit_indexes=False`` suppresses every ``CREATE INDEX`` at table
    creation -- the forced-scan configuration plan-parity fuzzing compares
    against; all statements and results are otherwise identical.
    """

    def __init__(
        self, path: str = ":memory:", timeout: float = 30.0,
        emit_indexes: bool = True,
    ) -> None:
        self._path = path
        self._is_memory = path == ":memory:"
        self._write_lock = threading.RLock()
        self._schemas: Dict[str, TableSchema] = {}
        self._emit_indexes = emit_indexes
        #: Every CREATE INDEX statement this backend has executed, in order
        #: (the captured-DDL record index-coverage tests assert against).
        self._index_ddl: List[str] = []
        if self._is_memory:
            self._shared_connection: Optional[sqlite3.Connection] = sqlite3.connect(
                path, check_same_thread=False
            )
            self._shared_connection.row_factory = sqlite3.Row
            self._pool: Optional[_ConnectionPool] = None
        else:
            self._shared_connection = None
            self._pool = _ConnectionPool(path, timeout)
            # Create the file (and switch it to WAL) eagerly so a failure
            # surfaces at construction, not on the first worker thread.
            self._pool.connection()

    #: File-backed instances serve concurrent readers without locking (WAL).
    @property
    def supports_concurrent_reads(self) -> bool:
        return not self._is_memory

    # -- connection handling ----------------------------------------------------------

    @contextlib.contextmanager
    def _reading(self) -> Iterator[sqlite3.Connection]:
        """A connection suitable for a read on the calling thread."""
        if self._is_memory:
            with self._write_lock:
                yield self._shared_connection
        else:
            yield self._pool.connection()

    @contextlib.contextmanager
    def _writing(self) -> Iterator[sqlite3.Connection]:
        """The write-lock-protected connection; commit before it is released.

        Any exception rolls the connection back: a failed statement must not
        leave the implicit transaction open, or every later lock-free WAL
        read on this thread's connection would be pinned to a stale snapshot.
        """
        with self._write_lock:
            connection = (
                self._shared_connection if self._is_memory else self._pool.connection()
            )
            try:
                yield connection
            except BaseException:
                connection.rollback()
                raise

    # -- schema management ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._schemas:
            return
        statement = schema_to_sql(schema)
        index_statements = self._index_statements(schema) if self._emit_indexes else []
        with self._writing() as connection:
            connection.execute(statement)
            for index_statement in index_statements:
                connection.execute(index_statement)
            connection.commit()
            self._index_ddl.extend(index_statements)
            self._schemas[schema.name] = schema
            self._seed_facet_bit(connection, schema)
        self._publish_schema_change()

    @staticmethod
    def _index_statements(schema: TableSchema) -> List[str]:
        """Every ``CREATE INDEX`` statement a table's schema calls for.

        Hash-indexed columns (``indexed=True``) and ordered indexes
        (``ordered=True`` columns plus explicit :class:`IndexSpec`\\ s,
        composite included) both become plain B-tree indexes here --
        SQLite's indexes are ordered already, so the two memory-engine
        index families collapse into one DDL form.  A column that is both
        ``indexed`` and ``ordered`` gets a single index.
        """
        statements: List[str] = []
        emitted = set()
        for column in schema.indexed_columns():
            name = f"idx_{schema.name}_{column.name}"
            emitted.add(name)
            statements.append(
                f'CREATE INDEX IF NOT EXISTS "{name}" '
                f'ON "{schema.name}" ("{column.name}")'
            )
        for spec in schema.ordered_indexes():
            name = index_name(schema.name, spec)
            if name in emitted:
                continue
            emitted.add(name)
            columns_sql = ", ".join(f'"{c}"' for c in spec.columns)
            statements.append(
                f'CREATE INDEX IF NOT EXISTS "{name}" '
                f'ON "{schema.name}" ({columns_sql})'
            )
        return statements

    def index_ddl(self) -> List[str]:
        """The ``CREATE INDEX`` statements executed so far, in order."""
        return list(self._index_ddl)

    def _seed_facet_bit(self, connection: sqlite3.Connection, schema: TableSchema) -> None:
        """Initialise the facet bit for a just-created table.

        ``CREATE TABLE IF NOT EXISTS`` may have adopted a pre-existing table
        in a persistent file, so file databases probe the adopted rows once
        here (at schema time, never on the write/delete path); in-memory
        databases are always fresh and therefore facet-free.
        """
        if not schema.has_column("jvars"):
            self._facet_tables[schema.name] = False
            return
        if self._is_memory:
            self._facet_tables[schema.name] = False
            return
        try:
            cursor = connection.execute(
                f'SELECT EXISTS(SELECT 1 FROM "{schema.name}" WHERE "jvars" != \'\')'
            )
            self._facet_tables[schema.name] = bool(cursor.fetchone()[0])
        except sqlite3.Error:  # pragma: no cover - stay unknown, probe lazily
            pass

    def drop_table(self, name: str) -> None:
        with self._writing() as connection:
            connection.execute(f'DROP TABLE IF EXISTS "{name}"')
            connection.commit()
            dropped = self._schemas.pop(name, None) is not None
        if dropped:
            self._publish_schema_change(name)

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def schema(self, name: str) -> TableSchema:
        try:
            return self._schemas[name]
        except KeyError as exc:
            raise SchemaError(f"no such table {name!r}") from exc

    def table_names(self) -> List[str]:
        return sorted(self._schemas)

    # -- data manipulation ---------------------------------------------------------------

    def _prepare_row(self, schema: TableSchema, values: Dict[str, Any]) -> Dict[str, Any]:
        """Validate a row and drop an unassigned primary key."""
        row = schema.validate_row(values)
        pk_name = schema.primary_key.name
        if row.get(pk_name) is None:
            row.pop(pk_name, None)
        return row

    def _insert_one(
        self, connection: sqlite3.Connection, schema: TableSchema, table: str,
        row: Dict[str, Any],
    ) -> int:
        """Execute one INSERT on ``connection`` (no commit) and return the pk."""
        columns = list(row.keys())
        placeholders = ", ".join("?" for _ in columns)
        column_sql = ", ".join(f'"{name}"' for name in columns)
        statement = f'INSERT INTO "{table}" ({column_sql}) VALUES ({placeholders})'
        params = [self._encode(schema.column(name), row[name]) for name in columns]
        cursor = connection.execute(statement, params)
        return int(cursor.lastrowid)

    def insert(self, table: str, values: Dict[str, Any]) -> int:
        schema = self.schema(table)
        row = self._prepare_row(schema, values)
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        with self._writing() as connection:
            pk = self._insert_one(connection, schema, table, row)
            connection.commit()
        if observing:
            self._notify_statement(
                "INSERT", insert_summary(table, 1), (), 1,
                time.perf_counter() - started,
            )
        self._note_facet_write(table, (row,))
        self._publish_write(table)
        return pk

    def insert_many(self, table: str, rows) -> List[int]:
        """Batch insert in one transaction, one invalidation event.

        Rows inserted together must share a column set for ``executemany``;
        heterogeneous batches fall back to row-at-a-time inside the same
        lock acquisition.
        """
        if not rows:
            return []
        schema = self.schema(table)
        pk_name = schema.primary_key.name
        prepared = [self._prepare_row(schema, values) for values in rows]
        column_sets = {tuple(sorted(row.keys())) for row in prepared}
        # executemany cannot report per-row ids; only use it when the rows
        # are homogeneous and let SQLite assign every primary key, so the
        # assigned range is contiguous from MAX(rowid).
        batchable = len(column_sets) == 1 and not any(pk_name in row for row in prepared)
        pks: List[int] = []
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        # The batch is one transaction (_writing rolls back on any failure),
        # so a half-inserted batch can neither linger uncommitted on the
        # connection nor be committed later by an unrelated write without an
        # invalidation event.
        with self._writing() as connection:
            if batchable:
                columns = list(prepared[0].keys())
                placeholders = ", ".join("?" for _ in columns)
                column_sql = ", ".join(f'"{name}"' for name in columns)
                statement = f'INSERT INTO "{table}" ({column_sql}) VALUES ({placeholders})'
                params = [
                    [self._encode(schema.column(name), row[name]) for name in columns]
                    for row in prepared
                ]
                connection.executemany(statement, params)
                # Ids are assigned contiguously ending at the new max:
                # we hold the write lock, so no writer interleaves.
                # (Counting down from the post-insert max is correct for
                # both AUTOINCREMENT and plain rowid allocation, unlike
                # pre-insert max + 1, which is wrong after deletions.)
                cursor = connection.execute("SELECT MAX(rowid) FROM " + f'"{table}"')
                after = int(cursor.fetchone()[0])
                connection.commit()
                pks = list(range(after - len(prepared) + 1, after + 1))
            else:
                for row in prepared:
                    pks.append(self._insert_one(connection, schema, table, row))
                connection.commit()
        if observing:
            self._notify_statement(
                "INSERT", insert_summary(table, len(prepared)), (), len(prepared),
                time.perf_counter() - started,
            )
        self._note_facet_write(table, prepared)
        self._publish_write(table)
        return pks

    def update(self, table: str, where: Optional[Expression], values: Dict[str, Any]) -> int:
        schema = self.schema(table)
        encoded = {
            name: self._encode(schema.column(name), value)
            for name, value in values.items()
        }
        # One statement, rendered by sqlgen: a subselect-bearing WHERE (the
        # record-key write pushdown) executes inline, exactly like a read.
        statement, params = update_to_sql(UpdatePlan(table, encoded, where))
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        with self._writing() as connection:
            cursor = connection.execute(statement, self._encode_params(params))
            connection.commit()
            count = cursor.rowcount
        if observing:
            self._notify_statement(
                "UPDATE", statement, params, count, time.perf_counter() - started
            )
        if count:
            self._note_facet_write(table, (values,))
            self._publish_write(table)
        return count

    def delete(self, table: str, where: Optional[Expression]) -> int:
        statement, params = delete_to_sql(DeletePlan(table, where))
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        with self._writing() as connection:
            cursor = connection.execute(statement, self._encode_params(params))
            connection.commit()
            count = cursor.rowcount
        if observing:
            self._notify_statement(
                "DELETE", statement, params, count, time.perf_counter() - started
            )
        if count:
            self._publish_write(table)
        return count

    def replace_rows(self, table: str, where: Optional[Expression], rows) -> List[int]:
        """Swap matching rows for ``rows`` in one committed transaction.

        WAL readers on other connections see the pre- or post-swap table,
        never the emptied middle state, and the invalidation bus fires once.
        """
        schema = self.schema(table)
        delete_statement, raw_params = delete_to_sql(DeletePlan(table, where))
        delete_params = self._encode_params(raw_params)
        prepared = [self._prepare_row(schema, values) for values in rows]
        pks: List[int] = []
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        with self._writing() as connection:
            cursor = connection.execute(delete_statement, delete_params)
            deleted = cursor.rowcount
            for row in prepared:
                pks.append(self._insert_one(connection, schema, table, row))
            connection.commit()
        if observing:
            self._notify_statement(
                "REPLACE", replace_summary(table, deleted, len(pks)), (),
                deleted + len(pks), time.perf_counter() - started,
            )
        self._note_facet_write(table, prepared)
        if deleted or pks:
            self._publish_write(table)
        return pks

    # -- queries ------------------------------------------------------------------------------

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        statement, params = query_to_sql(query, qualify=query.is_join())
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        with self._reading() as connection:
            cursor = connection.execute(statement, self._encode_params(params))
            raw_rows = cursor.fetchall()
        if observing:
            self._notify_statement(
                "SELECT", statement, params, len(raw_rows),
                time.perf_counter() - started,
            )
        if query.aggregates:
            # Grouped aggregate selections: the SELECT list carries explicit
            # aliases (group columns as spelled, aggregates by result_key),
            # so the row dicts already match the memory backend's keys.
            return [
                self._decode_aggregate_row(query, dict(row)) for row in raw_rows
            ]
        if query.is_join():
            columns = self._join_column_names(query)
            rows = [dict(zip(columns, tuple(row))) for row in raw_rows]
        else:
            rows = [dict(row) for row in raw_rows]
            rows = [self._decode_row(self.schema(query.table), row) for row in rows]
        return rows

    def aggregate(self, query: Query) -> Any:
        self._check_aggregate(query)
        if query.group_by:
            # Push the grouping down as one GROUP BY statement (it used to
            # fetch every matching row and group in Python).
            return self._grouped_aggregate_dict(query)
        statement, params = query_to_sql(query, qualify=query.is_join())
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        with self._reading() as connection:
            cursor = connection.execute(statement, self._encode_params(params))
            row = cursor.fetchone()
        if observing:
            self._notify_statement(
                "SELECT", statement, params, 1 if row is not None else 0,
                time.perf_counter() - started,
            )
        value = row[0] if row is not None else None
        function = query.aggregate.function.upper()
        if function == "EXISTS":
            return bool(value)
        if function in ("MIN", "MAX"):
            value = self._decode_aggregated_value(query, query.aggregate, value)
        return value

    def explain_query(self, query: Query) -> Dict[str, Any]:
        """SQLite's own ``EXPLAIN QUERY PLAN`` rows for this query.

        The statement is only *prepared* (never run), no observer event is
        emitted, and the captured index DDL rides along so callers can see
        which declared indexes back the reported plan.
        """
        statement, params = query_to_sql(query, qualify=query.is_join())
        try:
            with self._reading() as connection:
                cursor = connection.execute(
                    "EXPLAIN QUERY PLAN " + statement, self._encode_params(params)
                )
                detail = [str(row[-1]) for row in cursor.fetchall()]
        except sqlite3.Error:  # pragma: no cover - explain is best-effort
            return {}
        return {"sqlite_plan": detail, "index_ddl": self.index_ddl()}

    def clear(self) -> None:
        with self._writing() as connection:
            for name in self._schemas:
                connection.execute(f'DELETE FROM "{name}"')
            connection.commit()
        self._publish_clear()

    def close(self) -> None:
        if self._shared_connection is not None:
            self._shared_connection.close()
        if self._pool is not None:
            self._pool.close_all()

    # -- encoding ---------------------------------------------------------------------------------

    @staticmethod
    def _encode(column: Column, value: Any) -> Any:
        if value is None:
            return None
        if column.type is ColumnType.BOOLEAN:
            return 1 if value else 0
        if column.type is ColumnType.DATETIME:
            return value.isoformat() if isinstance(value, datetime.datetime) else str(value)
        return value

    @staticmethod
    def _encode_params(params: List[Any]) -> List[Any]:
        encoded = []
        for value in params:
            if isinstance(value, bool):
                encoded.append(1 if value else 0)
            elif isinstance(value, datetime.datetime):
                encoded.append(value.isoformat())
            else:
                encoded.append(value)
        return encoded

    @staticmethod
    def _decode_value(column: Column, value: Any) -> Any:
        if value is None:
            return None
        if column.type is ColumnType.BOOLEAN:
            return bool(value)
        if column.type is ColumnType.DATETIME and isinstance(value, str):
            return datetime.datetime.fromisoformat(value)
        return value

    @staticmethod
    def _decode_row(schema: TableSchema, row: Dict[str, Any]) -> Dict[str, Any]:
        decoded = {}
        for name, value in row.items():
            if schema.has_column(name) and value is not None:
                value = SqliteBackend._decode_value(schema.column(name), value)
            decoded[name] = value
        return decoded

    def _source_column(self, query: Query, name: str) -> Optional[Column]:
        """Resolve a (possibly qualified) column against the query's tables."""
        if "." in name:
            table, bare = name.rsplit(".", 1)
            tables = [table]
        else:
            bare = name
            tables = [query.table] + [join.table for join in query.joins]
        for table in tables:
            schema = self._schemas.get(table)
            if schema is not None and schema.has_column(bare):
                return schema.column(bare)
        return None

    def _decode_aggregated_value(self, query: Query, aggregate, value: Any) -> Any:
        """Decode a MIN/MAX result through its source column's type.

        MIN/MAX return one of the stored values, so BOOLEAN/DATETIME
        columns decode exactly like a plain row read -- keeping value
        parity with the memory backend, which stores live Python objects.
        """
        if aggregate.column == "*":
            return value
        column = self._source_column(query, aggregate.column)
        if column is None:
            return value
        return self._decode_value(column, value)

    def _decode_aggregate_row(self, query: Query, row: Dict[str, Any]) -> Dict[str, Any]:
        for name in query.group_by:
            column = self._source_column(query, name)
            if column is not None:
                row[name] = self._decode_value(column, row.get(name))
        for aggregate in query.aggregates:
            if aggregate.function.upper() in ("MIN", "MAX"):
                key = aggregate.result_key()
                row[key] = self._decode_aggregated_value(query, aggregate, row.get(key))
        return row

    def _join_column_names(self, query: Query) -> List[str]:
        """Qualified output column names for a join query, in SELECT order."""
        requested = query.qualified_columns()
        if requested:
            return list(requested)
        names: List[str] = []
        for table in [query.table] + [join.table for join in query.joins]:
            for column in self.schema(table).columns:
                names.append(f"{table}.{column.name}")
        return names
