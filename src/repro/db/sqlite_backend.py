"""A backend on top of the standard library's ``sqlite3``.

This demonstrates the paper's claim that the FORM "works with existing
relational database implementations": the same meta-data manipulation used
by the in-memory engine runs unmodified against a real SQL database.
"""

from __future__ import annotations

import datetime
import sqlite3
import threading
from typing import Any, Dict, List, Optional

from repro.db.backend import Backend
from repro.db.expr import Expression
from repro.db.query import Query, compute_aggregate
from repro.db.schema import Column, ColumnType, SchemaError, TableSchema
from repro.db.sqlgen import query_to_sql, schema_to_sql


class SqliteBackend(Backend):
    """Stores tables in a SQLite database (in-memory by default)."""

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        self._lock = threading.Lock()
        self._schemas: Dict[str, TableSchema] = {}

    # -- schema management ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._schemas:
            return
        statement = schema_to_sql(schema)
        with self._lock:
            self._connection.execute(statement)
            for column in schema.indexed_columns():
                self._connection.execute(
                    f'CREATE INDEX IF NOT EXISTS "idx_{schema.name}_{column.name}" '
                    f'ON "{schema.name}" ("{column.name}")'
                )
            self._connection.commit()
        self._schemas[schema.name] = schema
        self._publish_schema_change()

    def drop_table(self, name: str) -> None:
        with self._lock:
            self._connection.execute(f'DROP TABLE IF EXISTS "{name}"')
            self._connection.commit()
        if self._schemas.pop(name, None) is not None:
            self._publish_schema_change(name)

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def schema(self, name: str) -> TableSchema:
        try:
            return self._schemas[name]
        except KeyError as exc:
            raise SchemaError(f"no such table {name!r}") from exc

    def table_names(self) -> List[str]:
        return sorted(self._schemas)

    # -- data manipulation ---------------------------------------------------------------

    def insert(self, table: str, values: Dict[str, Any]) -> int:
        schema = self.schema(table)
        row = schema.validate_row(values)
        pk_name = schema.primary_key.name
        if row.get(pk_name) is None:
            row.pop(pk_name, None)
        columns = list(row.keys())
        placeholders = ", ".join("?" for _ in columns)
        column_sql = ", ".join(f'"{name}"' for name in columns)
        params = [self._encode(schema.column(name), row[name]) for name in columns]
        statement = f'INSERT INTO "{table}" ({column_sql}) VALUES ({placeholders})'
        with self._lock:
            cursor = self._connection.execute(statement, params)
            self._connection.commit()
            pk = int(cursor.lastrowid)
        self._publish_write(table)
        return pk

    def insert_many(self, table: str, rows) -> List[int]:
        """Batch insert in one transaction, one invalidation event.

        Rows inserted together must share a column set for ``executemany``;
        heterogeneous batches fall back to row-at-a-time inside the same
        lock acquisition.
        """
        if not rows:
            return []
        schema = self.schema(table)
        pk_name = schema.primary_key.name
        prepared = []
        for values in rows:
            row = schema.validate_row(values)
            if row.get(pk_name) is None:
                row.pop(pk_name, None)
            prepared.append(row)
        column_sets = {tuple(sorted(row.keys())) for row in prepared}
        # executemany cannot report per-row ids; only use it when the rows
        # are homogeneous and let SQLite assign every primary key, so the
        # assigned range is contiguous from MAX(rowid).
        batchable = len(column_sets) == 1 and not any(pk_name in row for row in prepared)
        pks: List[int] = []
        with self._lock:
            # The batch is one transaction: roll back on any failure so a
            # half-inserted batch can neither linger uncommitted on the
            # shared connection nor be committed later by an unrelated
            # write without an invalidation event.
            try:
                if batchable:
                    columns = list(prepared[0].keys())
                    placeholders = ", ".join("?" for _ in columns)
                    column_sql = ", ".join(f'"{name}"' for name in columns)
                    statement = f'INSERT INTO "{table}" ({column_sql}) VALUES ({placeholders})'
                    params = [
                        [self._encode(schema.column(name), row[name]) for name in columns]
                        for row in prepared
                    ]
                    self._connection.executemany(statement, params)
                    # Ids are assigned contiguously ending at the new max:
                    # we hold the connection lock, so no writer interleaves.
                    # (Counting down from the post-insert max is correct for
                    # both AUTOINCREMENT and plain rowid allocation, unlike
                    # pre-insert max + 1, which is wrong after deletions.)
                    cursor = self._connection.execute("SELECT MAX(rowid) FROM " + f'"{table}"')
                    after = int(cursor.fetchone()[0])
                    self._connection.commit()
                    pks = list(range(after - len(prepared) + 1, after + 1))
                else:
                    for row in prepared:
                        columns = list(row.keys())
                        placeholders = ", ".join("?" for _ in columns)
                        column_sql = ", ".join(f'"{name}"' for name in columns)
                        statement = (
                            f'INSERT INTO "{table}" ({column_sql}) VALUES ({placeholders})'
                        )
                        params = [self._encode(schema.column(name), row[name]) for name in columns]
                        cursor = self._connection.execute(statement, params)
                        pks.append(int(cursor.lastrowid))
                    self._connection.commit()
            except BaseException:
                self._connection.rollback()
                raise
        self._publish_write(table)
        return pks

    def update(self, table: str, where: Optional[Expression], values: Dict[str, Any]) -> int:
        schema = self.schema(table)
        assignments = ", ".join(f'"{name}" = ?' for name in values)
        params: List[Any] = [
            self._encode(schema.column(name), value) for name, value in values.items()
        ]
        statement = f'UPDATE "{table}" SET {assignments}'
        if where is not None:
            where_sql, where_params = where.to_sql()
            statement += f" WHERE {where_sql}"
            params.extend(self._encode_params(where_params))
        with self._lock:
            cursor = self._connection.execute(statement, params)
            self._connection.commit()
            count = cursor.rowcount
        if count:
            self._publish_write(table)
        return count

    def delete(self, table: str, where: Optional[Expression]) -> int:
        statement = f'DELETE FROM "{table}"'
        params: List[Any] = []
        if where is not None:
            where_sql, where_params = where.to_sql()
            statement += f" WHERE {where_sql}"
            params.extend(self._encode_params(where_params))
        with self._lock:
            cursor = self._connection.execute(statement, params)
            self._connection.commit()
            count = cursor.rowcount
        if count:
            self._publish_write(table)
        return count

    # -- queries ------------------------------------------------------------------------------

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        statement, params = query_to_sql(query, qualify=query.is_join())
        with self._lock:
            cursor = self._connection.execute(statement, self._encode_params(params))
            raw_rows = cursor.fetchall()
        if query.is_join():
            columns = self._join_column_names(query)
            rows = [dict(zip(columns, tuple(row))) for row in raw_rows]
        else:
            rows = [dict(row) for row in raw_rows]
            rows = [self._decode_row(self.schema(query.table), row) for row in rows]
        return rows

    def aggregate(self, query: Query) -> Any:
        if query.aggregate is None:
            raise ValueError("aggregate() requires a query with an aggregate")
        if query.group_by:
            rows = self.execute(Query(table=query.table, where=query.where, joins=query.joins))
            grouped: Dict[tuple, List[Dict[str, Any]]] = {}
            for row in rows:
                key = tuple(row.get(column) for column in query.group_by)
                grouped.setdefault(key, []).append(row)
            return {
                key: compute_aggregate(group, query.aggregate)
                for key, group in grouped.items()
            }
        statement, params = query_to_sql(query, qualify=query.is_join())
        with self._lock:
            cursor = self._connection.execute(statement, self._encode_params(params))
            row = cursor.fetchone()
        return row[0] if row is not None else None

    def clear(self) -> None:
        with self._lock:
            for name in self._schemas:
                self._connection.execute(f'DELETE FROM "{name}"')
            self._connection.commit()
        self._publish_clear()

    def close(self) -> None:
        self._connection.close()

    # -- encoding ---------------------------------------------------------------------------------

    @staticmethod
    def _encode(column: Column, value: Any) -> Any:
        if value is None:
            return None
        if column.type is ColumnType.BOOLEAN:
            return 1 if value else 0
        if column.type is ColumnType.DATETIME:
            return value.isoformat() if isinstance(value, datetime.datetime) else str(value)
        return value

    @staticmethod
    def _encode_params(params: List[Any]) -> List[Any]:
        encoded = []
        for value in params:
            if isinstance(value, bool):
                encoded.append(1 if value else 0)
            elif isinstance(value, datetime.datetime):
                encoded.append(value.isoformat())
            else:
                encoded.append(value)
        return encoded

    @staticmethod
    def _decode_row(schema: TableSchema, row: Dict[str, Any]) -> Dict[str, Any]:
        decoded = {}
        for name, value in row.items():
            if schema.has_column(name) and value is not None:
                column = schema.column(name)
                if column.type is ColumnType.BOOLEAN:
                    value = bool(value)
                elif column.type is ColumnType.DATETIME and isinstance(value, str):
                    value = datetime.datetime.fromisoformat(value)
            decoded[name] = value
        return decoded

    def _join_column_names(self, query: Query) -> List[str]:
        """Qualified output column names for a join query, in SELECT order."""
        requested = query.qualified_columns()
        if requested:
            return list(requested)
        names: List[str] = []
        for table in [query.table] + [join.table for join in query.joins]:
            for column in self.schema(table).columns:
                names.append(f"{table}.{column.name}")
        return names
