"""WHERE-clause expressions.

Expressions form a small tree evaluated row-by-row by the in-memory engine
and rendered to parameterised SQL by the SQLite backend and the SQL
generator.  Column references may be qualified (``"Event.location"``) for
join queries.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class Expression:
    """Base class for boolean/scalar expressions over rows."""

    __slots__ = ()

    def evaluate(self, row: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def compile(self) -> Callable[[Dict[str, Any]], Any]:
        """A fused evaluator closure, semantically identical to :meth:`evaluate`.

        The in-memory engine compiles a WHERE tree once per statement and
        runs the closure per row, replacing the per-row method dispatch and
        attribute traffic of interpretive evaluation -- the difference is
        several-fold on scan-heavy predicates such as the direct-tier
        policy pushdown.  Nodes without a specialised compiler fall back to
        their bound ``evaluate`` (which for unresolved subquery nodes
        correctly raises on first call).

        >>> pred = (eq("rank", 1) | eq("name", "ada")).compile()
        >>> pred({"rank": 2, "name": "ada"})
        True
        """
        return self.evaluate

    def to_sql(self) -> Tuple[str, List[Any]]:
        """Render to a SQL fragment and its bound parameters.

        >>> eq("name", "ada").to_sql()
        ('name = ?', ['ada'])
        """
        raise NotImplementedError

    def columns(self) -> List[str]:
        """Column names referenced by this expression.

        >>> (eq("name", "ada") & eq("rank", 1)).columns()
        ['name', 'rank']
        """
        return []

    def subqueries(self) -> List[Any]:
        """The :class:`~repro.db.query.Query` objects nested in this tree.

        Used by the in-memory engine (to materialise them before row-by-row
        evaluation) and by the cache layer (to register every table a query
        reads for write-through invalidation).
        """
        return []

    # boolean combinators ------------------------------------------------------

    def __and__(self, other: "Expression") -> "Expression":
        return AndExpr(self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return OrExpr(self, other)

    def __invert__(self) -> "Expression":
        return NotExpr(self)


def _lookup(row: Dict[str, Any], name: str) -> Any:
    """Resolve a (possibly qualified) column name against a row dict."""
    if name in row:
        return row[name]
    if "." in name:
        _, bare = name.rsplit(".", 1)
        if bare in row:
            return row[bare]
    else:
        for key, value in row.items():
            if key.endswith("." + name):
                return value
    raise KeyError(f"row has no column {name!r}")


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally table-qualified."""

    name: str

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return _lookup(row, self.name)

    def compile(self) -> Callable[[Dict[str, Any]], Any]:
        name = self.name

        def lookup(row: Dict[str, Any]) -> Any:
            try:
                return row[name]
            except KeyError:
                return _lookup(row, name)

        return lookup

    def to_sql(self) -> Tuple[str, List[Any]]:
        return self.name, []

    def columns(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return self.value

    def compile(self) -> Callable[[Dict[str, Any]], Any]:
        value = self.value
        return lambda row: value

    def to_sql(self) -> Tuple[str, List[Any]]:
        return "?", [self.value]


_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison between two expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Dict[str, Any]) -> Optional[bool]:
        # SQL three-valued semantics: comparing against NULL is UNKNOWN
        # (None) for every operator, matching SQLite.  Use IsNull for
        # explicit NULL tests.
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        return _OPERATORS[self.op](left, right)

    def compile(self) -> Callable[[Dict[str, Any]], Optional[bool]]:
        left, right = self.left.compile(), self.right.compile()
        op = _OPERATORS[self.op]

        def compare(row: Dict[str, Any]) -> Optional[bool]:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return op(a, b)

        return compare

    def to_sql(self) -> Tuple[str, List[Any]]:
        left_sql, left_params = self.left.to_sql()
        right_sql, right_params = self.right.to_sql()
        return f"{left_sql} {self.op} {right_sql}", left_params + right_params

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def subqueries(self) -> List[Any]:
        return self.left.subqueries() + self.right.subqueries()


@dataclass(frozen=True)
class InList(Expression):
    """Membership test ``column IN (v1, v2, ...)``.

    Follows SQL's three-valued NULL semantics, which matters now that
    subqueries resolve to ``InList`` on the in-memory engine: a ``None``
    operand yields UNKNOWN (``None``), and a miss against a list containing
    ``None`` also yields UNKNOWN -- so ``x IN (NULL)`` never matches *and*
    ``x NOT IN ('a', NULL)`` never matches, exactly as on SQLite.  WHERE
    filtering treats UNKNOWN as a non-match; :class:`NotExpr` propagates it.

    >>> InList(col("id"), (None, 2)).evaluate({"id": None}) is None
    True
    >>> InList(col("id"), (None, 2)).evaluate({"id": 2})
    True
    >>> InList(col("id"), (None, 2)).evaluate({"id": 3}) is None
    True
    >>> InList(col("id"), (1, 2)).evaluate({"id": 3})
    False
    """

    operand: Expression
    values: Tuple[Any, ...]

    def evaluate(self, row: Dict[str, Any]) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        # Hot path of resolved pushdown subqueries: the outer scan tests
        # every row against the IN list, so membership is a cached set.
        cached = self.__dict__.get("_members")
        if cached is None:
            has_null = any(item is None for item in self.values)
            try:
                members = frozenset(item for item in self.values if item is not None)
            except TypeError:  # unhashable list values
                members = False
            cached = (members, has_null)
            object.__setattr__(self, "_members", cached)
        members, has_null = cached
        if members is not False:
            try:
                if value in members:
                    return True
            except TypeError:
                pass
            else:
                return None if has_null else False
        if any(item is not None and item == value for item in self.values):
            return True
        return None if has_null else False

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        placeholders = ", ".join("?" for _ in self.values)
        return f"{operand_sql} IN ({placeholders})", params + list(self.values)

    def columns(self) -> List[str]:
        return self.operand.columns()

    def subqueries(self) -> List[Any]:
        return self.operand.subqueries()


@dataclass(frozen=True)
class InSubquery(Expression):
    """Membership test against a nested select: ``column IN (SELECT ...)``.

    The pushdown form of a bounded faceted query: the subquery selects the
    (distinct) record identifiers -- ``jid`` for the FORM, ``id`` for the
    baseline ORM -- with the ORDER BY / LIMIT / OFFSET applied *inside*, so
    the database prunes to the first *n* records before the outer query
    fetches their facet rows.

    ``subquery`` is a :class:`~repro.db.query.Query` that must select exactly
    one column.  SQL backends render it inline (a correlated-free subselect);
    the in-memory engine materialises it first with
    :func:`resolve_subqueries`, so :meth:`evaluate` on an unresolved tree is
    an error rather than a silently wrong answer.

    >>> from repro.db.query import Query
    >>> bounded = Query("Paper").select("jid").distinct_rows().limited(2)
    >>> InSubquery(col("jid"), bounded).to_sql()
    ('jid IN (SELECT DISTINCT "jid" FROM "Paper" LIMIT 2)', [])
    """

    operand: Expression
    subquery: Any

    def evaluate(self, row: Dict[str, Any]) -> bool:
        raise TypeError(
            "InSubquery cannot be evaluated row-by-row; materialise it first "
            "with repro.db.expr.resolve_subqueries(expression, run_subquery)"
        )

    def to_sql(self) -> Tuple[str, List[Any]]:
        from repro.db.sqlgen import query_to_sql

        operand_sql, params = self.operand.to_sql()
        sub_sql, sub_params = query_to_sql(self.subquery, qualify=self.subquery.is_join())
        return f"{operand_sql} IN ({sub_sql})", params + sub_params

    def columns(self) -> List[str]:
        return self.operand.columns()

    def subqueries(self) -> List[Any]:
        return [self.subquery]


@dataclass(frozen=True)
class ExistsSubquery(Expression):
    """Membership probe against a nested select: ``EXISTS (SELECT ...)``.

    Unlike :class:`InSubquery` this tests whether the subquery returns *any*
    row at all, which SQL answers without materialising the rows.  SQL
    backends render the subselect inline; the in-memory engine materialises
    it with :func:`resolve_subqueries` (the subquery must select exactly one
    column, like every other memory-resolved subquery) and replaces the node
    with a boolean literal.

    EXISTS never yields UNKNOWN -- an empty result is plain FALSE -- so it
    composes with NOT without the three-valued caveats of ``NOT IN``.

    >>> from repro.db.query import Query
    >>> from repro.db.expr import eq
    >>> sub = Query("Review").filter(eq("score", 5)).select("id")
    >>> ExistsSubquery(sub).to_sql()
    ('EXISTS (SELECT "id" FROM "Review" WHERE score = ?)', [5])
    """

    subquery: Any

    def evaluate(self, row: Dict[str, Any]) -> bool:
        raise TypeError(
            "ExistsSubquery cannot be evaluated row-by-row; materialise it "
            "first with repro.db.expr.resolve_subqueries(expression, run_subquery)"
        )

    def to_sql(self) -> Tuple[str, List[Any]]:
        from repro.db.sqlgen import query_to_sql

        sub_sql, sub_params = query_to_sql(self.subquery, qualify=self.subquery.is_join())
        return f"EXISTS ({sub_sql})", sub_params

    def subqueries(self) -> List[Any]:
        return [self.subquery]


@dataclass(frozen=True)
class AndExpr(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Dict[str, Any]) -> Optional[bool]:
        # SQL three-valued AND: FALSE dominates, then UNKNOWN (None).
        left = self.left.evaluate(row)
        if left is not None and not left:
            return False
        right = self.right.evaluate(row)
        if right is not None and not right:
            return False
        if left is None or right is None:
            return None
        return True

    def compile(self) -> Callable[[Dict[str, Any]], Optional[bool]]:
        left, right = self.left.compile(), self.right.compile()

        def conjoin(row: Dict[str, Any]) -> Optional[bool]:
            a = left(row)
            if a is not None and not a:
                return False
            b = right(row)
            if b is not None and not b:
                return False
            if a is None or b is None:
                return None
            return True

        return conjoin

    def to_sql(self) -> Tuple[str, List[Any]]:
        left_sql, left_params = self.left.to_sql()
        right_sql, right_params = self.right.to_sql()
        return f"({left_sql} AND {right_sql})", left_params + right_params

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def subqueries(self) -> List[Any]:
        return self.left.subqueries() + self.right.subqueries()


@dataclass(frozen=True)
class OrExpr(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Dict[str, Any]) -> Optional[bool]:
        # SQL three-valued OR: TRUE dominates, then UNKNOWN (None).
        left = self.left.evaluate(row)
        if left is not None and left:
            return True
        right = self.right.evaluate(row)
        if right is not None and right:
            return True
        if left is None or right is None:
            return None
        return False

    def compile(self) -> Callable[[Dict[str, Any]], Optional[bool]]:
        left, right = self.left.compile(), self.right.compile()

        def disjoin(row: Dict[str, Any]) -> Optional[bool]:
            a = left(row)
            if a:
                return True
            b = right(row)
            if b:
                return True
            if a is None or b is None:
                return None
            return False

        return disjoin

    def to_sql(self) -> Tuple[str, List[Any]]:
        left_sql, left_params = self.left.to_sql()
        right_sql, right_params = self.right.to_sql()
        return f"({left_sql} OR {right_sql})", left_params + right_params

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def subqueries(self) -> List[Any]:
        return self.left.subqueries() + self.right.subqueries()


@dataclass(frozen=True)
class NotExpr(Expression):
    operand: Expression

    def evaluate(self, row: Dict[str, Any]) -> Optional[bool]:
        # SQL three-valued NOT: UNKNOWN stays UNKNOWN, so a NOT IN filter
        # over a NULL operand (or a NULL-containing list) matches nothing
        # on both backends instead of everything on the memory engine.
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return not bool(value)

    def compile(self) -> Callable[[Dict[str, Any]], Optional[bool]]:
        operand = self.operand.compile()

        def negate(row: Dict[str, Any]) -> Optional[bool]:
            value = operand(row)
            if value is None:
                return None
            return not bool(value)

        return negate

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        return f"(NOT {operand_sql})", params

    def columns(self) -> List[str]:
        return self.operand.columns()

    def subqueries(self) -> List[Any]:
        return self.operand.subqueries()


@dataclass(frozen=True)
class IsNull(Expression):
    """``column IS NULL`` / ``IS NOT NULL`` tests."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Dict[str, Any]) -> bool:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null

    def compile(self) -> Callable[[Dict[str, Any]], bool]:
        operand = self.operand.compile()
        if self.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{operand_sql} {keyword}", params

    def columns(self) -> List[str]:
        return self.operand.columns()

    def subqueries(self) -> List[Any]:
        return self.operand.subqueries()


@dataclass(frozen=True)
class NullSafeEq(Expression):
    """Null-safe equality ``left IS right`` / ``left IS NOT right``.

    SQLite's ``IS`` operator compares any two values with NULL treated as
    an ordinary (equal-to-NULL) value, so the result is always TRUE or
    FALSE -- never UNKNOWN.  The in-memory engine mirrors that with plain
    Python ``==``.  This is the rendering direct-WHERE policy pushdown
    uses: a compiled policy predicate must be *two-valued* so that its
    negation selects exactly the complement rows, which three-valued
    ``=`` cannot guarantee on nullable columns.

    >>> NullSafeEq(col("owner_id"), lit(None)).evaluate({"owner_id": None})
    True
    >>> NullSafeEq(col("owner_id"), lit(3)).evaluate({"owner_id": None})
    False
    >>> NullSafeEq(col("owner_id"), lit(3), negated=True).to_sql()
    ('owner_id IS NOT ?', [3])
    """

    left: Expression
    right: Expression
    negated: bool = False

    def evaluate(self, row: Dict[str, Any]) -> bool:
        result = self.left.evaluate(row) == self.right.evaluate(row)
        return not result if self.negated else result

    def compile(self) -> Callable[[Dict[str, Any]], bool]:
        left, right = self.left.compile(), self.right.compile()
        if self.negated:
            return lambda row: left(row) != right(row)
        return lambda row: left(row) == right(row)

    def to_sql(self) -> Tuple[str, List[Any]]:
        left_sql, left_params = self.left.to_sql()
        right_sql, right_params = self.right.to_sql()
        keyword = "IS NOT" if self.negated else "IS"
        return f"{left_sql} {keyword} {right_sql}", left_params + right_params

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def subqueries(self) -> List[Any]:
        return self.left.subqueries() + self.right.subqueries()


@dataclass(frozen=True)
class FacetBranch(Expression):
    """Matches the facet rows of one policy-group branch of a table.

    A faceted row's ``jvars`` for a single policy group is exactly
    ``"{table}.{jid}.{key}={polarity}"`` (the label-name convention plus
    the encoded assignment), so the positive/negative branch of a record
    is selected by comparing ``jvars`` against that string built from the
    row's own ``jid``.  Rendered to SQL with the concatenation operator
    (``jid`` is an INTEGER; ``||`` coerces it to TEXT).

    >>> branch = FacetBranch("Doc", "title", True)
    >>> branch.evaluate({"jid": 7, "jvars": "Doc.7.title=True"})
    True
    >>> branch.evaluate({"jid": 7, "jvars": ""})
    False
    >>> branch.to_sql()
    ('jvars = (? || jid || ?)', ['Doc.', '.title=True'])
    """

    table: str
    key: str
    polarity: bool
    qualify: bool = False

    def _column(self, name: str) -> str:
        return f"{self.table}.{name}" if self.qualify else name

    def evaluate(self, row: Dict[str, Any]) -> bool:
        jvars = _lookup(row, self._column("jvars"))
        jid = _lookup(row, self._column("jid"))
        return jvars == f"{self.table}.{jid}.{self.key}={self.polarity}"

    def compile(self) -> Callable[[Dict[str, Any]], bool]:
        jvars_col, jid_col = self._column("jvars"), self._column("jid")
        prefix = f"{self.table}."
        suffix = f".{self.key}={self.polarity}"

        def match(row: Dict[str, Any]) -> bool:
            try:
                jvars = row[jvars_col]
                jid = row[jid_col]
            except KeyError:
                jvars = _lookup(row, jvars_col)
                jid = _lookup(row, jid_col)
            return jvars == f"{prefix}{jid}{suffix}"

        return match

    def to_sql(self) -> Tuple[str, List[Any]]:
        jvars = self._column("jvars")
        jid = self._column("jid")
        return (
            f"{jvars} = (? || {jid} || ?)",
            [f"{self.table}.", f".{self.key}={self.polarity}"],
        )

    def columns(self) -> List[str]:
        return [self._column("jvars"), self._column("jid")]


@dataclass(frozen=True)
class Between(Expression):
    """Range test ``operand BETWEEN low AND high`` (inclusive both ends).

    SQL defines it as ``operand >= low AND operand <= high`` and the
    three-valued semantics follow from that expansion: a NULL operand or
    bound makes the corresponding comparison UNKNOWN, but a definite FALSE
    on either side still dominates (``5 BETWEEN 7 AND NULL`` is FALSE on
    SQLite, not UNKNOWN).

    >>> between("score", 2, 5).evaluate({"score": 3})
    True
    >>> between("score", 2, 5).evaluate({"score": None}) is None
    True
    >>> between("score", 7, None).evaluate({"score": 5})
    False
    >>> between("score", 2, 5).to_sql()
    ('score BETWEEN ? AND ?', [2, 5])
    """

    operand: Expression
    low: Expression
    high: Expression

    def evaluate(self, row: Dict[str, Any]) -> Optional[bool]:
        value = self.operand.evaluate(row)
        low = self.low.evaluate(row)
        high = self.high.evaluate(row)
        ge = None if value is None or low is None else value >= low
        le = None if value is None or high is None else value <= high
        # Three-valued AND of the two comparisons.
        if ge is not None and not ge:
            return False
        if le is not None and not le:
            return False
        if ge is None or le is None:
            return None
        return True

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        low_sql, low_params = self.low.to_sql()
        high_sql, high_params = self.high.to_sql()
        return (
            f"{operand_sql} BETWEEN {low_sql} AND {high_sql}",
            params + low_params + high_params,
        )

    def columns(self) -> List[str]:
        return self.operand.columns() + self.low.columns() + self.high.columns()

    def subqueries(self) -> List[Any]:
        return (
            self.operand.subqueries()
            + self.low.subqueries()
            + self.high.subqueries()
        )


def _like_text(value: Any) -> str:
    """The TEXT form SQLite compares a stored value against under LIKE.

    Mirrors the SQLite backend's storage encoding, so the memory engine's
    LIKE agrees with SQLite applying LIKE to the stored representation:
    booleans are stored as 1/0, datetimes as their isoformat.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, datetime.datetime):
        return value.isoformat()
    return str(value)


@dataclass(frozen=True)
class Like(Expression):
    """SQL pattern match ``operand LIKE pattern`` (``%`` and ``_`` wildcards).

    The default follows SQLite's LIKE: case-insensitive for ASCII letters
    only.  ``case_sensitive=True`` matches exactly -- rendered to SQL as
    ``GLOB`` with a translated pattern, because SQLite's LIKE operator
    cannot be made case-sensitive per-expression -- and is the form an
    ordered index can serve with a prefix range probe.  A NULL operand or
    pattern is UNKNOWN, as in SQL.

    >>> like("path", "/eng/%", case_sensitive=True).evaluate({"path": "/eng/a"})
    True
    >>> like("name", "AD%").evaluate({"name": "ada"})
    True
    >>> like("name", "AD%", case_sensitive=True).evaluate({"name": "ada"})
    False
    >>> like("name", "a%").evaluate({"name": None}) is None
    True
    >>> like("path", "/eng/%", case_sensitive=True).to_sql()
    ('path GLOB ?', ['/eng/*'])
    """

    operand: Expression
    pattern: str
    case_sensitive: bool = False

    def evaluate(self, row: Dict[str, Any]) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None or self.pattern is None:
            return None
        regex = self.__dict__.get("_regex")
        if regex is None:
            translated = "".join(
                ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
                for ch in self.pattern
            )
            flags = re.DOTALL
            if not self.case_sensitive:
                # SQLite's LIKE folds case for ASCII letters only.
                flags |= re.IGNORECASE | re.ASCII
            regex = re.compile(translated, flags)
            object.__setattr__(self, "_regex", regex)
        return regex.fullmatch(_like_text(value)) is not None

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        if not self.case_sensitive:
            return f"{operand_sql} LIKE ?", params + [self.pattern]
        glob = "".join(
            "*" if ch == "%" else "?" if ch == "_"
            else f"[{ch}]" if ch in "*?[" else ch
            for ch in self.pattern
        )
        return f"{operand_sql} GLOB ?", params + [glob]

    def literal_prefix(self) -> Tuple[str, bool]:
        """The pattern's leading literal text, and whether it is *pure*.

        A pure prefix pattern is ``literal + '%'`` exactly -- every string
        in the half-open range ``[prefix, successor(prefix))`` matches, so
        a case-sensitive index probe over that range is exact.

        >>> like("p", "/eng/%").literal_prefix()
        ('/eng/', True)
        >>> like("p", "a_c%").literal_prefix()
        ('a', False)
        """
        prefix = []
        for index, ch in enumerate(self.pattern):
            if ch in "%_":
                rest = self.pattern[index:]
                return "".join(prefix), rest == "%"
            prefix.append(ch)
        return "".join(prefix), False

    def columns(self) -> List[str]:
        return self.operand.columns()

    def subqueries(self) -> List[Any]:
        return self.operand.subqueries()


# -- subquery resolution ---------------------------------------------------------


def resolve_subqueries(
    expression: Expression, run: Callable[[Any], List[Any]]
) -> Expression:
    """Replace every :class:`InSubquery` with an :class:`InList` of its values.

    ``run`` executes one subquery and returns the list of selected values.
    The in-memory engine calls this before filtering so that row-by-row
    evaluation never needs backend access; trees without subqueries are
    returned unchanged (same object).
    """
    if not expression.subqueries():
        return expression
    if isinstance(expression, InSubquery):
        return InList(expression.operand, tuple(run(expression.subquery)))
    if isinstance(expression, ExistsSubquery):
        return Literal(bool(run(expression.subquery)))
    if isinstance(expression, AndExpr):
        return AndExpr(
            resolve_subqueries(expression.left, run),
            resolve_subqueries(expression.right, run),
        )
    if isinstance(expression, OrExpr):
        return OrExpr(
            resolve_subqueries(expression.left, run),
            resolve_subqueries(expression.right, run),
        )
    if isinstance(expression, NotExpr):
        return NotExpr(resolve_subqueries(expression.operand, run))
    raise TypeError(
        f"cannot resolve subqueries under {type(expression).__name__}; "
        "InSubquery may only appear under AND/OR/NOT"
    )


def subquery_values(rows: List[Dict[str, Any]], subquery: Any) -> List[Any]:
    """Extract the single selected column from an executed subquery's rows.

    Join subqueries return qualified keys (``"Table.column"``); the lookup
    accepts either form, like every other column resolution in this module.
    """
    columns = subquery.columns
    if not columns or len(columns) != 1:
        raise ValueError(
            f"subquery must select exactly one column, got {columns!r}"
        )
    name = columns[0]
    values = []
    for row in rows:
        try:
            values.append(_lookup(row, name))
        except KeyError:
            # Fail loudly: silently treating a misnamed column as NULL would
            # make the memory engine match rows SQL never would ("x IN
            # (NULL)" matches nothing) -- an empty-or-wrong result instead
            # of an error at the source.
            raise ValueError(
                f"subquery selected column {name!r} missing from result row "
                f"{sorted(row)!r}"
            ) from None
    return values


# -- convenience constructors ----------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand for a column reference.

    >>> col("Paper.title").to_sql()
    ('Paper.title', [])
    """
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for a literal.

    >>> lit(42).evaluate({})
    42
    """
    return Literal(value)


def eq(column: str, value: Any) -> Comparison:
    """``column = value`` where ``value`` may be a column reference.

    >>> eq("name", "ada").evaluate({"name": "ada"})
    True
    """
    right = value if isinstance(value, Expression) else Literal(value)
    return Comparison("=", ColumnRef(column), right)


def ne(column: str, value: Any) -> Comparison:
    """``column != value`` where ``value`` may be a column reference.

    >>> ne("name", "ada").evaluate({"name": "bob"})
    True
    """
    right = value if isinstance(value, Expression) else Literal(value)
    return Comparison("!=", ColumnRef(column), right)


def eq_or_null(column: str, value: Any) -> Expression:
    """``column = value``, or ``column IS NULL`` when ``value`` is ``None``.

    The translation ORM filter layers use for keyword lookups (Django's
    ``field=None`` semantics): a literal ``= NULL`` comparison is UNKNOWN
    in SQL and would match nothing.

    >>> eq_or_null("title", None).to_sql()
    ('title IS NULL', [])
    >>> eq_or_null("title", "x").to_sql()
    ('title = ?', ['x'])
    """
    if value is None:
        return IsNull(ColumnRef(column))
    return eq(column, value)


def null_safe_eq(column: str, value: Any, negated: bool = False) -> NullSafeEq:
    """Two-valued ``column IS value`` (see :class:`NullSafeEq`).

    >>> null_safe_eq("owner_id", None).to_sql()
    ('owner_id IS ?', [None])
    """
    right = value if isinstance(value, Expression) else Literal(value)
    return NullSafeEq(ColumnRef(column), right, negated)


def _comparison(op: str, column: str, value: Any) -> Comparison:
    right = value if isinstance(value, Expression) else Literal(value)
    return Comparison(op, ColumnRef(column), right)


def gt(column: str, value: Any) -> Comparison:
    """``column > value``.

    >>> gt("score", 3).evaluate({"score": 5})
    True
    """
    return _comparison(">", column, value)


def gte(column: str, value: Any) -> Comparison:
    """``column >= value``.

    >>> gte("score", 3).evaluate({"score": 3})
    True
    """
    return _comparison(">=", column, value)


def lt(column: str, value: Any) -> Comparison:
    """``column < value``.

    >>> lt("score", 3).evaluate({"score": None}) is None
    True
    """
    return _comparison("<", column, value)


def lte(column: str, value: Any) -> Comparison:
    """``column <= value``.

    >>> lte("score", 3).to_sql()
    ('score <= ?', [3])
    """
    return _comparison("<=", column, value)


def between(column: str, low: Any, high: Any) -> Between:
    """``column BETWEEN low AND high`` (inclusive both ends).

    >>> between("score", 2, 4).evaluate({"score": 4})
    True
    """
    low_expr = low if isinstance(low, Expression) else Literal(low)
    high_expr = high if isinstance(high, Expression) else Literal(high)
    return Between(ColumnRef(column), low_expr, high_expr)


def like(column: str, pattern: str, case_sensitive: bool = False) -> Like:
    """``column LIKE pattern`` (``%``/``_`` wildcards; SQLite case rules).

    >>> like("title", "facet%").evaluate({"title": "Faceted values"})
    True
    """
    return Like(ColumnRef(column), pattern, case_sensitive)


def string_successor(text: str) -> Optional[str]:
    """The smallest string greater than every string prefixed by ``text``.

    The upper bound of a prefix range probe: increment the last code point,
    carrying past ``chr(0x10FFFF)``.  ``None`` means "no finite bound"
    (empty input or all-maximal code points).  Valid for both backends
    because UTF-8 byte order equals code-point order.

    >>> string_successor("/eng/")
    '/eng0'
    >>> string_successor("") is None
    True
    """
    for index in range(len(text) - 1, -1, -1):
        if ord(text[index]) < 0x10FFFF:
            return text[:index] + chr(ord(text[index]) + 1)
    return None


def prefix_range(column: str, prefix: str) -> Expression:
    """A prefix match compiled to plain range comparisons.

    The rewrite SQLite's own LIKE optimisation applies to
    ``column LIKE 'prefix%'``: a half-open range ``[prefix,
    successor(prefix))`` that ordinary ordered indexes serve on both
    backends.  Case-sensitive by construction (range comparisons are), so
    it is the indexable spelling of the org-tree ``path LIKE :prefix ||
    '%'`` policy shape.

    >>> prefix_range("path", "/eng/").to_sql()
    ('(path >= ? AND path < ?)', ['/eng/', '/eng0'])
    >>> prefix_range("path", "").to_sql()
    ('path IS NOT NULL', [])
    """
    if not prefix:
        # Every non-NULL TEXT value matches the empty prefix.
        return IsNull(ColumnRef(column), negated=True)
    upper = string_successor(prefix)
    if upper is None:  # all-maximal code points: no finite upper bound
        return gte(column, prefix)
    return AndExpr(gte(column, prefix), lt(column, upper))


def in_subquery(column: str, subquery: Any) -> InSubquery:
    """``column IN (SELECT ...)`` against a :class:`~repro.db.query.Query`."""
    return InSubquery(ColumnRef(column), subquery)


def exists_subquery(subquery: Any) -> ExistsSubquery:
    """``EXISTS (SELECT ...)`` against a :class:`~repro.db.query.Query`.

    >>> from repro.db.query import Query
    >>> exists_subquery(Query("Review").select("id")).to_sql()
    ('EXISTS (SELECT "id" FROM "Review")', [])
    """
    return ExistsSubquery(subquery)


def and_all(expressions: Sequence[Expression]) -> Optional[Expression]:
    """Conjunction of a sequence of expressions (``None`` for empty input)."""
    result: Optional[Expression] = None
    for expression in expressions:
        result = expression if result is None else AndExpr(result, expression)
    return result


def filters_to_expr(filters: Dict[str, Any]) -> Optional[Expression]:
    """Translate a Django-style ``{column: value}`` filter dict to an expression.

    ``None`` translates to ``IS NULL``, like Django: under SQL's
    three-valued semantics ``column = NULL`` is UNKNOWN and would match
    nothing on any backend.

    >>> filters_to_expr({"title": None}).to_sql()
    ('title IS NULL', [])
    """
    return and_all([eq_or_null(name, value) for name, value in filters.items()])
