"""WHERE-clause expressions.

Expressions form a small tree evaluated row-by-row by the in-memory engine
and rendered to parameterised SQL by the SQLite backend and the SQL
generator.  Column references may be qualified (``"Event.location"``) for
join queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Expression:
    """Base class for boolean/scalar expressions over rows."""

    __slots__ = ()

    def evaluate(self, row: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def to_sql(self) -> Tuple[str, List[Any]]:
        """Render to a SQL fragment and its bound parameters."""
        raise NotImplementedError

    def columns(self) -> List[str]:
        """Column names referenced by this expression."""
        return []

    # boolean combinators ------------------------------------------------------

    def __and__(self, other: "Expression") -> "Expression":
        return AndExpr(self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return OrExpr(self, other)

    def __invert__(self) -> "Expression":
        return NotExpr(self)


def _lookup(row: Dict[str, Any], name: str) -> Any:
    """Resolve a (possibly qualified) column name against a row dict."""
    if name in row:
        return row[name]
    if "." in name:
        _, bare = name.rsplit(".", 1)
        if bare in row:
            return row[bare]
    else:
        for key, value in row.items():
            if key.endswith("." + name):
                return value
    raise KeyError(f"row has no column {name!r}")


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally table-qualified."""

    name: str

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return _lookup(row, self.name)

    def to_sql(self) -> Tuple[str, List[Any]]:
        return self.name, []

    def columns(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return self.value

    def to_sql(self) -> Tuple[str, List[Any]]:
        return "?", [self.value]


_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison between two expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return _OPERATORS[self.op](self.left.evaluate(row), self.right.evaluate(row))

    def to_sql(self) -> Tuple[str, List[Any]]:
        left_sql, left_params = self.left.to_sql()
        right_sql, right_params = self.right.to_sql()
        return f"{left_sql} {self.op} {right_sql}", left_params + right_params

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class InList(Expression):
    """Membership test ``column IN (v1, v2, ...)``."""

    operand: Expression
    values: Tuple[Any, ...]

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return self.operand.evaluate(row) in self.values

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        placeholders = ", ".join("?" for _ in self.values)
        return f"{operand_sql} IN ({placeholders})", params + list(self.values)

    def columns(self) -> List[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class AndExpr(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))

    def to_sql(self) -> Tuple[str, List[Any]]:
        left_sql, left_params = self.left.to_sql()
        right_sql, right_params = self.right.to_sql()
        return f"({left_sql} AND {right_sql})", left_params + right_params

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class OrExpr(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))

    def to_sql(self) -> Tuple[str, List[Any]]:
        left_sql, left_params = self.left.to_sql()
        right_sql, right_params = self.right.to_sql()
        return f"({left_sql} OR {right_sql})", left_params + right_params

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class NotExpr(Expression):
    operand: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return not bool(self.operand.evaluate(row))

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        return f"(NOT {operand_sql})", params

    def columns(self) -> List[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class IsNull(Expression):
    """``column IS NULL`` / ``IS NOT NULL`` tests."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Dict[str, Any]) -> bool:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null

    def to_sql(self) -> Tuple[str, List[Any]]:
        operand_sql, params = self.operand.to_sql()
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{operand_sql} {keyword}", params

    def columns(self) -> List[str]:
        return self.operand.columns()


# -- convenience constructors ----------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for a literal."""
    return Literal(value)


def eq(column: str, value: Any) -> Comparison:
    """``column = value`` where ``value`` may be a column reference."""
    right = value if isinstance(value, Expression) else Literal(value)
    return Comparison("=", ColumnRef(column), right)


def ne(column: str, value: Any) -> Comparison:
    right = value if isinstance(value, Expression) else Literal(value)
    return Comparison("!=", ColumnRef(column), right)


def and_all(expressions: Sequence[Expression]) -> Optional[Expression]:
    """Conjunction of a sequence of expressions (``None`` for empty input)."""
    result: Optional[Expression] = None
    for expression in expressions:
        result = expression if result is None else AndExpr(result, expression)
    return result


def filters_to_expr(filters: Dict[str, Any]) -> Optional[Expression]:
    """Translate a Django-style ``{column: value}`` filter dict to an expression."""
    return and_all([eq(name, value) for name, value in filters.items()])
