"""The backend interface shared by the in-memory engine and SQLite.

The FORM and the baseline ORM are written against this interface, which
mirrors the subset of SQL the paper's FORM needs: create/drop, insert,
select (with joins, ordering, limits and subselects), update, delete and
aggregates.  Both concrete backends must agree on every query shape --
``tests/db/`` runs each query test against the two of them.

>>> from repro.db import Database
>>> Database().backend.supports_concurrent_reads   # MemoryBackend default
False
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.cache.bus import InvalidationBus
from repro.db.expr import Expression
from repro.db.observe import StatementEvent
from repro.db.query import DeletePlan, Query, UpdatePlan
from repro.db.schema import TableSchema


class Backend(abc.ABC):
    """Abstract relational backend.

    Write-through invalidation: every concrete backend publishes a
    table-level event on its :attr:`invalidation` bus after each successful
    write, so caches layered above the database can never serve rows older
    than the latest committed write.  The bus is created lazily; publishing
    with no subscribers is a cheap counter bump.

    Thread-safety contract (relied on by the WSGI serving layer): every
    method may be called from any thread.  Writes serialise internally and
    publish their invalidation event exactly once, after the write is
    committed/visible; reads return a consistent snapshot no older than the
    latest completed write.  Backends that can serve reads without blocking
    a concurrent writer advertise it via :attr:`supports_concurrent_reads`.
    """

    #: Whether reads proceed without waiting on an in-flight writer
    #: (e.g. SQLite in WAL mode with per-thread connections).
    @property
    def supports_concurrent_reads(self) -> bool:
        return False

    @property
    def invalidation(self) -> InvalidationBus:
        """The write-event bus of this backend (created on first use)."""
        bus = getattr(self, "_invalidation_bus", None)
        if bus is None:
            bus = InvalidationBus()
            self._invalidation_bus = bus
        return bus

    def _publish_write(self, table: str) -> None:
        """Announce that rows of ``table`` changed (called by subclasses)."""
        self.invalidation.publish(table)

    def _publish_clear(self) -> None:
        # clear() removes every row, so every table is facet-free again.
        state = getattr(self, "_facet_state", None)
        if state is not None:
            for name in self.table_names():
                state[name] = False
        branches = getattr(self, "_branch_state", None)
        if branches is not None:
            for name in self.table_names():
                branches[name] = set()
        self.invalidation.publish_all()

    def _publish_schema_change(self, table: Optional[str] = None) -> None:
        if table is not None:
            self._facet_tables.pop(table, None)
            self._branch_keys.pop(table, None)
        self.invalidation.schema_changed(table)

    # -- facet bookkeeping ---------------------------------------------------------

    @property
    def _facet_tables(self) -> Dict[str, bool]:
        """Per-table "may hold faceted rows" bits (``jvars != ''``).

        ``True`` is sticky until the table is cleared or dropped; ``False``
        is trustworthy because every write path inspects the rows it writes
        via :meth:`_note_facet_write`.  Absent means unknown (e.g. a
        reopened persistent table) and :meth:`may_have_facets` probes once.
        """
        state = getattr(self, "_facet_state", None)
        if state is None:
            state = {}
            self._facet_state = state
        return state

    @property
    def _branch_keys(self) -> Dict[str, Optional[set]]:
        """Per-table policy-group branch keys seen in faceted rows.

        ``set`` of keys when every faceted row written so far was a
        canonical single-group facet row (``jvars`` exactly
        ``"{table}.{jid}.{key}={bool}"`` for the row's own ``jid``);
        ``None`` is the sticky "exotic" verdict (multi-branch rows,
        program-counter labels, foreign-jid labels, or an update whose new
        ``jvars`` cannot be checked against a row id).  Absent means
        unknown -- writes skip it and :meth:`facet_branch_keys` probes the
        table's current rows once, which is correct regardless of write
        history.
        """
        state = getattr(self, "_branch_state", None)
        if state is None:
            state = {}
            self._branch_state = state
        return state

    @staticmethod
    def _own_branch_key(table: str, jid: Any, encoded: str) -> Optional[str]:
        """The group key of one canonical facet row's ``jvars``, or ``None``.

        >>> Backend._own_branch_key("Doc", 7, "Doc.7.title=True")
        'title'
        >>> Backend._own_branch_key("Doc", 7, "Doc.8.title=True") is None
        True
        >>> Backend._own_branch_key("Doc", 7, "Doc.7.title=True,x=False") is None
        True
        """
        if "," in encoded:
            return None  # multiple branches
        prefix = f"{table}.{jid}."
        if not encoded.startswith(prefix):
            return None  # pc label / ad-hoc label / foreign jid
        rest = encoded[len(prefix):]
        for suffix in ("=True", "=False"):
            if rest.endswith(suffix):
                key = rest[: -len(suffix)]
                if key and "." not in key and "=" not in key:
                    return key
        return None

    def _note_facet_write(self, table: str, rows: Sequence[Dict[str, Any]]) -> None:
        """Record that ``rows`` were written (facet bit + branch keys)."""
        branches = self._branch_keys
        for row in rows:
            encoded = row.get("jvars")
            if not encoded:
                continue
            self._facet_tables[table] = True
            if table not in branches:
                continue  # unknown: the probe will scan current rows
            known = branches[table]
            if known is None:
                continue  # already exotic (sticky)
            key = (
                self._own_branch_key(table, row["jid"], encoded)
                if "jid" in row
                else None  # UPDATE without a row id: unverifiable
            )
            if key is None:
                branches[table] = None
            else:
                known.add(key)

    def facet_branch_keys(self, table: str) -> Optional[frozenset]:
        """The policy-group keys of ``table``'s faceted rows, or ``None``.

        A ``frozenset`` (possibly empty) means every faceted row currently
        in the table -- and every one written since -- is a canonical
        single-group facet row whose group key is in the set, which is the
        soundness condition for rendering a policy branch inline with
        :class:`~repro.db.expr.FacetBranch`.  ``None`` means exotic labels
        may be present and inline rendering must not be used.  Unknown
        tables are probed once by scanning their faceted rows' ``jvars``.
        """
        state = self._branch_keys
        if table in state:
            known = state[table]
            return None if known is None else frozenset(known)
        if not self.may_have_facets(table):
            state[table] = set()
            return frozenset()
        try:
            from repro.db.expr import ne

            rows = self.execute(
                Query(table=table, where=ne("jvars", "")).select("jid", "jvars")
            )
        except Exception:  # pragma: no cover - conservative on probe failure
            return None
        keys: set = set()
        for row in rows:
            key = self._own_branch_key(table, row.get("jid"), row.get("jvars") or "")
            if key is None:
                state[table] = None
                return None
            keys.add(key)
        state[table] = keys
        return frozenset(keys)

    def may_have_facets(self, table: str) -> bool:
        """Whether ``table`` may hold faceted rows (non-empty ``jvars``).

        Served from the write-maintained bit when known; otherwise one
        ``EXISTS(jvars != '')`` probe runs and its result is cached (kept
        coherent by the write hooks).  Tables without a ``jvars`` column can
        never hold facets.  Errors stay conservative (``True``).

        >>> from repro.db import Database
        >>> from repro.db.schema import ColumnType
        >>> with Database() as db:
        ...     _ = db.define_table("Paper", jvars=ColumnType.TEXT)
        ...     before = db.backend.may_have_facets("Paper")
        ...     _ = db.insert("Paper", jvars="a=True")
        ...     (before, db.backend.may_have_facets("Paper"))
        (False, True)
        """
        state = self._facet_tables
        known = state.get(table)
        if known is not None:
            return known
        try:
            schema = self.schema(table)
        except Exception:
            return True
        if not schema.has_column("jvars"):
            state[table] = False
            return False
        try:
            from repro.db.expr import ne

            found = bool(self.exists(table, ne("jvars", "")))
        except Exception:  # pragma: no cover - conservative on probe failure
            return True
        state[table] = found
        return found

    # -- statement observation -----------------------------------------------------

    def add_statement_observer(self, observer: Callable[[StatementEvent], None]) -> None:
        """Register a callable receiving a :class:`StatementEvent` per statement.

        Both backends report SELECT/UPDATE/DELETE statements (the memory
        engine renders the SQL it would have sent) plus summary events for
        compound writes, with per-statement timing and row counts.  Use
        :class:`~repro.db.observe.StatementLog` for the common capture case.
        """
        observers = getattr(self, "_statement_observers", None)
        if observers is None:
            observers = []
            self._statement_observers = observers
        observers.append(observer)

    def remove_statement_observer(self, observer: Callable[[StatementEvent], None]) -> None:
        observers = getattr(self, "_statement_observers", None)
        if observers and observer in observers:
            observers.remove(observer)

    def _observing(self) -> bool:
        """Whether any statement event would have a consumer right now.

        The guard hot paths check before rendering SQL or reading the
        clock: true when an observer is registered or this thread has a
        trace in flight.  With neither, instrumentation costs one call.
        """
        return bool(getattr(self, "_statement_observers", None)) or obs.active()

    def _notify_statement(
        self, kind: str, sql: str, params: Sequence[Any], rows: int, duration: float
    ) -> None:
        """Fan one executed statement out to observers and the active trace."""
        event = StatementEvent(kind, sql, tuple(params), rows, duration)
        for observer in getattr(self, "_statement_observers", None) or ():
            observer(event)
        obs.record_statement(event)

    # -- schema management -------------------------------------------------------

    @abc.abstractmethod
    def create_table(self, schema: TableSchema) -> None:
        """Create a table (no-op if it already exists with the same name)."""

    @abc.abstractmethod
    def drop_table(self, name: str) -> None:
        """Drop a table if it exists."""

    @abc.abstractmethod
    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""

    @abc.abstractmethod
    def schema(self, name: str) -> TableSchema:
        """The schema of an existing table."""

    @abc.abstractmethod
    def table_names(self) -> List[str]:
        """Names of all existing tables."""

    # -- data manipulation ----------------------------------------------------------

    @abc.abstractmethod
    def insert(self, table: str, values: Dict[str, Any]) -> int:
        """Insert one row; returns the assigned primary key."""

    def insert_many(self, table: str, rows: Sequence[Dict[str, Any]]) -> List[int]:
        """Insert many rows; default implementation loops over :meth:`insert`.

        Backends override this to batch the write (one statement, one
        invalidation event) instead of paying per-row overhead.
        """
        return [self.insert(table, row) for row in rows]

    @abc.abstractmethod
    def update(self, table: str, where: Optional[Expression], values: Dict[str, Any]) -> int:
        """Update matching rows; returns the number of rows changed."""

    @abc.abstractmethod
    def delete(self, table: str, where: Optional[Expression]) -> int:
        """Delete matching rows; returns the number of rows removed."""

    def execute_update(self, plan: UpdatePlan) -> int:
        """Run a set-oriented :class:`~repro.db.query.UpdatePlan` in one write.

        The plan's WHERE may nest a record-key subselect (see
        ``plan_update``): the SQL backend renders it inline so the whole
        write is one statement; the memory backend materialises it and
        mutates under a single lock hold.  Returns the number of rows
        changed; publishes one invalidation event when any row changed.

        >>> from repro.db import Database
        >>> from repro.db.query import Query, plan_update
        >>> from repro.db.schema import ColumnType
        >>> from repro.db.expr import eq
        >>> with Database() as db:
        ...     _ = db.define_table("Paper", jid=ColumnType.INTEGER, ok=ColumnType.BOOLEAN)
        ...     _ = db.insert_many("Paper", [{"jid": 1, "ok": False}, {"jid": 1, "ok": False}])
        ...     plan = plan_update(db.query("Paper").filter(eq("ok", False)), {"ok": True}, "jid")
        ...     db.backend.execute_update(plan)
        2
        """
        return self.update(plan.table, plan.where, plan.values)

    def execute_delete(self, plan: DeletePlan) -> int:
        """Run a set-oriented :class:`~repro.db.query.DeletePlan` in one write.

        Single-statement counterpart of :meth:`execute_update` for DELETE;
        returns the number of rows removed.
        """
        return self.delete(plan.table, plan.where)

    def replace_rows(
        self, table: str, where: Optional[Expression], rows: Sequence[Dict[str, Any]]
    ) -> List[int]:
        """Replace the rows matching ``where`` with ``rows``; returns new pks.

        The FORM rewrites a record's facet-row set with this on every update.
        Concrete backends override it to make the swap atomic for readers
        (one transaction / one lock hold) with a single invalidation event;
        this default is the non-atomic delete + insert fallback.
        """
        self.delete(table, where)
        return self.insert_many(table, rows)

    # -- queries -----------------------------------------------------------------------

    @abc.abstractmethod
    def execute(self, query: Query) -> List[Dict[str, Any]]:
        """Run a select query; join results use qualified column keys."""

    @abc.abstractmethod
    def aggregate(self, query: Query) -> Any:
        """Run an aggregate query and return the scalar result."""

    def explain_query(self, query: Query) -> Dict[str, Any]:
        """Backend-specific plan detail merged into ``Query.explain()``.

        The memory engine reports the access path its cost model would
        choose (``chosen_plan`` / ``considered_plans``); SQLite reports its
        own ``EXPLAIN QUERY PLAN`` rows.  Must not execute the query or
        emit statement-observer events.  Default: nothing to add.
        """
        return {}

    @staticmethod
    def _check_aggregate(query: Query):
        """Validate an aggregate query; returns its :class:`Aggregate`.

        Shared by both backends so invalid shapes fail identically instead
        of diverging (e.g. EXISTS has no grouped form in SQL).
        """
        aggregate = query.aggregate
        if aggregate is None:
            raise ValueError("aggregate() requires a query with an aggregate")
        if aggregate.function.upper() == "EXISTS" and query.group_by:
            raise ValueError("EXISTS cannot be combined with GROUP BY")
        return aggregate

    def _grouped_aggregate_dict(self, query: Query) -> Dict[tuple, Any]:
        """The legacy ``{group key tuple: value}`` form of a GROUP BY aggregate.

        Rewrites the scalar aggregate as a grouped aggregate *selection* and
        executes it -- one statement on SQLite, the index-aware grouped path
        on the memory engine -- so both backends share one grouping
        implementation.
        """
        from dataclasses import replace

        grouped = replace(query, aggregate=None, aggregates=(query.aggregate,))
        key_name = query.aggregate.result_key()
        return {
            tuple(row.get(column) for column in query.group_by): row.get(key_name)
            for row in self.execute(grouped)
        }

    def count(self, table: str, where: Optional[Expression] = None) -> int:
        """Convenience COUNT(*) helper.

        ``where`` may contain subqueries: both backends resolve them (the
        SQL backend inline, the memory engine by materialisation).

        >>> from repro.db import Database
        >>> from repro.db.schema import ColumnType
        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     _ = db.insert("Paper", title="facets")
        ...     db.backend.count("Paper")
        1
        """
        query = Query(table=table, where=where).with_aggregate("COUNT")
        return int(self.aggregate(query) or 0)

    def exists(self, table: str, where: Optional[Expression] = None) -> bool:
        """Convenience ``SELECT EXISTS(...)`` helper: any matching row?

        One statement on both backends -- SQLite stops at the first hit,
        the memory engine early-exits its scan -- so probing a huge table
        never fetches (or counts) its rows.

        >>> from repro.db import Database
        >>> from repro.db.schema import ColumnType
        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     before = db.backend.exists("Paper")
        ...     _ = db.insert("Paper", title="facets")
        ...     (before, db.backend.exists("Paper"))
        (False, True)
        """
        from repro.db.query import plan_exists

        return bool(self.aggregate(plan_exists(Query(table=table, where=where))))

    # -- lifecycle -----------------------------------------------------------------------

    @abc.abstractmethod
    def clear(self) -> None:
        """Remove all rows from all tables (schemas are kept)."""

    def close(self) -> None:
        """Release any underlying resources (optional)."""
