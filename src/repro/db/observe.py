"""The backend statement-observer hook and its capture helper.

Every :class:`~repro.db.backend.Backend` notifies registered observers of
each single-statement operation it executes -- the rendered SQL text, the
statement kind, the row count and the measured wall-clock duration.  Both
backends report through this one channel (the memory engine renders the SQL
it *would* have sent via :mod:`repro.db.sqlgen`), which is what lets tests
and benchmarks assert statement shapes backend-independently.

:class:`StatementLog` is the capture helper that replaced the old
test-only ``RecordingSqliteBackend`` subclass::

    backend = SqliteBackend()
    with StatementLog(backend) as log:
        ...
    assert [s for s in log.statements if s.startswith("SELECT * ")]

Compound writes (``insert``/``insert_many``/``replace_rows``) execute more
than one statement inside one transaction; they are reported as a single
summary event (kind ``INSERT``/``REPLACE``) so write batching stays visible
without pretending to be one SQL statement.

>>> replace_summary("Paper", 4, 6)
'REPLACE INTO "Paper" (4 -> 6 rows)'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class StatementEvent:
    """One executed statement: kind, rendered SQL, rows touched, duration."""

    #: SELECT / UPDATE / DELETE for real single statements; INSERT / REPLACE
    #: for compound-write summaries.
    kind: str
    sql: str
    params: Tuple[Any, ...] = ()
    rows: int = 0
    #: seconds of wall-clock time the backend spent executing (perf_counter).
    duration: float = 0.0


class StatementLog:
    """An attachable observer collecting :class:`StatementEvent` objects.

    Construct with a backend (or a :class:`~repro.db.engine.Database`) to
    attach immediately; use as a context manager to detach on exit, or call
    :meth:`detach` explicitly.  ``clear()`` empties the log between measured
    sections.
    """

    def __init__(self, target: Optional[Any] = None) -> None:
        self.events: List[StatementEvent] = []
        self._backend: Optional[Any] = None
        if target is not None:
            self.attach(target)

    @property
    def statements(self) -> List[str]:
        """The rendered statement texts, in execution order."""
        return [event.sql for event in self.events]

    def attach(self, target: Any) -> "StatementLog":
        backend = getattr(target, "backend", target)
        backend.add_statement_observer(self._record)
        self._backend = backend
        return self

    def detach(self) -> None:
        if self._backend is not None:
            self._backend.remove_statement_observer(self._record)
            self._backend = None

    def clear(self) -> None:
        self.events.clear()

    def _record(self, event: StatementEvent) -> None:
        self.events.append(event)

    def __enter__(self) -> "StatementLog":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.detach()
        return False

    def __len__(self) -> int:
        return len(self.events)


def insert_summary(table: str, count: int) -> str:
    """The summary text both backends report for a batched insert."""
    return f'INSERT INTO "{table}" ({count} rows)'


def replace_summary(table: str, deleted: int, inserted: int) -> str:
    """The summary text both backends report for an atomic row swap."""
    return f'REPLACE INTO "{table}" ({deleted} -> {inserted} rows)'
