"""In-memory table storage with secondary indexes."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.db.expr import Expression
from repro.db.schema import SchemaError, TableSchema


class Table:
    """A heap of rows plus hash indexes on the columns marked ``indexed``.

    Rows are stored as dicts keyed by column name; the integer primary key is
    auto-assigned on insert when missing.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._next_pk = 1
        self._indexes: Dict[str, Dict[Any, set]] = {
            column.name: {} for column in schema.indexed_columns()
        }

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(list(self._rows.values()))

    # -- modification -------------------------------------------------------------

    def insert(self, values: Dict[str, Any]) -> int:
        """Insert a row, returning its primary key."""
        row = self.schema.validate_row(values)
        pk_name = self.schema.primary_key.name
        if row.get(pk_name) is None:
            row[pk_name] = self._next_pk
            self._next_pk += 1
        else:
            pk = int(row[pk_name])
            if pk in self._rows:
                raise SchemaError(f"duplicate primary key {pk} in {self.schema.name!r}")
            self._next_pk = max(self._next_pk, pk + 1)
        pk = row[pk_name]
        self._rows[pk] = row
        self._index_add(row)
        return pk

    def update(self, where: Optional[Expression], values: Dict[str, Any]) -> int:
        """Update matching rows in place; returns the number updated."""
        count = 0
        rows, exact = self._narrowed_rows(where)
        coerced = [
            (name, self.schema.column(name), value) for name, value in values.items()
        ]
        for row in rows:
            if exact or where is None or where.evaluate(row):
                self._index_remove(row)
                for name, column, value in coerced:
                    row[name] = column.coerce(value)
                self._index_add(row)
                count += 1
        return count

    def delete(self, where: Optional[Expression]) -> int:
        """Delete matching rows; returns the number deleted."""
        rows, exact = self._narrowed_rows(where)
        doomed = (
            rows
            if exact
            else [row for row in rows if where is None or where.evaluate(row)]
        )
        pk_name = self.schema.primary_key.name
        for row in doomed:
            self._index_remove(row)
            del self._rows[row[pk_name]]
        return len(doomed)

    def remove(self, pk: int) -> bool:
        """Delete one row by primary key; returns whether it existed."""
        row = self._rows.get(pk)
        if row is None:
            return False
        self._index_remove(row)
        del self._rows[pk]
        return True

    def clear(self) -> None:
        self._rows.clear()
        self._next_pk = 1
        for index in self._indexes.values():
            index.clear()

    # -- queries ---------------------------------------------------------------------

    def get(self, pk: int) -> Optional[Dict[str, Any]]:
        row = self._rows.get(pk)
        return dict(row) if row is not None else None

    def scan(self, where: Optional[Expression] = None) -> List[Dict[str, Any]]:
        """Return copies of all rows matching ``where`` (all rows if ``None``)."""
        result = []
        for row in self._candidate_rows(where):
            if where is None or where.evaluate(row):
                result.append(dict(row))
        return result

    def rows(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self._rows.values()]

    def candidate_rows(
        self, where: Optional[Expression], copy: bool = True
    ) -> List[Dict[str, Any]]:
        """The rows an index narrows ``where`` down to.

        A conservative superset of the matching rows: callers still
        evaluate ``where`` per row.  Equality, ``IN (...)`` lists (the
        resolved form of a jid-subselect pushdown) and ``IS NULL`` probes on
        an indexed column read the hash index instead of scanning the heap,
        which is what keeps the memory backend's bounded and grouped query
        paths O(matches) instead of O(table).

        ``copy=False`` returns the live row dicts -- only for callers that
        read under the backend lock and never return them (the aggregate
        paths), where per-row copies would dominate the statement cost.
        """
        rows = self._candidate_rows(where)
        if not copy:
            return rows
        return [dict(row) for row in rows]

    # -- indexes ------------------------------------------------------------------------

    def _candidate_rows(self, where: Optional[Expression]) -> List[Dict[str, Any]]:
        """Use an index to narrow the scan when the filter allows it."""
        rows, _exact = self._narrowed_rows(where)
        return rows

    def _narrowed_rows(
        self, where: Optional[Expression]
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Index-narrowed candidate rows plus an exactness flag.

        ``exact`` means the candidates are precisely the rows matching
        ``where`` -- the whole filter is one indexed probe whose bucket
        membership *is* the predicate -- so callers may skip per-row
        evaluation.  This is the narrowing behind set-oriented writes: the
        resolved ``jid IN (...)`` of a write plan mutates exactly its index
        buckets, O(matches) with no per-row predicate work.
        """
        if where is None:
            return list(self._rows.values()), True
        hit = self._index_lookup(where)
        if hit is None:
            return list(self._rows.values()), False
        column, values, exact = hit
        index = self._indexes.get(column, {})
        pks: set = set()
        for value in values:
            pks |= index.get(value, set())
        return [self._rows[pk] for pk in sorted(pks) if pk in self._rows], exact

    def _index_lookup(
        self, where: Expression
    ) -> Optional[Tuple[str, Tuple[Any, ...], bool]]:
        """Detect a top-level indexed ``= literal`` / ``IN`` / ``IS NULL``.

        Returns ``(column, candidate key values, exact)``.  An ``IN`` list
        drops NULL entries -- a NULL never compares equal, so no matching
        row can live in the NULL bucket -- while ``IS NULL`` reads exactly
        that bucket; both probes are *exact* (bucket membership equals the
        predicate), as is ``= literal`` for a non-NULL literal.  Only
        AND-conjunctions are descended: an OR branch could match rows
        outside any single index bucket, and a descended probe is merely a
        superset (``exact=False``).
        """
        from repro.db.expr import AndExpr, ColumnRef, Comparison, InList, IsNull, Literal

        if isinstance(where, Comparison) and where.op == "=":
            if isinstance(where.left, ColumnRef) and isinstance(where.right, Literal):
                name = where.left.name.rsplit(".", 1)[-1]
                if name in self._indexes:
                    # "= NULL" is UNKNOWN, never a match: the NULL bucket is
                    # a superset that per-row evaluation must reject.
                    return name, (where.right.value,), where.right.value is not None
        if isinstance(where, InList) and isinstance(where.operand, ColumnRef):
            name = where.operand.name.rsplit(".", 1)[-1]
            if name in self._indexes:
                values = tuple(value for value in where.values if value is not None)
                try:
                    for value in values:
                        hash(value)
                except TypeError:  # unhashable: cannot probe a hash index
                    return None
                return name, values, True
        if isinstance(where, IsNull) and not where.negated:
            if isinstance(where.operand, ColumnRef):
                name = where.operand.name.rsplit(".", 1)[-1]
                if name in self._indexes:
                    return name, (None,), True
        if isinstance(where, AndExpr):
            hit = self._index_lookup(where.left) or self._index_lookup(where.right)
            if hit is not None:
                column, values, _exact = hit
                return column, values, False
        return None

    def _index_add(self, row: Dict[str, Any]) -> None:
        pk = row[self.schema.primary_key.name]
        for column, index in self._indexes.items():
            index.setdefault(row.get(column), set()).add(pk)

    def _index_remove(self, row: Dict[str, Any]) -> None:
        pk = row[self.schema.primary_key.name]
        for column, index in self._indexes.items():
            bucket = index.get(row.get(column))
            if bucket is not None:
                bucket.discard(pk)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={len(self._rows)})"
