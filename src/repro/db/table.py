"""In-memory table storage with secondary indexes.

Two index families live beside the row heap:

* **hash indexes** (``Column(indexed=True)``): dict buckets serving exact
  ``=`` / ``IN`` / ``IS NULL`` probes;
* **ordered indexes** (``Column(ordered=True)`` or an explicit
  :class:`~repro.db.schema.IndexSpec`): bisect-maintained sorted entry
  lists serving range predicates (``<`` ``<=`` ``>`` ``>=`` ``BETWEEN``),
  case-sensitive prefix ``LIKE``, and in-order walks for ORDER BY with
  early exit under LIMIT.

Which one (if any) serves a given read is decided by the cost model in
:mod:`repro.db.planner` from live table statistics; ``use_indexes=False``
forces the scan path, which is the oracle plan-parity fuzzing compares
against.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.db.expr import Expression
from repro.db.planner import AccessPath, PlanChoice, TableStatistics, choose_plan
from repro.db.schema import SchemaError, TableSchema, index_name


class _Top:
    """A sentinel comparing greater than every value; used as a bisect
    probe suffix to land *after* all entries sharing a key prefix."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return other is self

    def __gt__(self, other: Any) -> bool:
        return True

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:  # pragma: no cover - never stored
        return 0


_TOP = _Top()

#: NULL sort component: ``(1,)`` orders after every ``(0, value)``, so an
#: ascending entry walk yields non-NULL values first and NULLs last --
#: exactly the engine's pinned ORDER BY NULL convention.
_NULL_COMPONENT: Tuple[int, ...] = (1,)


def _component(value: Any) -> Tuple[Any, ...]:
    return _NULL_COMPONENT if value is None else (0, value)


class OrderedIndex:
    """A sorted-list ordered index over one or more columns.

    Entries are tuples ``(enc(v1), ..., enc(vn), pk)`` where ``enc``
    wraps each column value so NULLs order after non-NULLs and the
    primary key breaks ties deterministically (stable-sort order).  All
    probes are tuple-prefix bisections, so lookups are O(log n) and range
    reads O(log n + matches).
    """

    __slots__ = ("name", "columns", "_entries", "_first_counts")

    def __init__(self, name: str, columns: Tuple[str, ...]) -> None:
        self.name = name
        self.columns = columns
        self._entries: List[Tuple[Any, ...]] = []
        # Distinct leading-component counts feed the planner's cardinality
        # estimate without an O(n) walk per plan.
        self._first_counts: Dict[Tuple[Any, ...], int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, row: Dict[str, Any], pk: int) -> Tuple[Any, ...]:
        return tuple(_component(row.get(c)) for c in self.columns) + (pk,)

    def add(self, row: Dict[str, Any], pk: int) -> None:
        key = self.key_for(row, pk)
        bisect.insort(self._entries, key)
        first = key[0]
        self._first_counts[first] = self._first_counts.get(first, 0) + 1

    def remove(self, row: Dict[str, Any], pk: int) -> None:
        key = self.key_for(row, pk)
        position = bisect.bisect_left(self._entries, key)
        if position < len(self._entries) and self._entries[position] == key:
            del self._entries[position]
            first = key[0]
            count = self._first_counts.get(first, 0) - 1
            if count <= 0:
                self._first_counts.pop(first, None)
            else:
                self._first_counts[first] = count

    def clear(self) -> None:
        self._entries.clear()
        self._first_counts.clear()

    def cardinality(self) -> int:
        return len(self._first_counts)

    # -- probes -------------------------------------------------------------------

    def range_pks(
        self,
        low: Optional[Tuple[Any, bool]],
        high: Optional[Tuple[Any, bool]],
        descending: bool = False,
    ) -> List[int]:
        """Primary keys of rows whose leading column lies in the range.

        Bounds are ``(value, inclusive)`` or ``None`` for unbounded.  NULL
        leading values never qualify (a SQL range comparison with NULL is
        UNKNOWN).  Ascending output is (value, pk)-ordered; descending
        output walks value groups in reverse while keeping ascending pk
        order inside each group, matching a stable reverse sort.
        """
        entries = self._entries
        if low is None:
            start = 0
        elif low[1]:
            start = bisect.bisect_left(entries, (_component(low[0]),))
        else:
            start = bisect.bisect_left(entries, (_component(low[0]), _TOP))
        if high is None:
            stop = bisect.bisect_left(entries, (_NULL_COMPONENT,))
        elif high[1]:
            stop = bisect.bisect_left(entries, (_component(high[0]), _TOP))
        else:
            stop = bisect.bisect_left(entries, (_component(high[0]),))
        segment = entries[start:stop]
        if not descending:
            return [entry[-1] for entry in segment]
        return self._descending_pks(segment)

    def scan_pks(self, descending: bool = False) -> List[int]:
        """Every primary key in index order (NULLs last ascending, first
        descending -- the engine's ORDER BY NULL convention)."""
        if not descending:
            return [entry[-1] for entry in self._entries]
        return self._descending_pks(self._entries)

    @staticmethod
    def _descending_pks(segment: Sequence[Tuple[Any, ...]]) -> List[int]:
        # Walk equal-leading-value groups back to front, keeping ascending
        # pk order inside each group: the exact row order of a stable
        # reverse=True sort, so index-served DESC is scan-identical.
        out: List[int] = []
        i = len(segment)
        while i > 0:
            j = i
            first = segment[i - 1][0]
            while i > 0 and segment[i - 1][0] == first:
                i -= 1
            out.extend(entry[-1] for entry in segment[i:j])
        return out


class Table:
    """A heap of rows plus hash and ordered indexes per the schema.

    Rows are stored as dicts keyed by column name; the integer primary key is
    auto-assigned on insert when missing.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._next_pk = 1
        self._indexes: Dict[str, Dict[Any, set]] = {
            column.name: {} for column in schema.indexed_columns()
        }
        self._ordered: Dict[str, OrderedIndex] = {}
        for spec in schema.ordered_indexes():
            name = index_name(schema.name, spec)
            self._ordered[name] = OrderedIndex(name, spec.columns)
        #: ``False`` forces the scan path -- the oracle configuration the
        #: plan-parity fuzz harness runs against.
        self.use_indexes = True
        #: The :class:`~repro.db.planner.PlanChoice` behind the most recent
        #: planned read, recorded for ``explain()``/test introspection.
        self.last_plan: Optional[PlanChoice] = None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(list(self._rows.values()))

    # -- modification -------------------------------------------------------------

    def insert(self, values: Dict[str, Any]) -> int:
        """Insert a row, returning its primary key."""
        row = self.schema.validate_row(values)
        pk_name = self.schema.primary_key.name
        if row.get(pk_name) is None:
            row[pk_name] = self._next_pk
            self._next_pk += 1
        else:
            pk = int(row[pk_name])
            if pk in self._rows:
                raise SchemaError(f"duplicate primary key {pk} in {self.schema.name!r}")
            self._next_pk = max(self._next_pk, pk + 1)
        pk = row[pk_name]
        self._rows[pk] = row
        self._index_add(row)
        return pk

    def update(self, where: Optional[Expression], values: Dict[str, Any]) -> int:
        """Update matching rows in place; returns the number updated."""
        count = 0
        rows, exact = self._narrowed_rows(where)
        coerced = [
            (name, self.schema.column(name), value) for name, value in values.items()
        ]
        for row in rows:
            if exact or where is None or where.evaluate(row):
                self._index_remove(row)
                for name, column, value in coerced:
                    row[name] = column.coerce(value)
                self._index_add(row)
                count += 1
        return count

    def delete(self, where: Optional[Expression]) -> int:
        """Delete matching rows; returns the number deleted."""
        rows, exact = self._narrowed_rows(where)
        doomed = (
            rows
            if exact
            else [row for row in rows if where is None or where.evaluate(row)]
        )
        pk_name = self.schema.primary_key.name
        for row in doomed:
            self._index_remove(row)
            del self._rows[row[pk_name]]
        return len(doomed)

    def remove(self, pk: int) -> bool:
        """Delete one row by primary key; returns whether it existed."""
        row = self._rows.get(pk)
        if row is None:
            return False
        self._index_remove(row)
        del self._rows[pk]
        return True

    def clear(self) -> None:
        self._rows.clear()
        self._next_pk = 1
        for index in self._indexes.values():
            index.clear()
        for ordered in self._ordered.values():
            ordered.clear()

    # -- queries ---------------------------------------------------------------------

    def get(self, pk: int) -> Optional[Dict[str, Any]]:
        row = self._rows.get(pk)
        return dict(row) if row is not None else None

    def scan(self, where: Optional[Expression] = None) -> List[Dict[str, Any]]:
        """Return copies of all rows matching ``where`` (all rows if ``None``)."""
        result = []
        for row in self._candidate_rows(where):
            if where is None or where.evaluate(row):
                result.append(dict(row))
        return result

    def rows(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self._rows.values()]

    def candidate_rows(
        self, where: Optional[Expression], copy: bool = True
    ) -> List[Dict[str, Any]]:
        """The rows an index narrows ``where`` down to.

        A conservative superset of the matching rows: callers still
        evaluate ``where`` per row.  Equality, ``IN (...)`` lists (the
        resolved form of a jid-subselect pushdown) and ``IS NULL`` probes on
        a hash-indexed column read the hash buckets, and range/``BETWEEN``/
        prefix-``LIKE`` probes on an ordered-indexed column read the sorted
        entries -- which is what keeps the memory backend's bounded and
        grouped query paths O(matches) instead of O(table).

        ``copy=False`` returns the live row dicts -- only for callers that
        read under the backend lock and never return them (the aggregate
        paths), where per-row copies would dominate the statement cost.
        """
        rows = self._candidate_rows(where)
        if not copy:
            return rows
        return [dict(row) for row in rows]

    # -- planning ------------------------------------------------------------------------

    def statistics(self) -> TableStatistics:
        """A live snapshot of the statistics the cost model consumes."""
        return TableStatistics(
            row_count=len(self._rows),
            hash_indexes={
                column: len(index) for column, index in self._indexes.items()
            },
            ordered_indexes={
                name: index.columns for name, index in self._ordered.items()
            },
            ordered_cardinality={
                name: index.cardinality() for name, index in self._ordered.items()
            },
        )

    def plan(
        self,
        where: Optional[Expression],
        order_by: Sequence[Any] = (),
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> PlanChoice:
        """Cost the access paths for a read over this table."""
        return choose_plan(
            where,
            order_by,
            limit,
            offset,
            statistics=self.statistics(),
            use_indexes=self.use_indexes,
        )

    def rows_for_path(
        self, path: AccessPath, copy: bool = True
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Execute an access path, returning ``(candidate rows, exact)``.

        ``exact`` means the candidates are precisely the rows matching the
        predicate the path was planned for, so callers may skip per-row
        evaluation.  Rows arrive in index order when ``path.serves_order``
        (respecting ``path.descending``), heap order otherwise.  Records
        the served path in the ``plan.index.*`` observability counters.
        """
        rows, exact = self._path_rows(path)
        obs.add(_PATH_COUNTERS[path.kind])
        if copy:
            rows = [dict(row) for row in rows]
        return rows, exact

    def _path_rows(self, path: AccessPath) -> Tuple[List[Dict[str, Any]], bool]:
        if path.kind == "hash-probe":
            index = self._indexes.get(path.column, {})
            pks: set = set()
            for value in path.values or ():
                pks |= index.get(value, set())
            return [self._rows[pk] for pk in sorted(pks) if pk in self._rows], path.exact
        if path.kind == "ordered-range":
            if path.empty:
                # A NULL bound makes that conjunct UNKNOWN for every row:
                # nothing can match, exactly.
                return [], True
            ordered = self._ordered[path.index]
            try:
                pks = ordered.range_pks(path.low, path.high, path.descending)
            except TypeError:
                # Probe literal incomparable with stored values (mixed-type
                # query): fall back to the scan the planner would otherwise
                # have chosen.
                return list(self._rows.values()), False
            if not path.serves_order:
                # Without an ORDER BY to serve, candidates keep primary-key
                # order -- the same order the scan and hash paths produce,
                # so enabling the index never changes observable row order.
                pks = sorted(pks)
            return [self._rows[pk] for pk in pks if pk in self._rows], path.exact
        if path.kind == "ordered-scan":
            ordered = self._ordered[path.index]
            pks = ordered.scan_pks(path.descending)
            return [self._rows[pk] for pk in pks if pk in self._rows], False
        return list(self._rows.values()), False

    # -- indexes ------------------------------------------------------------------------

    def _candidate_rows(self, where: Optional[Expression]) -> List[Dict[str, Any]]:
        """Use an index to narrow the scan when the filter allows it."""
        rows, _exact = self._narrowed_rows(where)
        return rows

    def _narrowed_rows(
        self, where: Optional[Expression]
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Index-narrowed candidate rows plus an exactness flag.

        ``exact`` means the candidates are precisely the rows matching
        ``where`` -- the whole filter is one indexed probe whose bucket (or
        range) membership *is* the predicate -- so callers may skip per-row
        evaluation.  This is the narrowing behind set-oriented writes: the
        resolved ``jid IN (...)`` of a write plan mutates exactly its index
        buckets, O(matches) with no per-row predicate work.  The access
        path is chosen by the cost model in :mod:`repro.db.planner`.
        """
        if where is None:
            return list(self._rows.values()), True
        if not self.use_indexes:
            return list(self._rows.values()), False
        choice = self.plan(where)
        self.last_plan = choice
        return self.rows_for_path(choice.chosen, copy=False)

    def _index_add(self, row: Dict[str, Any]) -> None:
        pk = row[self.schema.primary_key.name]
        for column, index in self._indexes.items():
            index.setdefault(row.get(column), set()).add(pk)
        for ordered in self._ordered.values():
            ordered.add(row, pk)

    def _index_remove(self, row: Dict[str, Any]) -> None:
        pk = row[self.schema.primary_key.name]
        for column, index in self._indexes.items():
            bucket = index.get(row.get(column))
            if bucket is not None:
                bucket.discard(pk)
        for ordered in self._ordered.values():
            ordered.remove(row, pk)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={len(self._rows)})"


#: Observability counter per executed access-path kind.
_PATH_COUNTERS = {
    "hash-probe": "plan.index.hash_probe",
    "ordered-range": "plan.index.range_probe",
    "ordered-scan": "plan.index.ordered_scan",
    "full-scan": "plan.index.full_scan",
}
