"""Query descriptions: selects, joins, ordering and aggregates.

A :class:`Query` is a declarative description executed by a backend.  Joins
produce rows whose keys are qualified (``"Table.column"``) so that columns
with the same name in different tables do not collide -- exactly what the
FORM needs when it adds ``jvars`` columns from every joined table (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.expr import Expression


@dataclass(frozen=True)
class Join:
    """An inner join clause: ``JOIN table ON left_column = right_column``."""

    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class Order:
    """An ORDER BY term."""

    column: str
    ascending: bool = True


@dataclass(frozen=True)
class Aggregate:
    """An aggregate computation: COUNT, SUM, AVG, MIN or MAX over a column."""

    function: str
    column: str = "*"

    def __post_init__(self) -> None:
        if self.function.upper() not in {"COUNT", "SUM", "AVG", "MIN", "MAX"}:
            raise ValueError(f"unknown aggregate function {self.function!r}")


@dataclass(frozen=True)
class Query:
    """A declarative select query against one table plus optional joins."""

    table: str
    columns: Optional[Tuple[str, ...]] = None
    where: Optional[Expression] = None
    joins: Tuple[Join, ...] = ()
    order_by: Tuple[Order, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    aggregate: Optional[Aggregate] = None
    group_by: Tuple[str, ...] = ()

    # -- fluent builders --------------------------------------------------------------

    def select(self, *columns: str) -> "Query":
        return replace(self, columns=tuple(columns) if columns else None)

    def filter(self, expression: Expression) -> "Query":
        from repro.db.expr import AndExpr

        combined = expression if self.where is None else AndExpr(self.where, expression)
        return replace(self, where=combined)

    def join(self, table: str, left_column: str, right_column: str) -> "Query":
        return replace(self, joins=self.joins + (Join(table, left_column, right_column),))

    def ordered_by(self, column: str, ascending: bool = True) -> "Query":
        return replace(self, order_by=self.order_by + (Order(column, ascending),))

    def limited(self, limit: int, offset: int = 0) -> "Query":
        return replace(self, limit=limit, offset=offset)

    def with_aggregate(self, function: str, column: str = "*") -> "Query":
        return replace(self, aggregate=Aggregate(function, column))

    def grouped_by(self, *columns: str) -> "Query":
        return replace(self, group_by=tuple(columns))

    # -- helpers ------------------------------------------------------------------------

    def is_join(self) -> bool:
        return bool(self.joins)

    def qualified_columns(self) -> Optional[Tuple[str, ...]]:
        """Requested columns qualified with the base table when unqualified."""
        if self.columns is None:
            return None
        qualified = []
        for name in self.columns:
            qualified.append(name if "." in name else f"{self.table}.{name}")
        return tuple(qualified)


def apply_order(rows: List[Dict[str, Any]], order_by: Sequence[Order]) -> List[Dict[str, Any]]:
    """Sort rows by a sequence of order terms (stable, None-safe)."""
    result = list(rows)
    for order in reversed(order_by):
        def key(row: Dict[str, Any], column: str = order.column) -> Tuple[int, Any]:
            value = _qualified_get(row, column)
            return (value is None, value)

        result.sort(key=key, reverse=not order.ascending)
    return result


def apply_limit(
    rows: List[Dict[str, Any]], limit: Optional[int], offset: int
) -> List[Dict[str, Any]]:
    if offset:
        rows = rows[offset:]
    if limit is not None:
        rows = rows[:limit]
    return rows


def limit_by_key(items: List[Any], key, limit: Optional[int]) -> List[Any]:
    """Keep every item of the first ``limit`` distinct keys, in order.

    The record-counting limit shared by both ORMs: the FORM limits facet
    rows per jid, the baseline limits joined rows per pk.  All items of a
    kept key are retained wherever they appear, so a limited result can
    never truncate one record to a subset of its rows.
    """
    if limit is None:
        return items
    kept: Dict[Any, None] = {}
    limited: List[Any] = []
    for item in items:
        item_key = key(item)
        if item_key not in kept:
            if len(kept) >= limit:
                continue
            kept[item_key] = None
        limited.append(item)
    return limited


def compute_aggregate(rows: List[Dict[str, Any]], aggregate: Aggregate) -> Any:
    """Evaluate an aggregate over already-filtered rows."""
    function = aggregate.function.upper()
    if function == "COUNT":
        if aggregate.column == "*":
            return len(rows)
        return sum(1 for row in rows if _qualified_get(row, aggregate.column) is not None)
    values = [
        value
        for row in rows
        if (value := _qualified_get(row, aggregate.column)) is not None
    ]
    if not values:
        return None
    if function == "SUM":
        return sum(values)
    if function == "AVG":
        return sum(values) / len(values)
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    raise ValueError(f"unknown aggregate function {function!r}")  # pragma: no cover


def _qualified_get(row: Dict[str, Any], column: str) -> Any:
    if column in row:
        return row[column]
    if "." in column:
        bare = column.rsplit(".", 1)[-1]
        if bare in row:
            return row[bare]
    else:
        for key, value in row.items():
            if key.endswith("." + column):
                return value
    return None
