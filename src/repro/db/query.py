"""Query descriptions: selects, joins, ordering and aggregates.

A :class:`Query` is a declarative description executed by a backend.  Joins
produce rows whose keys are qualified (``"Table.column"``) so that columns
with the same name in different tables do not collide -- exactly what the
FORM needs when it adds ``jvars`` columns from every joined table (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.expr import Expression


@dataclass(frozen=True)
class Join:
    """An inner join clause: ``JOIN table ON left_column = right_column``."""

    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class Order:
    """An ORDER BY term."""

    column: str
    ascending: bool = True


@dataclass(frozen=True)
class Aggregate:
    """An aggregate computation over a column.

    ``COUNT``, ``SUM``, ``AVG``, ``MIN`` and ``MAX`` follow SQL's NULL
    rules on both backends: NULL values are skipped, ``COUNT`` of no
    values is 0, and every other function over no values is NULL.
    ``distinct`` selects ``COUNT(DISTINCT column)`` and friends -- the
    record-counting form of the FORM's ``count()`` pushdown, where one
    logical record spans several facet rows sharing a ``jid``.
    ``EXISTS`` is the whole-query membership test (``SELECT EXISTS(...)``);
    it takes no column.

    >>> Aggregate("COUNT", "jid", distinct=True).result_key()
    'COUNT(DISTINCT jid)'
    >>> Aggregate("EXISTS").result_key()
    'EXISTS'
    """

    function: str
    column: str = "*"
    distinct: bool = False

    def __post_init__(self) -> None:
        function = self.function.upper()
        if function not in {"COUNT", "SUM", "AVG", "MIN", "MAX", "EXISTS"}:
            raise ValueError(f"unknown aggregate function {self.function!r}")
        if self.distinct and self.column == "*":
            raise ValueError("DISTINCT aggregates need an explicit column")
        if function == "EXISTS" and (self.distinct or self.column != "*"):
            raise ValueError("EXISTS takes neither a column nor DISTINCT")

    def result_key(self) -> str:
        """The result-row key (and SQL alias) of this aggregate selection.

        Both backends name an aggregate's output column exactly like this,
        so grouped aggregate rows are backend-identical.

        >>> Aggregate("SUM", "score").result_key()
        'SUM(score)'
        """
        function = self.function.upper()
        if function == "EXISTS":
            return "EXISTS"
        prefix = "DISTINCT " if self.distinct else ""
        return f"{function}({prefix}{self.column})"


@dataclass(frozen=True)
class Query:
    """A declarative select query against one table plus optional joins.

    Queries are immutable; every builder returns a new query.

    >>> from repro.db.expr import eq
    >>> q = Query("Paper").filter(eq("accepted", True)).ordered_by("title")
    >>> q.limit is None and not q.distinct
    True
    """

    table: str
    columns: Optional[Tuple[str, ...]] = None
    where: Optional[Expression] = None
    joins: Tuple[Join, ...] = ()
    order_by: Tuple[Order, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    aggregate: Optional[Aggregate] = None
    group_by: Tuple[str, ...] = ()
    #: SELECT DISTINCT: deduplicate result rows (after column projection).
    distinct: bool = False
    #: Aggregate *selections*: ``SELECT group_by..., AGG1, AGG2 ... GROUP BY
    #: group_by`` executed through :meth:`Backend.execute`, one result row
    #: per group keyed by the group columns plus each aggregate's
    #: ``result_key()``.  Unlike :attr:`aggregate` (a single scalar through
    #: ``Backend.aggregate``), this is the planner's grouped form -- the
    #: FORM's per-jvars-partition aggregates ride on it.
    aggregates: Tuple[Aggregate, ...] = ()

    # -- fluent builders --------------------------------------------------------------

    def select(self, *columns: str) -> "Query":
        """Restrict the result to the named columns.

        >>> Query("Paper").select("jid", "title").columns
        ('jid', 'title')
        """
        return replace(self, columns=tuple(columns) if columns else None)

    def filter(self, expression: Expression) -> "Query":
        """AND a where-clause expression onto the query.

        >>> from repro.db.expr import eq
        >>> Query("Paper").filter(eq("accepted", True)).where is not None
        True
        """
        from repro.db.expr import AndExpr

        combined = expression if self.where is None else AndExpr(self.where, expression)
        return replace(self, where=combined)

    def join(self, table: str, left_column: str, right_column: str) -> "Query":
        """Add an inner join: ``JOIN table ON base.left = table.right``.

        >>> Query("Paper").join("ConfUser", "author", "jid").is_join()
        True
        """
        return replace(self, joins=self.joins + (Join(table, left_column, right_column),))

    def ordered_by(self, column: str, ascending: bool = True) -> "Query":
        """Append an ORDER BY term (stable across multiple calls).

        >>> Query("Paper").ordered_by("title", ascending=False).order_by
        (Order(column='title', ascending=False),)
        """
        return replace(self, order_by=self.order_by + (Order(column, ascending),))

    def limited(self, limit: int, offset: int = 0) -> "Query":
        """Bound the result to ``limit`` rows, skipping ``offset`` first.

        >>> Query("Paper").limited(5, offset=10).offset
        10
        """
        return replace(self, limit=limit, offset=offset)

    def distinct_rows(self) -> "Query":
        """SELECT DISTINCT: drop duplicate result rows.

        The building block of the bounded-query pushdown: a distinct
        single-column select of record identifiers with LIMIT applied
        *inside* a subquery (see :meth:`in_subquery`).

        >>> Query("Paper").select("jid").distinct_rows().distinct
        True
        """
        return replace(self, distinct=True)

    def in_subquery(self, column: str, subquery: "Query") -> "Query":
        """Filter by membership in a nested single-column select.

        Renders as ``WHERE column IN (SELECT ... )`` on SQL backends; the
        in-memory engine materialises the subquery before scanning.

        >>> sub = Query("Paper").select("jid").distinct_rows().limited(2)
        >>> bounded = Query("Paper").in_subquery("jid", sub)
        >>> [type(e).__name__ for e in bounded.where.subqueries()]
        ['Query']
        """
        from repro.db.expr import InSubquery, ColumnRef

        return self.filter(InSubquery(ColumnRef(column), subquery))

    def with_aggregate(
        self, function: str, column: str = "*", distinct: bool = False
    ) -> "Query":
        """Turn the query into a scalar aggregate (COUNT/SUM/AVG/MIN/MAX/EXISTS).

        >>> Query("Paper").with_aggregate("COUNT").aggregate
        Aggregate(function='COUNT', column='*', distinct=False)
        >>> Query("Paper").with_aggregate("COUNT", "jid", distinct=True).aggregate.result_key()
        'COUNT(DISTINCT jid)'
        """
        return replace(self, aggregate=Aggregate(function, column, distinct))

    def select_aggregates(self, *aggregates: Aggregate) -> "Query":
        """Select aggregate computations as result columns (grouped rows).

        Combined with :meth:`grouped_by`, executes as one ``SELECT
        group..., AGG... GROUP BY group`` statement returning a row per
        group; each aggregate's value is keyed by its
        :meth:`Aggregate.result_key`.

        >>> q = (Query("Paper").select_aggregates(Aggregate("COUNT"))
        ...      .grouped_by("jvars"))
        >>> [a.result_key() for a in q.aggregates]
        ['COUNT(*)']
        """
        return replace(self, aggregates=tuple(aggregates))

    def grouped_by(self, *columns: str) -> "Query":
        """GROUP BY for aggregate queries.

        >>> Query("Paper").with_aggregate("COUNT").grouped_by("author").group_by
        ('author',)
        """
        return replace(self, group_by=tuple(columns))

    # -- helpers ------------------------------------------------------------------------

    def is_join(self) -> bool:
        """Whether the query joins at least one other table."""
        return bool(self.joins)

    def qualified_columns(self) -> Optional[Tuple[str, ...]]:
        """Requested columns qualified with the base table when unqualified.

        >>> Query("Paper", columns=("jid", "ConfUser.name")).qualified_columns()
        ('Paper.jid', 'ConfUser.name')
        """
        if self.columns is None:
            return None
        qualified = []
        for name in self.columns:
            qualified.append(name if "." in name else f"{self.table}.{name}")
        return tuple(qualified)

    def tables_read(self) -> Tuple[str, ...]:
        """Every table this query reads: base, joins and nested subqueries.

        The cache layer registers a cached result against each of these for
        write-through invalidation, so a write to a table only referenced
        inside a subquery still drops the entry.

        >>> sub = Query("Paper").join("Review", "jid", "paper").select("jid")
        >>> Query("Paper").in_subquery("jid", sub).tables_read()
        ('Paper', 'Review')
        """
        tables = [self.table]
        tables.extend(join.table for join in self.joins)
        if self.where is not None:
            for subquery in self.where.subqueries():
                tables.extend(subquery.tables_read())
        seen: Dict[str, None] = dict.fromkeys(tables)
        return tuple(seen)

    def explain(self) -> Dict[str, Any]:
        """The plan shape and rendered SQL of this query, without executing.

        The SQL is exactly what a backend reports through the statement
        observer when the query runs (a grouped scalar aggregate renders as
        the grouped selection both backends actually execute).  Plan shapes:
        ``grouped-aggregate``, ``scalar-aggregate``, ``key-subselect`` (a
        record-key pushdown subselect in the WHERE) or ``scan``.

        >>> from repro.db.expr import eq
        >>> plan = plan_bounded(Query("Paper").filter(eq("ok", True)), "jid", 2).explain()
        >>> plan["plan"]
        'key-subselect'
        >>> plan["sql"]
        'SELECT * FROM "Paper" WHERE (ok = ? AND jid IN (SELECT DISTINCT "jid" FROM "Paper" WHERE ok = ? LIMIT 2))'
        >>> Query("Paper").with_aggregate("COUNT").grouped_by("jvars").explain()["plan"]
        'grouped-aggregate'
        """
        from repro.db.sqlgen import query_to_sql

        query = self
        if self.aggregate is not None and self.group_by:
            # Mirror Backend._grouped_aggregate_dict: the grouped dict API
            # executes as a grouped aggregate *selection*.
            query = replace(self, aggregate=None, aggregates=(self.aggregate,))
        if query.aggregates:
            plan = "grouped-aggregate"
        elif query.aggregate is not None:
            plan = "scalar-aggregate"
        elif query.where is not None and query.where.subqueries():
            plan = "key-subselect"
        else:
            plan = "scan"
        sql, params = query_to_sql(query, qualify=query.is_join())
        return {
            "plan": plan,
            "sql": sql,
            "params": list(params),
            "tables": list(self.tables_read()),
        }


def order_outside_selection(query: "Query") -> bool:
    """Whether a distinct query orders by columns outside its select list.

    Such a query is ambiguous as plain ``SELECT DISTINCT ... ORDER BY``:
    SQLite sorts each distinct value by an *arbitrary* representative row,
    so two backends (or two SQLite runs) may disagree on *which* keys a
    LIMIT keeps.  Both backends therefore evaluate it in the grouped form
    -- ``GROUP BY key ORDER BY MIN(col)`` (``MAX`` for descending), with
    the key itself as the final tie-break -- which is deterministic and
    identical across backends.

    >>> q = Query("T").select("jid").distinct_rows().ordered_by("title")
    >>> order_outside_selection(q)
    True
    >>> order_outside_selection(Query("T").select("jid").distinct_rows().ordered_by("jid"))
    False
    """
    if not (query.distinct and query.columns and query.order_by):
        return False
    if query.group_by or query.aggregate is not None or query.aggregates:
        return False
    selected = set(query.columns) | set(query.qualified_columns() or ())
    bare = {name.rsplit(".", 1)[-1] for name in selected}
    for order in query.order_by:
        if order.column in selected:
            continue
        # An *unqualified* order column matching a selected column's bare
        # name resolves to the select list.  A qualified one must match
        # literally: "ConfUser.jid" is NOT the selected "Paper.jid" even
        # though the bare names agree.
        if "." not in order.column and order.column in bare:
            continue
        return True
    return False


def plan_bounded(
    query: "Query", key_column: str, limit: Optional[int], offset: int = 0
) -> "Query":
    """Compile a bounded query to the key-subselect pushdown form.

    A raw SQL ``LIMIT`` on a faceted (or joined) query counts *rows*, but one
    logical record spans several rows -- one per facet for the FORM, one per
    join match for the baseline -- so a row bound could truncate a record to
    a subset of its facets or undercount records.  Instead, the bound is
    pushed into a subquery that selects the first ``limit`` DISTINCT record
    keys under the query's own filters, joins and ordering; the outer query
    then fetches every row of exactly those records::

        WHERE "T"."jid" IN (SELECT DISTINCT "T"."jid" FROM ...
                            ORDER BY ... LIMIT n OFFSET m)

    ``key_column`` is the record identity -- ``jid`` for the FORM, ``id``
    for the baseline ORM -- qualified automatically under joins.

    >>> q = plan_bounded(Query("Paper"), "jid", 5)
    >>> from repro.db.sqlgen import query_to_sql
    >>> query_to_sql(q)[0]
    'SELECT * FROM "Paper" WHERE jid IN (SELECT DISTINCT "jid" FROM "Paper" LIMIT 5)'
    """
    if "." not in key_column and query.is_join():
        key_column = f"{query.table}.{key_column}"
    subquery = replace(
        query, columns=(key_column,), distinct=True, limit=limit, offset=offset
    )
    # Strip any row-level limit from the outer query: the record bound lives
    # in the subquery, and a leftover outer LIMIT would count raw facet/join
    # rows -- the truncation bug this planner exists to prevent.
    outer = replace(query, limit=None, offset=0)
    return outer.in_subquery(key_column, subquery)


@dataclass(frozen=True)
class UpdatePlan:
    """A set-oriented ``UPDATE table SET values WHERE where`` description.

    The write analogue of a read :class:`Query`: declarative, backend-agnostic
    and executed in one statement by :meth:`Backend.execute_update`.  ``where``
    may carry an :class:`~repro.db.expr.InSubquery` (the record-key pushdown
    built by :func:`plan_update`); SQL backends render it inline, the memory
    engine materialises it under its lock.

    >>> from repro.db.expr import eq
    >>> plan = UpdatePlan("Paper", {"accepted": True}, eq("author", "ada"))
    >>> plan.tables_read()
    ('Paper',)
    """

    table: str
    values: Dict[str, Any]
    where: Optional[Expression] = None

    def tables_read(self) -> Tuple[str, ...]:
        """Every table this write *reads*: the target plus subselect tables."""
        return _write_tables_read(self.table, self.where)

    def explain(self) -> Dict[str, Any]:
        """Plan shape and rendered SQL of this write, without executing.

        >>> from repro.db.expr import eq
        >>> UpdatePlan("Paper", {"ok": True}, eq("ok", False)).explain()["sql"]
        'UPDATE "Paper" SET "ok" = ? WHERE ok = ?'
        """
        from repro.db.sqlgen import update_to_sql

        sql, params = update_to_sql(self)
        pushdown = self.where is not None and bool(self.where.subqueries())
        return {
            "plan": "update-pushdown" if pushdown else "update",
            "sql": sql,
            "params": list(params),
            "tables": list(self.tables_read()),
        }


@dataclass(frozen=True)
class DeletePlan:
    """A set-oriented ``DELETE FROM table WHERE where`` description.

    >>> from repro.db.expr import eq
    >>> DeletePlan("Paper", eq("accepted", False)).table
    'Paper'
    """

    table: str
    where: Optional[Expression] = None

    def tables_read(self) -> Tuple[str, ...]:
        """Every table this write *reads*: the target plus subselect tables."""
        return _write_tables_read(self.table, self.where)

    def explain(self) -> Dict[str, Any]:
        """Plan shape and rendered SQL of this write, without executing.

        >>> DeletePlan("Paper").explain()["plan"]
        'delete'
        """
        from repro.db.sqlgen import delete_to_sql

        sql, params = delete_to_sql(self)
        pushdown = self.where is not None and bool(self.where.subqueries())
        return {
            "plan": "delete-pushdown" if pushdown else "delete",
            "sql": sql,
            "params": list(params),
            "tables": list(self.tables_read()),
        }


def _write_tables_read(table: str, where: Optional[Expression]) -> Tuple[str, ...]:
    tables = [table]
    if where is not None:
        for subquery in where.subqueries():
            tables.extend(subquery.tables_read())
    return tuple(dict.fromkeys(tables))


def plan_keys(query: "Query", key_column: str) -> "Query":
    """Project a read query to its DISTINCT record keys.

    Keeps the query's filters and joins, selects only ``key_column``
    (qualified under joins) and deduplicates.  A *bounded* query keeps its
    ordering and LIMIT/OFFSET -- the same subquery shape
    :func:`plan_bounded` nests -- so the keys are exactly the records the
    bound selects; an unbounded query drops the ordering (row order cannot
    change a key set).

    This is both the subselect nested by :func:`plan_update` /
    :func:`plan_delete` and the one-statement "collect matching jids"
    projection the FORM's slow write path runs instead of unmarshalling
    full instances.

    >>> from repro.db.expr import eq
    >>> from repro.db.sqlgen import query_to_sql
    >>> q = Query("Paper").filter(eq("accepted", True)).ordered_by("title")
    >>> query_to_sql(plan_keys(q, "jid"))[0]
    'SELECT DISTINCT "jid" FROM "Paper" WHERE accepted = ?'
    >>> query_to_sql(plan_keys(q.limited(5), "jid"))[0]
    'SELECT "jid" FROM "Paper" WHERE accepted = ? GROUP BY "jid" ORDER BY (MIN("title") IS NULL) ASC, MIN("title") ASC, "jid" ASC LIMIT 5'
    """
    if "." not in key_column and query.is_join():
        key_column = f"{query.table}.{key_column}"
    bounded = query.limit is not None or bool(query.offset)
    return replace(
        query,
        columns=(key_column,),
        distinct=True,
        order_by=query.order_by if bounded else (),
        aggregate=None,
        aggregates=(),
        group_by=(),
    )


def _plan_write_where(query: "Query", key_column: Optional[str]) -> Optional[Expression]:
    """The WHERE clause of a set-oriented write compiled from a read query.

    With a ``key_column`` the filters are pushed through the same
    ``key IN (SELECT DISTINCT key ...)`` machinery as :func:`plan_bounded`:
    the write then affects *whole records* -- every row sharing a matched
    key -- which is what faceted tables need (a filter may match only one
    facet row of a record, but the write must cover all of them), and the
    only way a joined or bounded filter can reach a single-table
    UPDATE/DELETE at all.  Without one, the filters apply row-by-row
    (the baseline ORM's single-row-per-record case).
    """
    from repro.db.expr import ColumnRef, InSubquery

    bounded = query.limit is not None or bool(query.offset)
    if key_column is None:
        if query.is_join() or bounded:
            raise ValueError(
                "joined or bounded write plans need a key column to push "
                "their filters through a subselect"
            )
        return query.where
    if query.where is None and not query.is_join() and not bounded:
        # Every row of every record matches: the subselect would be a no-op.
        return None
    subquery = plan_keys(query, key_column)
    return InSubquery(ColumnRef(key_column.rsplit(".", 1)[-1]), subquery)


def plan_update(
    query: "Query", values: Dict[str, Any], key_column: Optional[str] = None
) -> UpdatePlan:
    """Compile a filtered read query to a single-statement UPDATE plan.

    ``key_column`` is the record identity (``jid`` for the FORM, ``id`` for
    the baseline ORM): when given, the write targets every row of every
    record with *any* matching row, via the key subselect; joins, ordering
    and LIMIT/OFFSET on ``query`` are honoured inside the subselect exactly
    as in :func:`plan_bounded`.

    >>> from repro.db.expr import eq
    >>> from repro.db.sqlgen import update_to_sql
    >>> plan = plan_update(
    ...     Query("Paper").filter(eq("accepted", True)), {"decided": True}, "jid")
    >>> statement, params = update_to_sql(plan)
    >>> print(statement)
    UPDATE "Paper" SET "decided" = ? WHERE jid IN (SELECT DISTINCT "jid" FROM "Paper" WHERE accepted = ?)
    >>> params
    [True, True]
    >>> plan_update(Query("Paper"), {})
    Traceback (most recent call last):
        ...
    ValueError: plan_update needs at least one column assignment
    """
    if not values:
        # An empty SET list is invalid SQL; reject it here so both backends
        # agree instead of SQLite raising where the memory engine "succeeds".
        raise ValueError("plan_update needs at least one column assignment")
    return UpdatePlan(query.table, dict(values), _plan_write_where(query, key_column))


def plan_delete(query: "Query", key_column: Optional[str] = None) -> DeletePlan:
    """Compile a filtered read query to a single-statement DELETE plan.

    Mirrors :func:`plan_update`: with a ``key_column`` the delete removes
    every row of every matching record in one statement -- the set-oriented
    replacement for the fetch-then-delete-per-record loop.

    >>> from repro.db.expr import eq
    >>> from repro.db.sqlgen import delete_to_sql
    >>> plan = plan_delete(Query("Paper").filter(eq("withdrawn", True)), "jid")
    >>> print(delete_to_sql(plan)[0])
    DELETE FROM "Paper" WHERE jid IN (SELECT DISTINCT "jid" FROM "Paper" WHERE withdrawn = ?)
    >>> plan_delete(Query("Paper")).where is None   # unfiltered: no subselect
    True
    """
    return DeletePlan(query.table, _plan_write_where(query, key_column))


def plan_scalar_aggregate(
    query: "Query", function: str, column: str = "*", distinct: bool = False
) -> "Query":
    """Compile a filtered query to a single scalar-aggregate statement.

    Strips the row-shaping clauses (projection, DISTINCT, ordering,
    LIMIT/OFFSET) that are meaningless under a scalar aggregate, keeps the
    filters and joins, and qualifies a bare ``column`` with the base table
    under joins (both joined tables may carry the column).

    >>> from repro.db.sqlgen import query_to_sql
    >>> q = plan_scalar_aggregate(Query("Paper").ordered_by("title"), "MAX", "score")
    >>> query_to_sql(q)[0]
    'SELECT MAX("score") FROM "Paper"'
    """
    if column != "*" and "." not in column and query.is_join():
        column = f"{query.table}.{column}"
    return replace(
        query,
        columns=None,
        distinct=False,
        order_by=(),
        limit=None,
        offset=0,
        aggregate=Aggregate(function, column, distinct),
        aggregates=(),
        group_by=(),
    )


def plan_count_distinct(query: "Query", key_column: str) -> "Query":
    """Compile a record count to one ``COUNT(DISTINCT key)`` statement.

    The record-counting analogue of :func:`plan_bounded`: a raw
    ``COUNT(*)`` counts *rows*, but one logical record spans several rows
    (one per facet for the FORM, one per join match for the baseline), so
    the count ranges over DISTINCT record keys instead.

    >>> from repro.db.sqlgen import query_to_sql
    >>> query_to_sql(plan_count_distinct(Query("Paper"), "jid"))[0]
    'SELECT COUNT(DISTINCT "jid") FROM "Paper"'
    """
    return plan_scalar_aggregate(query, "COUNT", key_column, distinct=True)


def plan_exists(query: "Query") -> "Query":
    """Compile a membership probe to one ``SELECT EXISTS(...)`` statement.

    The database answers "does any row match?" without returning rows; the
    in-memory engine evaluates it with the same early exit.

    >>> from repro.db.expr import eq
    >>> from repro.db.sqlgen import query_to_sql
    >>> query_to_sql(plan_exists(Query("Paper").filter(eq("accepted", True))))[0]
    'SELECT EXISTS(SELECT 1 FROM "Paper" WHERE accepted = ?)'
    """
    return plan_scalar_aggregate(query, "EXISTS")


def plan_aggregate(
    query: "Query",
    group_columns: Sequence[str],
    aggregates: Sequence[Aggregate],
) -> "Query":
    """Compile a filtered query to one grouped-aggregate statement.

    Keeps the query's filters and joins, drops row shaping (projection,
    DISTINCT, ordering, LIMIT/OFFSET), and selects ``aggregates`` per
    group of ``group_columns`` -- the single statement behind the FORM's
    aggregates-under-facets: grouping by the ``jvars`` columns partitions
    matching rows by label assignment, and the per-partition aggregates
    merge into one faceted result (see ``repro.form.aggregates``).

    Bare group columns are qualified with the base table under joins, like
    every other column resolution in this package.

    >>> from repro.db.sqlgen import query_to_sql
    >>> q = plan_aggregate(Query("Paper"), ["jvars"], [Aggregate("COUNT")])
    >>> query_to_sql(q)[0]
    'SELECT "jvars" AS "jvars", COUNT(*) AS "COUNT(*)" FROM "Paper" GROUP BY "jvars"'
    """
    qualified = []
    for name in group_columns:
        if "." not in name and query.is_join():
            name = f"{query.table}.{name}"
        qualified.append(name)
    return replace(
        query,
        columns=None,
        distinct=False,
        order_by=(),
        limit=None,
        offset=0,
        aggregate=None,
        aggregates=tuple(aggregates),
        group_by=tuple(qualified),
    )


def apply_order(rows: List[Dict[str, Any]], order_by: Sequence[Order]) -> List[Dict[str, Any]]:
    """Sort rows by a sequence of order terms (stable, None-safe)."""
    result = list(rows)
    for order in reversed(order_by):
        def key(row: Dict[str, Any], column: str = order.column) -> Tuple[int, Any]:
            value = _qualified_get(row, column)
            return (value is None, value)

        result.sort(key=key, reverse=not order.ascending)
    return result


def apply_limit(
    rows: List[Dict[str, Any]], limit: Optional[int], offset: int
) -> List[Dict[str, Any]]:
    """Apply LIMIT/OFFSET to an ordered row list.

    >>> apply_limit([1, 2, 3, 4], 2, 1)
    [2, 3]
    """
    if offset:
        rows = rows[offset:]
    if limit is not None:
        rows = rows[:limit]
    return rows


def row_key(row: Dict[str, Any]) -> Any:
    """A hashable identity for one result row (used by SELECT DISTINCT)."""
    # Single-column rows are the hot shape (the record-key subselects of the
    # bounded and write pushdowns dedupe millions of {key: value} dicts);
    # sorting a one-item view is pure overhead.
    items = row.items()
    key = tuple(items) if len(row) < 2 else tuple(sorted(items, key=lambda item: item[0]))
    try:
        hash(key)
    except TypeError:  # unhashable values: fall back to their repr
        return repr(key)
    return key


def dedupe_rows(
    rows: Iterable[Dict[str, Any]], stop_after: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Drop duplicate rows, keeping first appearance (SELECT DISTINCT).

    Runs after projection and ordering, so for a distinct-limited subquery
    the kept order matches SQL: dedupe first, then LIMIT/OFFSET.
    ``stop_after`` stops consuming ``rows`` once that many distinct rows are
    collected -- the early exit behind the bounded-query pushdown staying
    flat as tables grow on the in-memory backend.

    >>> dedupe_rows([{"jid": 1}, {"jid": 2}, {"jid": 1}])
    [{'jid': 1}, {'jid': 2}]
    >>> dedupe_rows([{"jid": 1}], stop_after=0)
    []
    """
    if stop_after is not None and stop_after <= 0:
        return []
    seen = set()
    unique: List[Dict[str, Any]] = []
    for row in rows:
        key = row_key(row)
        if key in seen:
            continue
        seen.add(key)
        unique.append(row)
        if stop_after is not None and len(unique) >= stop_after:
            break
    return unique


def limit_by_key(items: List[Any], key, limit: Optional[int]) -> List[Any]:
    """Keep every item of the first ``limit`` distinct keys, in order.

    The record-counting limit shared by both ORMs: the FORM limits facet
    rows per jid, the baseline limits joined rows per pk.  All items of a
    kept key are retained wherever they appear, so a limited result can
    never truncate one record to a subset of its rows.
    """
    if limit is None:
        return items
    kept: Dict[Any, None] = {}
    limited: List[Any] = []
    for item in items:
        item_key = key(item)
        if item_key not in kept:
            if len(kept) >= limit:
                continue
            kept[item_key] = None
        limited.append(item)
    return limited


def compute_aggregate(rows: List[Dict[str, Any]], aggregate: Aggregate) -> Any:
    """Evaluate an aggregate over already-filtered rows.

    Follows SQL's NULL rules exactly (the memory engine must agree with
    SQLite): NULL values are skipped, ``COUNT`` of none is 0, and SUM, AVG,
    MIN and MAX over an empty or all-NULL column are NULL (``None``).

    >>> compute_aggregate([{"v": None}, {"v": 2}], Aggregate("COUNT", "v"))
    1
    >>> compute_aggregate([{"v": None}], Aggregate("SUM", "v")) is None
    True
    >>> compute_aggregate([{"v": 2}, {"v": 2}], Aggregate("SUM", "v", distinct=True))
    2
    """
    function = aggregate.function.upper()
    if function == "EXISTS":
        return bool(rows)
    if function == "COUNT" and aggregate.column == "*":
        return len(rows)
    values = [
        value
        for row in rows
        if (value := _qualified_get(row, aggregate.column)) is not None
    ]
    if aggregate.distinct:
        try:
            values = list(dict.fromkeys(values))
        except TypeError:  # unhashable values: quadratic fallback
            values = [v for i, v in enumerate(values) if v not in values[:i]]
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "SUM":
        return sum(values)
    if function == "AVG":
        return sum(values) / len(values)
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    raise ValueError(f"unknown aggregate function {function!r}")  # pragma: no cover


def _qualified_get(row: Dict[str, Any], column: str) -> Any:
    if column in row:
        return row[column]
    if "." in column:
        bare = column.rsplit(".", 1)[-1]
        if bare in row:
            return row[bare]
    else:
        for key, value in row.items():
            if key.endswith("." + column):
                return value
    return None
