"""Relational database substrate.

The faceted object-relational mapping stores faceted values in *ordinary*
relational tables augmented with ``jid``/``jvars`` meta-data columns, and the
paper stresses that this works with existing relational database
implementations.  This package provides two interchangeable backends behind a
single interface:

* :class:`repro.db.memory_backend.MemoryBackend` -- a pure-Python relational
  engine (tables, typed schemas, where-expressions, joins, ordering,
  aggregation, secondary indexes);
* :class:`repro.db.sqlite_backend.SqliteBackend` -- the same interface on top
  of the standard library's ``sqlite3`` (a real relational database).

:mod:`repro.db.sqlgen` renders queries to SQL text, reproducing the Table 2
translation between Django-style and Jacqueline-style queries.
"""

from repro.db.schema import Column, ColumnType, IndexSpec, TableSchema, index_name
from repro.db.expr import (
    AndExpr,
    Between,
    ColumnRef,
    Comparison,
    ExistsSubquery,
    Expression,
    InList,
    InSubquery,
    Like,
    Literal,
    NotExpr,
    OrExpr,
    between,
    col,
    exists_subquery,
    gt,
    gte,
    in_subquery,
    like,
    lit,
    lt,
    lte,
    prefix_range,
    string_successor,
)
from repro.db.planner import (
    AccessPath,
    PlanChoice,
    TableStatistics,
    choose_plan,
)
from repro.db.query import (
    Aggregate,
    DeletePlan,
    Join,
    Order,
    Query,
    UpdatePlan,
    plan_aggregate,
    plan_bounded,
    plan_count_distinct,
    plan_delete,
    plan_exists,
    plan_keys,
    plan_scalar_aggregate,
    plan_update,
)
from repro.db.table import Table
from repro.db.engine import Database
from repro.db.backend import Backend
from repro.db.memory_backend import MemoryBackend
from repro.db.observe import StatementEvent, StatementLog
from repro.db.sqlite_backend import SqliteBackend
from repro.db.sqlgen import delete_to_sql, query_to_sql, schema_to_sql, update_to_sql

__all__ = [
    "Column",
    "ColumnType",
    "IndexSpec",
    "TableSchema",
    "index_name",
    "Expression",
    "ColumnRef",
    "Literal",
    "Comparison",
    "AndExpr",
    "OrExpr",
    "NotExpr",
    "InList",
    "Between",
    "Like",
    "col",
    "lit",
    "gt",
    "gte",
    "lt",
    "lte",
    "between",
    "like",
    "prefix_range",
    "string_successor",
    "AccessPath",
    "PlanChoice",
    "TableStatistics",
    "choose_plan",
    "Query",
    "Join",
    "Order",
    "Aggregate",
    "InSubquery",
    "ExistsSubquery",
    "in_subquery",
    "exists_subquery",
    "UpdatePlan",
    "DeletePlan",
    "plan_aggregate",
    "plan_bounded",
    "plan_count_distinct",
    "plan_delete",
    "plan_exists",
    "plan_keys",
    "plan_scalar_aggregate",
    "plan_update",
    "Table",
    "Database",
    "Backend",
    "MemoryBackend",
    "SqliteBackend",
    "StatementEvent",
    "StatementLog",
    "query_to_sql",
    "schema_to_sql",
    "update_to_sql",
    "delete_to_sql",
]
