"""A pure-Python relational backend built on :class:`repro.db.table.Table`.

Thread safety: all table access -- reads included -- serialises on one
coarse re-entrant lock, so request worker threads can share a backend
without tearing the row dicts or index sets mid-scan.  Invalidation events
publish after the lock is released, keeping subscriber callbacks free to
touch the backend re-entrantly.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.db.backend import Backend
from repro.db.expr import Expression
from repro.db.query import Query, apply_limit, apply_order, compute_aggregate
from repro.db.schema import SchemaError, TableSchema
from repro.db.table import Table


class MemoryBackend(Backend):
    """Keeps every table in memory; useful for tests and fast benchmarks."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._lock = threading.RLock()

    # -- schema management ---------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        with self._lock:
            if schema.name in self._tables:
                return
            self._tables[schema.name] = Table(schema)
        self._publish_schema_change()

    def drop_table(self, name: str) -> None:
        with self._lock:
            dropped = self._tables.pop(name, None) is not None
        if dropped:
            self._publish_schema_change(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def schema(self, name: str) -> TableSchema:
        return self._table(name).schema

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise SchemaError(f"no such table {name!r}") from exc

    # -- data manipulation -------------------------------------------------------------

    def insert(self, table: str, values: Dict[str, Any]) -> int:
        with self._lock:
            pk = self._table(table).insert(values)
        self._publish_write(table)
        return pk

    def insert_many(self, table: str, rows) -> List[int]:
        """Batch insert: atomic, with one invalidation event for the batch.

        A mid-batch failure removes the rows already inserted (mirroring the
        SQLite backend's transaction rollback), so a record expanded into
        several facet rows is either fully present or fully absent.
        """
        with self._lock:
            target = self._table(table)
            pks: List[int] = []
            try:
                for row in rows:
                    pks.append(target.insert(row))
            except BaseException:
                for pk in pks:
                    target.remove(pk)
                raise
        if pks:
            self._publish_write(table)
        return pks

    def update(self, table: str, where: Optional[Expression], values: Dict[str, Any]) -> int:
        with self._lock:
            count = self._table(table).update(where, values)
        if count:
            self._publish_write(table)
        return count

    def delete(self, table: str, where: Optional[Expression]) -> int:
        with self._lock:
            count = self._table(table).delete(where)
        if count:
            self._publish_write(table)
        return count

    def replace_rows(self, table: str, where: Optional[Expression], rows) -> List[int]:
        """Swap matching rows for ``rows`` under one lock hold, atomically.

        Readers serialise on the same lock, so they observe the table before
        or after the swap, never the emptied middle state.  On any insert
        failure the swap is rolled back (inserted rows removed, deleted rows
        restored), matching the SQLite backend's transaction semantics.
        """
        with self._lock:
            target = self._table(table)
            replaced = target.scan(where)
            target.delete(where)
            pks: List[int] = []
            try:
                for row in rows:
                    pks.append(target.insert(row))
            except BaseException:
                for pk in pks:
                    target.remove(pk)
                for old_row in replaced:
                    target.insert(old_row)
                raise
        if replaced or pks:
            self._publish_write(table)
        return pks

    # -- queries --------------------------------------------------------------------------

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._join_rows(query)
            if query.where is not None:
                rows = [row for row in rows if query.where.evaluate(row)]
        rows = apply_order(rows, query.order_by)
        rows = apply_limit(rows, query.limit, query.offset)
        columns = query.qualified_columns() if query.is_join() else query.columns
        if columns:
            rows = [self._pick_columns(row, columns) for row in rows]
        return rows

    def aggregate(self, query: Query) -> Any:
        if query.aggregate is None:
            raise ValueError("aggregate() requires a query with an aggregate")
        with self._lock:
            rows = self._join_rows(query)
            if query.where is not None:
                rows = [row for row in rows if query.where.evaluate(row)]
        if query.group_by:
            grouped: Dict[tuple, List[Dict[str, Any]]] = {}
            for row in rows:
                key = tuple(row.get(column) for column in query.group_by)
                grouped.setdefault(key, []).append(row)
            return {
                key: compute_aggregate(group, query.aggregate)
                for key, group in grouped.items()
            }
        return compute_aggregate(rows, query.aggregate)

    def clear(self) -> None:
        with self._lock:
            for table in self._tables.values():
                table.clear()
        self._publish_clear()

    # -- internals ---------------------------------------------------------------------------

    def _join_rows(self, query: Query) -> List[Dict[str, Any]]:
        """Materialise the FROM/JOIN part of a query.

        Joined rows use qualified keys (``Table.column``); single-table
        queries keep bare column names, matching the SQLite backend.
        """
        base = self._table(query.table)
        if not query.is_join():
            return base.rows()
        rows = [self._qualify(query.table, row) for row in base.rows()]
        for join in query.joins:
            other = self._table(join.table)
            other_rows = [self._qualify(join.table, row) for row in other.rows()]
            left_key = self._qualify_name(query.table, join.left_column)
            right_key = self._qualify_name(join.table, join.right_column)
            index: Dict[Any, List[Dict[str, Any]]] = {}
            for other_row in other_rows:
                index.setdefault(other_row.get(right_key), []).append(other_row)
            joined: List[Dict[str, Any]] = []
            for row in rows:
                for match in index.get(row.get(left_key), []):
                    combined = dict(row)
                    combined.update(match)
                    joined.append(combined)
            rows = joined
        return rows

    @staticmethod
    def _qualify(table: str, row: Dict[str, Any]) -> Dict[str, Any]:
        return {f"{table}.{name}": value for name, value in row.items()}

    @staticmethod
    def _qualify_name(table: str, column: str) -> str:
        return column if "." in column else f"{table}.{column}"

    @staticmethod
    def _pick_columns(row: Dict[str, Any], columns) -> Dict[str, Any]:
        picked = {}
        for name in columns:
            if name in row:
                picked[name] = row[name]
            elif "." in name and name.rsplit(".", 1)[-1] in row:
                picked[name] = row[name.rsplit(".", 1)[-1]]
            else:
                picked[name] = None
        return picked
