"""A pure-Python relational backend built on :class:`repro.db.table.Table`.

Thread safety: all table access -- reads included -- serialises on one
coarse re-entrant lock, so request worker threads can share a backend
without tearing the row dicts or index sets mid-scan.  Invalidation events
publish after the lock is released, keeping subscriber callbacks free to
touch the backend re-entrantly.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.db.backend import Backend
from repro.db.expr import Expression, resolve_subqueries, subquery_values
from repro.db.observe import insert_summary, replace_summary
from repro.db.query import (
    DeletePlan,
    Query,
    UpdatePlan,
    apply_limit,
    apply_order,
    compute_aggregate,
    dedupe_rows,
    order_outside_selection,
    row_key,
)
from repro.db.schema import SchemaError, TableSchema
from repro.db.sqlgen import delete_to_sql, query_to_sql, update_to_sql
from repro.db.table import Table


class MemoryBackend(Backend):
    """Keeps every table in memory; useful for tests and fast benchmarks.

    ``use_indexes=False`` forces every read onto the full-scan path --
    the oracle configuration plan-parity fuzzing compares against; rendered
    SQL and all other observables are unchanged by the flag.
    """

    def __init__(self, use_indexes: bool = True) -> None:
        self._tables: Dict[str, Table] = {}
        self._lock = threading.RLock()
        self._use_indexes = use_indexes

    # -- schema management ---------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        with self._lock:
            if schema.name in self._tables:
                return
            table = Table(schema)
            table.use_indexes = self._use_indexes
            self._tables[schema.name] = table
        # A freshly created in-memory table is empty, hence facet-free.
        self._facet_tables[schema.name] = False
        self._publish_schema_change()

    def drop_table(self, name: str) -> None:
        with self._lock:
            dropped = self._tables.pop(name, None) is not None
        if dropped:
            self._publish_schema_change(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def schema(self, name: str) -> TableSchema:
        return self._table(name).schema

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise SchemaError(f"no such table {name!r}") from exc

    # -- data manipulation -------------------------------------------------------------

    def insert(self, table: str, values: Dict[str, Any]) -> int:
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        with self._lock:
            pk = self._table(table).insert(values)
        if observing:
            self._notify_statement(
                "INSERT", insert_summary(table, 1), (), 1,
                time.perf_counter() - started,
            )
        self._note_facet_write(table, (values,))
        self._publish_write(table)
        return pk

    def insert_many(self, table: str, rows) -> List[int]:
        """Batch insert: atomic, with one invalidation event for the batch.

        A mid-batch failure removes the rows already inserted (mirroring the
        SQLite backend's transaction rollback), so a record expanded into
        several facet rows is either fully present or fully absent.
        """
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        written: List[Dict[str, Any]] = []
        with self._lock:
            target = self._table(table)
            pks: List[int] = []
            try:
                for row in rows:
                    written.append(row)
                    pks.append(target.insert(row))
            except BaseException:
                for pk in pks:
                    target.remove(pk)
                raise
        if observing:
            self._notify_statement(
                "INSERT", insert_summary(table, len(pks)), (), len(pks),
                time.perf_counter() - started,
            )
        self._note_facet_write(table, written)
        if pks:
            self._publish_write(table)
        return pks

    def update(self, table: str, where: Optional[Expression], values: Dict[str, Any]) -> int:
        observing = self._observing()
        if observing:
            # Render the statement this write *would* be as SQL (subselects
            # inline, exactly as the SQLite backend sends it) before the
            # memory engine materialises them.
            statement, params = update_to_sql(UpdatePlan(table, values, where))
            started = time.perf_counter()
        with self._lock:
            count = self._table(table).update(self._resolve_expression(where), values)
        if observing:
            self._notify_statement(
                "UPDATE", statement, params, count, time.perf_counter() - started
            )
        if count:
            self._note_facet_write(table, (values,))
            self._publish_write(table)
        return count

    def delete(self, table: str, where: Optional[Expression]) -> int:
        observing = self._observing()
        if observing:
            statement, params = delete_to_sql(DeletePlan(table, where))
            started = time.perf_counter()
        with self._lock:
            count = self._table(table).delete(self._resolve_expression(where))
        if observing:
            self._notify_statement(
                "DELETE", statement, params, count, time.perf_counter() - started
            )
        if count:
            self._publish_write(table)
        return count

    def execute_update(self, plan) -> int:
        """One logical write for an :class:`~repro.db.query.UpdatePlan`.

        The plan's record-key subselect materialises and the matching rows
        mutate under a single hold of the backend lock (``update`` resolves
        subqueries in :meth:`_resolve_expression` before scanning), so a
        concurrent reader observes the table before or after the whole
        set-oriented write -- mirroring the one statement SQLite executes.
        The resolved ``key IN (...)`` list is narrowed by the table's hash
        index (see :meth:`Table.candidate_rows`), keeping the mutation
        O(matches) instead of O(table).
        """
        return self.update(plan.table, plan.where, plan.values)

    def execute_delete(self, plan) -> int:
        """One logical write for a :class:`~repro.db.query.DeletePlan`.

        Same contract as :meth:`execute_update`: subselect resolution,
        index narrowing and row removal share one lock hold and publish a
        single invalidation event.
        """
        return self.delete(plan.table, plan.where)

    def replace_rows(self, table: str, where: Optional[Expression], rows) -> List[int]:
        """Swap matching rows for ``rows`` under one lock hold, atomically.

        Readers serialise on the same lock, so they observe the table before
        or after the swap, never the emptied middle state.  On any insert
        failure the swap is rolled back (inserted rows removed, deleted rows
        restored), matching the SQLite backend's transaction semantics.
        """
        observing = self._observing()
        started = time.perf_counter() if observing else 0.0
        written: List[Dict[str, Any]] = []
        with self._lock:
            target = self._table(table)
            where = self._resolve_expression(where)
            replaced = target.scan(where)
            target.delete(where)
            pks: List[int] = []
            try:
                for row in rows:
                    written.append(row)
                    pks.append(target.insert(row))
            except BaseException:
                for pk in pks:
                    target.remove(pk)
                for old_row in replaced:
                    target.insert(old_row)
                raise
        if observing:
            self._notify_statement(
                "REPLACE", replace_summary(table, len(replaced), len(pks)), (),
                len(replaced) + len(pks), time.perf_counter() - started,
            )
        self._note_facet_write(table, written)
        if replaced or pks:
            self._publish_write(table)
        return pks

    # -- queries --------------------------------------------------------------------------

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        if not self._observing():
            return self._execute_query(query)
        # Render the SQL this read *would* be (subselects inline) before the
        # engine materialises them, so both backends report identical text.
        statement, params = query_to_sql(query, qualify=query.is_join())
        started = time.perf_counter()
        rows = self._execute_query(query)
        self._notify_statement(
            "SELECT", statement, params, len(rows), time.perf_counter() - started
        )
        return rows

    def aggregate(self, query: Query) -> Any:
        self._check_aggregate(query)
        if query.group_by:
            # Reported by execute() on the rewritten grouped selection --
            # exactly one SELECT event, like the SQLite backend's pushdown.
            return self._grouped_aggregate_dict(query)
        if not self._observing():
            return self._aggregate_query(query)
        statement, params = query_to_sql(query, qualify=query.is_join())
        started = time.perf_counter()
        value = self._aggregate_query(query)
        self._notify_statement(
            "SELECT", statement, params, 1, time.perf_counter() - started
        )
        return value

    def _execute_query(self, query: Query) -> List[Dict[str, Any]]:
        if query.aggregates:
            return self._aggregate_rows(query)
        columns = query.qualified_columns() if query.is_join() else query.columns
        with self._lock:
            where = self._resolved_where(query)
            if query.distinct and not query.order_by:
                # Unordered distinct (the record-key subquery of the bounded
                # and write pushdowns): stream filter -> project -> dedupe,
                # with an early exit at limit+offset distinct rows when
                # bounded.  Projection builds fresh dicts, so the scan reads
                # the live rows without per-row copies; only an unprojected
                # distinct must copy (its rows escape the lock verbatim).
                source = self._source_rows(query, where, copy=not columns)
                predicate = None if where is None else where.compile()
                matching = (
                    row for row in source if predicate is None or predicate(row)
                )
                projected = (
                    self._pick_columns(row, columns) if columns else row
                    for row in matching
                )
                stop_after = (
                    query.limit + query.offset if query.limit is not None else None
                )
                rows = dedupe_rows(projected, stop_after=stop_after)
                return rows[query.offset:] if query.offset else rows
            if not query.is_join() and not query.distinct and query.order_by:
                # Ask the cost model whether an ordered index can serve the
                # ORDER BY directly: rows then stream out pre-sorted with an
                # early exit at offset+limit matches, no sort pass at all.
                table = self._table(query.table)
                choice = table.plan(where, query.order_by, query.limit, query.offset)
                table.last_plan = choice
                if choice.chosen.serves_order:
                    rows = self._serve_in_order(table, choice.chosen, where, query)
                    if columns:
                        rows = [self._pick_columns(row, columns) for row in rows]
                    return rows
            source = self._source_rows(query, where)
            rows = source
            if where is not None:
                predicate = where.compile()
                rows = [row for row in rows if predicate(row)]
        if order_outside_selection(query):
            # Ordered distinct over non-selected columns: evaluate in the
            # same grouped MIN/MAX form sqlgen renders, so both backends
            # keep identical keys under a LIMIT (see order_outside_selection).
            rows = self._grouped_distinct(rows, query, columns)
            return apply_limit(rows, query.limit, query.offset)
        rows = apply_order(rows, query.order_by)
        if query.distinct:
            # SQL semantics: project, deduplicate, then LIMIT/OFFSET -- the
            # order a distinct-limited pushdown subquery depends on.
            if columns:
                rows = [self._pick_columns(row, columns) for row in rows]
            stop_after = (
                query.limit + query.offset if query.limit is not None else None
            )
            rows = dedupe_rows(rows, stop_after=stop_after)
            rows = apply_limit(rows, query.limit, query.offset)
        else:
            rows = apply_limit(rows, query.limit, query.offset)
            if columns:
                rows = [self._pick_columns(row, columns) for row in rows]
        return rows

    def _aggregate_query(self, query: Query) -> Any:
        if query.aggregate.function.upper() == "EXISTS":
            # Early exit: stop scanning once enough matches are seen, like
            # the database behind SELECT EXISTS(...).  LIMIT/OFFSET stay
            # inside the SQL subselect, so they must be honoured here too:
            # the window is non-empty iff more than ``offset`` rows match
            # (and the limit allows at least one row through).
            if query.limit is not None and query.limit <= 0:
                return False
            with self._lock:
                where = self._resolved_where(query)
                source = self._source_rows(query, where, copy=False)
                predicate = None if where is None else where.compile()
                needed = query.offset + 1
                for row in source:
                    if predicate is None or predicate(row):
                        needed -= 1
                        if needed == 0:
                            return True
                return False
        if query.group_by:
            return self._grouped_aggregate_dict(query)
        # Scalar aggregates never return row dicts, so they read the live
        # rows and compute entirely under the lock -- no per-row copies.
        with self._lock:
            where = self._resolved_where(query)
            rows = self._source_rows(query, where, copy=False)
            if where is not None:
                predicate = where.compile()
                rows = [row for row in rows if predicate(row)]
            return compute_aggregate(rows, query.aggregate)

    def _aggregate_rows(self, query: Query) -> List[Dict[str, Any]]:
        """Grouped aggregate selections: one result row per group.

        Result rows are keyed by the group columns (exactly as spelled in
        ``query.group_by``) plus each aggregate's ``result_key()`` --
        matching the aliases the SQL generator emits, so both backends
        return identical rows.  With no GROUP BY the whole match set is one
        group (SQL semantics: always exactly one result row).
        """
        from repro.db.query import _qualified_get

        # Grouped aggregates read live rows and reduce entirely under the
        # lock (result rows are fresh dicts, so nothing live escapes).
        with self._lock:
            where = self._resolved_where(query)
            rows = self._source_rows(query, where, copy=False)
            if where is not None:
                predicate = where.compile()
                rows = [row for row in rows if predicate(row)]
            grouped: Dict[tuple, List[Dict[str, Any]]] = {}
            if len(query.group_by) == 1:
                # Hot path (the FORM groups by one jvars column): scalar
                # keys, no per-row tuple construction.
                column = query.group_by[0]
                keyed: Dict[Any, List[Dict[str, Any]]] = {}
                for row in rows:
                    key = row[column] if column in row else _qualified_get(row, column)
                    keyed.setdefault(key, []).append(row)
                grouped = {(key,): group for key, group in keyed.items()}
            else:
                for row in rows:
                    key = tuple(
                        _qualified_get(row, column) for column in query.group_by
                    )
                    grouped.setdefault(key, []).append(row)
            if not query.group_by and not grouped:
                grouped[()] = []
            result = []
            for key, group in grouped.items():
                out: Dict[str, Any] = dict(zip(query.group_by, key))
                for aggregate in query.aggregates:
                    out[aggregate.result_key()] = compute_aggregate(group, aggregate)
                result.append(out)
        result = apply_order(result, query.order_by)
        return apply_limit(result, query.limit, query.offset)

    def _serve_in_order(self, table: Table, path, where, query: Query):
        """Stream an order-serving access path: filter, stop early, copy.

        The path hands back candidates already in ORDER BY order (the
        planner only claims ``serves_order`` when the index's order is
        scan-identical, NULL placement and tie-breaks included), so the
        first ``offset + limit`` matches *are* the result window.
        """
        if query.limit is not None and query.limit <= 0:
            return []
        rows, exact = table.rows_for_path(path, copy=False)
        stop = None if query.limit is None else query.limit + query.offset
        predicate = None if where is None else where.compile()
        matched: List[Dict[str, Any]] = []
        for row in rows:
            if exact or predicate is None or predicate(row):
                matched.append(dict(row))
                if stop is not None and len(matched) >= stop:
                    break
        return matched[query.offset:] if query.offset else matched

    def _source_rows(
        self, query: Query, where, copy: bool = True
    ) -> List[Dict[str, Any]]:
        """The FROM/JOIN row set, narrowed by a hash index when possible.

        For single-table queries an indexed equality / IN / IS NULL filter
        (e.g. the resolved ``jid IN (...)`` of a bounded pushdown) reads the
        index buckets instead of copying the whole heap -- the memory
        backend's answer to SQLite walking its B-tree index.  ``copy=False``
        hands out live row dicts for under-lock read-only consumers.
        """
        if not query.is_join():
            return self._table(query.table).candidate_rows(where, copy=copy)
        return self._join_rows(query)

    def explain_query(self, query: Query) -> Dict[str, Any]:
        """The access path the cost model chooses for this query, unexecuted.

        Single-table reads report ``chosen_plan`` / ``considered_plans``
        (the same :func:`repro.db.planner.choose_plan` call the executor
        makes, over live statistics, so explain == execution); joins scan.
        Subqueries are left unresolved -- planning must not execute them.
        """
        if query.is_join() or not self.has_table(query.table):
            return {}
        with self._lock:
            table = self._table(query.table)
            # Subqueries stay unresolved (planning never executes them): an
            # InSubquery conjunct simply contributes no probe, while sibling
            # conjuncts still plan exactly as execution will.
            choice = table.plan(
                query.where, query.order_by, query.limit, query.offset
            )
        return choice.describe()

    def last_plan(self, table: str):
        """The :class:`~repro.db.planner.PlanChoice` behind the most recent
        planned read of ``table`` (test/debug introspection)."""
        return self._table(table).last_plan

    def clear(self) -> None:
        with self._lock:
            for table in self._tables.values():
                table.clear()
        self._publish_clear()

    # -- internals ---------------------------------------------------------------------------

    def _resolved_where(self, query: Query):
        """The query's where clause with subqueries materialised."""
        return self._resolve_expression(query.where)

    def _resolve_expression(self, where: Optional[Expression]) -> Optional[Expression]:
        """Materialise any subqueries nested in a where expression.

        Used by reads *and* writes (SQLite renders subselects inline in
        UPDATE/DELETE too, and the backends must agree on every shape).
        Runs under the backend lock (re-entrant), so the subquery and the
        outer scan observe the same table snapshot -- mirroring the single
        SQL statement the SQLite backend issues.
        """
        if where is None or not where.subqueries():
            return where
        # _execute_query, not execute: the subquery is part of the *one*
        # statement being observed (SQLite renders it inline), so it must
        # not report a second event of its own.
        return resolve_subqueries(
            where,
            lambda subquery: subquery_values(self._execute_query(subquery), subquery),
        )

    def _grouped_distinct(
        self, rows: List[Dict[str, Any]], query: Query, columns
    ) -> List[Dict[str, Any]]:
        """``GROUP BY selected ORDER BY MIN/MAX(order column), selected``.

        The deterministic semantics of an ordered distinct subquery: group
        rows by their projection, order groups by the per-group MIN of each
        ascending term (MAX for descending), tie-break on the projected
        values themselves.  Matches the SQL sqlgen renders for the same
        query, so the jid sets a bounded query keeps are backend-identical.
        """
        from repro.db.query import _qualified_get

        groups: Dict[Any, list] = {}
        ordered_keys: List[Any] = []
        for row in rows:
            projected = self._pick_columns(row, columns)
            key = row_key(projected)
            entry = groups.get(key)
            if entry is None:
                entry = groups[key] = [projected, [[] for _ in query.order_by]]
                ordered_keys.append(key)
            for index, order in enumerate(query.order_by):
                entry[1][index].append(_qualified_get(row, order.column))
        items = [groups[key] for key in ordered_keys]
        # Stable sorts from the last criterion to the first: tie-break on
        # the projected values, then each order term (None-safe, mirroring
        # apply_order's convention).
        items.sort(
            key=lambda item: tuple(
                (item[0][name] is None, item[0][name]) for name in columns
            )
        )
        for index, order in reversed(list(enumerate(query.order_by))):
            def sort_key(item, index=index, order=order):
                values = [v for v in item[1][index] if v is not None]
                if not values:
                    return (True, None)
                aggregate = min(values) if order.ascending else max(values)
                return (False, aggregate)

            items.sort(key=sort_key, reverse=not order.ascending)
        return [item[0] for item in items]

    def _join_rows(self, query: Query) -> List[Dict[str, Any]]:
        """Materialise the FROM/JOIN part of a query.

        Joined rows use qualified keys (``Table.column``); single-table
        queries keep bare column names, matching the SQLite backend.
        """
        base = self._table(query.table)
        if not query.is_join():
            return base.rows()
        rows = [self._qualify(query.table, row) for row in base.rows()]
        for join in query.joins:
            other = self._table(join.table)
            other_rows = [self._qualify(join.table, row) for row in other.rows()]
            left_key = self._qualify_name(query.table, join.left_column)
            right_key = self._qualify_name(join.table, join.right_column)
            index: Dict[Any, List[Dict[str, Any]]] = {}
            for other_row in other_rows:
                index.setdefault(other_row.get(right_key), []).append(other_row)
            joined: List[Dict[str, Any]] = []
            for row in rows:
                for match in index.get(row.get(left_key), []):
                    combined = dict(row)
                    combined.update(match)
                    joined.append(combined)
            rows = joined
        return rows

    @staticmethod
    def _qualify(table: str, row: Dict[str, Any]) -> Dict[str, Any]:
        return {f"{table}.{name}": value for name, value in row.items()}

    @staticmethod
    def _qualify_name(table: str, column: str) -> str:
        return column if "." in column else f"{table}.{column}"

    @staticmethod
    def _pick_columns(row: Dict[str, Any], columns) -> Dict[str, Any]:
        picked = {}
        for name in columns:
            if name in row:
                picked[name] = row[name]
            elif "." in name and name.rsplit(".", 1)[-1] in row:
                picked[name] = row[name.rsplit(".", 1)[-1]]
            else:
                picked[name] = None
        return picked
