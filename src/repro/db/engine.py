"""A small façade over a backend: the ``Database`` object.

Applications (and the ORMs in :mod:`repro.form` and :mod:`repro.baseline`)
hold a ``Database``, which owns a backend and provides convenience helpers
for schema creation and query construction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.cache.bus import InvalidationBus
from repro.db.backend import Backend
from repro.db.expr import Expression, filters_to_expr
from repro.db.memory_backend import MemoryBackend
from repro.db.query import DeletePlan, Query, UpdatePlan
from repro.db.schema import Column, ColumnType, TableSchema


class Database:
    """A backend plus convenience helpers.

    ``Database()`` defaults to the in-memory engine; pass
    ``Database(SqliteBackend())`` to run against SQLite.

    >>> with Database() as db:
    ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
    ...     pk = db.insert("Paper", title="facets")
    ...     db.get("Paper", id=pk)["title"]
    'facets'
    """

    def __init__(self, backend: Optional[Backend] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()

    @classmethod
    def sqlite(cls, path: str = ":memory:", timeout: float = 30.0) -> "Database":
        """A database backed by SQLite.

        A file ``path`` gets per-thread WAL connections (concurrent readers);
        ``":memory:"`` falls back to one lock-serialised connection.
        """
        from repro.db.sqlite_backend import SqliteBackend

        return cls(SqliteBackend(path, timeout=timeout))

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def invalidation(self) -> InvalidationBus:
        """The backend's write-event bus (write-through cache invalidation)."""
        return self.backend.invalidation

    def observe_statements(self) -> "StatementLog":
        """A :class:`~repro.db.observe.StatementLog` attached to the backend.

        Detach with ``log.detach()`` or use as a context manager:

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     with db.observe_statements() as log:
        ...         _ = db.find("Paper", title="facets")
        ...     log.statements
        ['SELECT * FROM "Paper" WHERE title = ?']
        """
        from repro.db.observe import StatementLog

        return StatementLog(self.backend)

    # -- schema helpers ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.backend.create_table(schema)

    def define_table(self, name: str, /, **columns: ColumnType) -> TableSchema:
        """Define and create a table with an implicit ``id`` primary key.

        ``name`` is positional-only so a column may itself be called
        ``name``.

        >>> with Database() as db:
        ...     db.define_table("Person", name=ColumnType.TEXT).name
        'Person'
        """
        schema = TableSchema(
            name,
            (Column("id", ColumnType.INTEGER, primary_key=True),)
            + tuple(Column(column, ctype) for column, ctype in columns.items()),
        )
        self.backend.create_table(schema)
        return schema

    def drop_table(self, name: str) -> None:
        self.backend.drop_table(name)

    def has_table(self, name: str) -> bool:
        return self.backend.has_table(name)

    # -- data helpers --------------------------------------------------------------------

    def insert(self, table: str, **values: Any) -> int:
        """Insert one row, returning its primary key.

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     db.insert("Paper", title="facets")
        1
        """
        return self.backend.insert(table, values)

    def insert_row(self, table: str, values: Dict[str, Any]) -> int:
        """Like :meth:`insert`, taking the row as a dict."""
        return self.backend.insert(table, values)

    def insert_many(self, table: str, rows: Sequence[Dict[str, Any]]) -> List[int]:
        """Bulk insert; backends batch this into one write + one event.

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     db.insert_many("Paper", [{"title": "a"}, {"title": "b"}])
        [1, 2]
        """
        return self.backend.insert_many(table, rows)

    def update(self, table: str, where: Optional[Expression], **values: Any) -> int:
        return self.backend.update(table, where, values)

    def delete(self, table: str, where: Optional[Expression] = None) -> int:
        return self.backend.delete(table, where)

    def replace_rows(
        self,
        table: str,
        where: Optional[Expression],
        rows: Sequence[Dict[str, Any]],
    ) -> List[int]:
        """Atomically swap the rows matching ``where`` for ``rows``."""
        return self.backend.replace_rows(table, where, rows)

    def execute_update(self, plan: UpdatePlan) -> int:
        """Run a set-oriented :class:`~repro.db.query.UpdatePlan` (one write).

        >>> from repro.db.query import plan_update
        >>> from repro.db.expr import eq
        >>> with Database() as db:
        ...     _ = db.define_table("Paper", jid=ColumnType.INTEGER, ok=ColumnType.BOOLEAN)
        ...     _ = db.insert_many("Paper", [{"jid": 1, "ok": False}, {"jid": 2, "ok": True}])
        ...     db.execute_update(plan_update(db.query("Paper").filter(eq("ok", False)), {"ok": True}, "jid"))
        1
        """
        return self.backend.execute_update(plan)

    def execute_delete(self, plan: DeletePlan) -> int:
        """Run a set-oriented :class:`~repro.db.query.DeletePlan` (one write).

        >>> from repro.db.query import plan_delete
        >>> from repro.db.expr import eq
        >>> with Database() as db:
        ...     _ = db.define_table("Paper", jid=ColumnType.INTEGER)
        ...     _ = db.insert_many("Paper", [{"jid": 1}, {"jid": 1}, {"jid": 2}])
        ...     db.execute_delete(plan_delete(db.query("Paper").filter(eq("jid", 1)), "jid"))
        2
        """
        return self.backend.execute_delete(plan)

    def query(self, table: str) -> Query:
        """Start a fluent query against ``table``.

        >>> Database().query("Paper").limited(3).limit
        3
        """
        return Query(table=table)

    def rows(
        self,
        table: str,
        where: Optional[Expression] = None,
        order_by: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        query = Query(table=table, where=where)
        for column in order_by or ():
            query = query.ordered_by(column)
        if limit is not None:
            query = query.limited(limit)
        return self.backend.execute(query)

    def find(self, table: str, **filters: Any) -> List[Dict[str, Any]]:
        """Django-style keyword filtering.

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     _ = db.insert_many("Paper", [{"title": "a"}, {"title": "b"}])
        ...     [row["title"] for row in db.find("Paper", title="b")]
        ['b']
        """
        return self.rows(table, where=filters_to_expr(filters))

    def get(self, table: str, **filters: Any) -> Optional[Dict[str, Any]]:
        """The first matching row dict, or ``None``."""
        matches = self.find(table, **filters)
        return matches[0] if matches else None

    def count(self, table: str, where: Optional[Expression] = None) -> int:
        """COUNT(*) of the rows matching ``where`` (all rows when ``None``).

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     _ = db.insert_many("Paper", [{"title": "a"}, {"title": "b"}])
        ...     db.count("Paper")
        2
        """
        return self.backend.count(table, where)

    def count_distinct(
        self, table: str, column: str, where: Optional[Expression] = None
    ) -> int:
        """``COUNT(DISTINCT column)`` in one statement (NULLs skipped).

        The record-counting primitive behind the ORMs' ``count()``
        pushdown: one logical record spans several rows sharing a key
        (``jid``/``id``), so records are counted as distinct keys.

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", jid=ColumnType.INTEGER)
        ...     _ = db.insert_many("Paper", [{"jid": 1}, {"jid": 1}, {"jid": 2}])
        ...     db.count_distinct("Paper", "jid")
        2
        """
        from repro.db.query import plan_count_distinct

        query = plan_count_distinct(Query(table=table, where=where), column)
        return int(self.backend.aggregate(query) or 0)

    def may_have_facets(self, table: str) -> bool:
        """Whether ``table`` may hold faceted rows (write-maintained bit).

        Backed by :meth:`repro.db.backend.Backend.may_have_facets`: writes
        keep a per-table bit, so the hot paths (guarded-delete pushdown)
        skip the ``EXISTS(jvars != '')`` probe statement entirely.

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", jvars=ColumnType.TEXT)
        ...     db.may_have_facets("Paper")
        False
        """
        return self.backend.may_have_facets(table)

    def facet_branch_keys(self, table: str):
        """The policy-group branch keys of ``table``'s faceted rows.

        Backed by :meth:`repro.db.backend.Backend.facet_branch_keys`: a
        ``frozenset`` of group keys when every faceted row is a canonical
        single-group facet row, ``None`` when exotic labels may be present
        (the direct-WHERE pushdown soundness gate).

        >>> with Database() as db:
        ...     _ = db.define_table("Doc", jid=ColumnType.INTEGER, jvars=ColumnType.TEXT)
        ...     _ = db.insert("Doc", jid=1, jvars="Doc.1.title=True")
        ...     sorted(db.facet_branch_keys("Doc"))
        ['title']
        """
        return self.backend.facet_branch_keys(table)

    def exists(self, table: str, where: Optional[Expression] = None) -> bool:
        """``SELECT EXISTS(...)``: any matching row, without fetching rows.

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", title=ColumnType.TEXT)
        ...     _ = db.insert("Paper", title="facets")
        ...     db.exists("Paper")
        True
        """
        return self.backend.exists(table, where)

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        return self.backend.execute(query)

    def explain(self, query: Query) -> Dict[str, Any]:
        """The query's plan shape, rendered SQL and backend access path.

        :meth:`Query.explain` (plan shape + SQL that string-equals the
        executed statement) merged with the backend's own plan detail: the
        memory engine's cost-model choice (``chosen_plan`` /
        ``considered_plans``), SQLite's ``EXPLAIN QUERY PLAN`` rows.
        Nothing is executed and no statement event is emitted.

        >>> from repro.db.schema import Column
        >>> with Database() as db:
        ...     schema = TableSchema("Paper", (
        ...         Column("id", ColumnType.INTEGER, primary_key=True),
        ...         Column("score", ColumnType.INTEGER, ordered=True)))
        ...     db.create_table(schema)
        ...     _ = db.insert_many("Paper", [{"score": n} for n in range(8)])
        ...     from repro.db.expr import between
        ...     plan = db.explain(db.query("Paper").filter(between("score", 2, 4)))
        ...     plan["chosen_plan"]["access"]
        'ordered-range'
        """
        report = query.explain()
        report.update(self.backend.explain_query(query))
        return report

    def aggregate(self, query: Query) -> Any:
        """Run a scalar (or GROUP-BY dict) aggregate query.

        >>> with Database() as db:
        ...     _ = db.define_table("Paper", score=ColumnType.INTEGER)
        ...     _ = db.insert_many("Paper", [{"score": 3}, {"score": 5}])
        ...     db.aggregate(db.query("Paper").with_aggregate("MAX", "score"))
        5
        """
        return self.backend.aggregate(query)

    def clear(self) -> None:
        self.backend.clear()

    def close(self) -> None:
        self.backend.close()
