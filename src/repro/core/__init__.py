"""Faceted execution runtime (the Jeeves core).

This package implements the paper's application-side runtime: faceted
values, labels, path conditions, policies, guarded mutable state and
concretisation at computation sinks.  The faceted ORM (:mod:`repro.form`)
and the web framework (:mod:`repro.web`) are built on top of it.
"""

from repro.core.errors import (
    ConcretizationError,
    JeevesError,
    MixedFacetError,
    PathConditionError,
    PolicyError,
    UnassignedValueError,
)
from repro.core.facets import (
    UNASSIGNED,
    Facet,
    Unassigned,
    collect_labels,
    facet_apply,
    facet_cond,
    facet_depth,
    facet_leaf_count,
    facet_map,
    fand,
    feq,
    fge,
    fgt,
    fle,
    flt,
    fne,
    fnot,
    for_,
    is_facet,
    iter_leaves,
    mk_facet,
    mk_facet_branches,
    project,
    project_assignment,
    prune,
)
from repro.core.labels import Branch, Label, View, branches_visible_to
from repro.core.namespace import Cell, Namespace
from repro.core.pathcondition import EMPTY_PC, PathCondition
from repro.core.policy import Policy, PolicyEnv, always_allow, never_allow
from repro.core.concretize import concretize, faceted_bool_to_formula, resolve_labels
from repro.core.runtime import JeevesRuntime, get_runtime, reset_runtime, set_runtime

__all__ = [
    "JeevesError",
    "PolicyError",
    "PathConditionError",
    "UnassignedValueError",
    "MixedFacetError",
    "ConcretizationError",
    "Facet",
    "Unassigned",
    "UNASSIGNED",
    "is_facet",
    "mk_facet",
    "mk_facet_branches",
    "facet_apply",
    "facet_map",
    "facet_cond",
    "facet_depth",
    "facet_leaf_count",
    "feq",
    "fne",
    "flt",
    "fle",
    "fgt",
    "fge",
    "fnot",
    "fand",
    "for_",
    "project",
    "project_assignment",
    "prune",
    "collect_labels",
    "iter_leaves",
    "Label",
    "Branch",
    "View",
    "branches_visible_to",
    "PathCondition",
    "EMPTY_PC",
    "Policy",
    "PolicyEnv",
    "always_allow",
    "never_allow",
    "Cell",
    "Namespace",
    "concretize",
    "resolve_labels",
    "faceted_bool_to_formula",
    "JeevesRuntime",
    "get_runtime",
    "set_runtime",
    "reset_runtime",
]
