"""Faceted values.

A faceted value ``<k ? high : low>`` behaves as ``high`` for viewers
authorised to see label ``k`` and as ``low`` for everyone else.  Facets nest,
forming binary trees whose leaves are ordinary Python values.

This module provides the value algebra used throughout the library:

* :func:`mk_facet` implements the paper's ``⟨⟨k ? V_H : V_L⟩⟩`` constructor,
  including the sharing optimisation (identical facets collapse);
* :func:`facet_apply` implements the F-STRICT rule, pushing strict operations
  into the facets of their arguments;
* :func:`project` implements the view projection ``L(·)`` used in the
  Projection and Non-Interference theorems;
* the :class:`Facet` class overloads arithmetic so policy-agnostic code can
  compute with sensitive values directly.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.errors import MixedFacetError, UnassignedValueError
from repro.core.labels import Branch, Label, View
from repro.core.pathcondition import EMPTY_PC, PathCondition


class Unassigned:
    """Sentinel for "no value on this execution path".

    The Jeeves Python embedding uses an ``Unassigned()`` object for values
    that exist only in some facets (Section 5.1.1).  Forcing it with a strict
    operation raises :class:`UnassignedValueError`.
    """

    _instance: Optional["Unassigned"] = None

    def __new__(cls) -> "Unassigned":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Unassigned()"

    def __bool__(self) -> bool:
        raise UnassignedValueError("cannot branch on an unassigned value")


UNASSIGNED = Unassigned()


class Facet:
    """A faceted value ``<label ? high : low>``.

    Facets are immutable.  ``high`` and ``low`` may themselves be facets or
    arbitrary Python values.  Structural equality and hashing are provided so
    facets can be stored in containers; *faceted* comparison (returning a
    faceted boolean) is available via :func:`feq` and friends.
    """

    __slots__ = ("label", "high", "low")

    def __init__(self, label: Label, high: Any, low: Any) -> None:
        if not isinstance(label, Label):
            raise TypeError(f"Facet label must be a Label, got {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "high", high)
        object.__setattr__(self, "low", low)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Facet is immutable")

    # -- representation --------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{self.label.name} ? {self.high!r} : {self.low!r}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Facet)
            and other.label == self.label
            and _leaf_eq(other.high, self.high)
            and _leaf_eq(other.low, self.low)
        )

    def __hash__(self) -> int:
        return hash(("Facet", self.label, _hashable(self.high), _hashable(self.low)))

    def __bool__(self) -> bool:
        raise MixedFacetError(
            "cannot branch on a faceted value with a native 'if'; use "
            "JeevesRuntime.jif or concretize the value first"
        )

    # -- arithmetic (policy-agnostic computation on sensitive values) ----------

    def __add__(self, other: Any) -> Any:
        return facet_apply(operator.add, self, other)

    def __radd__(self, other: Any) -> Any:
        return facet_apply(operator.add, other, self)

    def __sub__(self, other: Any) -> Any:
        return facet_apply(operator.sub, self, other)

    def __rsub__(self, other: Any) -> Any:
        return facet_apply(operator.sub, other, self)

    def __mul__(self, other: Any) -> Any:
        return facet_apply(operator.mul, self, other)

    def __rmul__(self, other: Any) -> Any:
        return facet_apply(operator.mul, other, self)

    def __truediv__(self, other: Any) -> Any:
        return facet_apply(operator.truediv, self, other)

    def __rtruediv__(self, other: Any) -> Any:
        return facet_apply(operator.truediv, other, self)

    def __floordiv__(self, other: Any) -> Any:
        return facet_apply(operator.floordiv, self, other)

    def __mod__(self, other: Any) -> Any:
        return facet_apply(operator.mod, self, other)

    def __neg__(self) -> Any:
        return facet_apply(operator.neg, self)

    def __and__(self, other: Any) -> Any:
        return facet_apply(operator.and_, self, other)

    def __or__(self, other: Any) -> Any:
        return facet_apply(operator.or_, self, other)

    def __invert__(self) -> Any:
        return facet_apply(operator.invert, self)

    # -- attribute / item access ------------------------------------------------

    def attr(self, name: str) -> Any:
        """Faceted attribute access: ``facet.attr('f')`` maps over leaves."""
        return facet_apply(lambda obj: getattr(obj, name), self)

    def item(self, key: Any) -> Any:
        """Faceted item access."""
        return facet_apply(operator.getitem, self, key)

    def call(self, *args: Any, **kwargs: Any) -> Any:
        """Faceted function application when the callee is faceted."""
        return facet_apply(lambda fn, *a: fn(*a, **kwargs), self, *args)


def _leaf_eq(a: Any, b: Any) -> bool:
    """Structural equality that never raises on heterogeneous leaves."""
    try:
        return bool(a == b)
    except Exception:
        return a is b


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return id(value)


def is_facet(value: Any) -> bool:
    """True if ``value`` is a faceted value (has at least one facet node)."""
    return isinstance(value, Facet)


def mk_facet(label: Label, high: Any, low: Any) -> Any:
    """The ``⟨⟨k ? V_H : V_L⟩⟩`` constructor with sharing.

    If both facets are structurally identical, no facet node is created
    (the sharing optimisation described with the faceted-table join in
    Section 4.2).  Nested facets over the same label are normalised.
    """
    if isinstance(high, Facet) and high.label == label:
        high = high.high
    if isinstance(low, Facet) and low.label == label:
        low = low.low
    if _facet_structural_eq(high, low):
        return high
    return Facet(label, high, low)


def mk_facet_branches(branches: Iterable[Branch], high: Any, low: Any) -> Any:
    """The ``⟨⟨B ? V_H : V_L⟩⟩`` constructor over a set of branches.

    Follows the paper's recursive definition: positive branches put ``high``
    on the authorised side, negative branches flip the facets.
    """
    branch_list = list(branches)
    if not branch_list:
        return high
    first, rest = branch_list[0], branch_list[1:]
    inner = mk_facet_branches(rest, high, low)
    if first.positive:
        return mk_facet(first.label, inner, low)
    return mk_facet(first.label, low, inner)


def _facet_structural_eq(a: Any, b: Any) -> bool:
    if isinstance(a, Facet) and isinstance(b, Facet):
        return (
            a.label == b.label
            and _facet_structural_eq(a.high, b.high)
            and _facet_structural_eq(a.low, b.low)
        )
    if isinstance(a, Facet) or isinstance(b, Facet):
        return False
    return _leaf_eq(a, b)


def facet_apply(fn: Callable[..., Any], *args: Any, pc: PathCondition = EMPTY_PC) -> Any:
    """Apply a strict operation to possibly-faceted arguments (F-STRICT).

    The operation is pushed into facets left to right; the result is a
    faceted value whose leaves are ``fn`` applied to combinations of leaves.
    Leaves that are :data:`UNASSIGNED` propagate unchanged rather than being
    passed to ``fn``.
    """
    for index, arg in enumerate(args):
        if isinstance(arg, Facet):
            label = arg.label
            polarity = pc.polarity_of(label)
            if polarity is True:
                new_args = args[:index] + (arg.high,) + args[index + 1 :]
                return facet_apply(fn, *new_args, pc=pc)
            if polarity is False:
                new_args = args[:index] + (arg.low,) + args[index + 1 :]
                return facet_apply(fn, *new_args, pc=pc)
            high_args = args[:index] + (arg.high,) + args[index + 1 :]
            low_args = args[:index] + (arg.low,) + args[index + 1 :]
            high = facet_apply(fn, *high_args, pc=pc.extend_label(label, True))
            low = facet_apply(fn, *low_args, pc=pc.extend_label(label, False))
            return mk_facet(label, high, low)
        if isinstance(arg, Unassigned):
            return UNASSIGNED
    return fn(*args)


def facet_map(fn: Callable[[Any], Any], value: Any) -> Any:
    """Map ``fn`` over every leaf of a faceted value (never strict on facets)."""
    if isinstance(value, Facet):
        return mk_facet(value.label, facet_map(fn, value.high), facet_map(fn, value.low))
    return fn(value)


def facet_cond(condition: Any, then_value: Any, else_value: Any) -> Any:
    """A pure faceted conditional over values (no side effects).

    ``condition`` may be faceted; booleans select the corresponding branch
    value.  This is the value-level analogue of ``jif``.
    """
    if isinstance(condition, Facet):
        return mk_facet(
            condition.label,
            facet_cond(condition.high, then_value, else_value),
            facet_cond(condition.low, then_value, else_value),
        )
    if isinstance(condition, Unassigned):
        return UNASSIGNED
    return then_value if condition else else_value


# -- faceted comparisons ------------------------------------------------------


def feq(a: Any, b: Any) -> Any:
    """Faceted equality (returns a faceted boolean when inputs are faceted)."""
    return facet_apply(operator.eq, a, b)


def fne(a: Any, b: Any) -> Any:
    return facet_apply(operator.ne, a, b)


def flt(a: Any, b: Any) -> Any:
    return facet_apply(operator.lt, a, b)


def fle(a: Any, b: Any) -> Any:
    return facet_apply(operator.le, a, b)


def fgt(a: Any, b: Any) -> Any:
    return facet_apply(operator.gt, a, b)


def fge(a: Any, b: Any) -> Any:
    return facet_apply(operator.ge, a, b)


def fnot(a: Any) -> Any:
    return facet_apply(operator.not_, a)


def fand(a: Any, b: Any) -> Any:
    """Faceted logical conjunction (non-short-circuiting)."""
    return facet_apply(lambda x, y: bool(x) and bool(y), a, b)


def for_(a: Any, b: Any) -> Any:
    """Faceted logical disjunction (non-short-circuiting)."""
    return facet_apply(lambda x, y: bool(x) or bool(y), a, b)


# -- projection / inspection ---------------------------------------------------


def project(value: Any, view: View) -> Any:
    """The projection ``L(value)``: collapse facets according to a view."""
    if isinstance(value, Facet):
        chosen = value.high if view.can_see(value.label) else value.low
        return project(chosen, view)
    if isinstance(value, list):
        return [project(item, view) for item in value]
    if isinstance(value, tuple):
        return tuple(project(item, view) for item in value)
    if isinstance(value, dict):
        return {key: project(item, view) for key, item in value.items()}
    return value


def project_assignment(value: Any, assignment: Mapping[Label, bool]) -> Any:
    """Collapse facets according to an explicit ``{Label: bool}`` assignment.

    Labels missing from the assignment default to ``False`` (the safe side).
    """
    if isinstance(value, Facet):
        chosen = value.high if assignment.get(value.label, False) else value.low
        return project_assignment(chosen, assignment)
    if isinstance(value, list):
        return [project_assignment(item, assignment) for item in value]
    if isinstance(value, tuple):
        return tuple(project_assignment(item, assignment) for item in value)
    if isinstance(value, dict):
        return {key: project_assignment(item, assignment) for key, item in value.items()}
    return value


def collect_labels(value: Any) -> FrozenSet[Label]:
    """All labels occurring anywhere in a (possibly nested) value."""
    found: Set[Label] = set()
    _collect_labels_into(value, found)
    return frozenset(found)


def _collect_labels_into(value: Any, found: Set[Label]) -> None:
    if isinstance(value, Facet):
        found.add(value.label)
        _collect_labels_into(value.high, found)
        _collect_labels_into(value.low, found)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _collect_labels_into(item, found)
    elif isinstance(value, dict):
        for item in value.values():
            _collect_labels_into(item, found)


def iter_leaves(value: Any) -> Iterator[Tuple[Tuple[Branch, ...], Any]]:
    """Yield ``(branches, leaf)`` pairs for every leaf of a faceted value."""

    def walk(node: Any, branches: Tuple[Branch, ...]) -> Iterator[Tuple[Tuple[Branch, ...], Any]]:
        if isinstance(node, Facet):
            yield from walk(node.high, branches + (Branch(node.label, True),))
            yield from walk(node.low, branches + (Branch(node.label, False),))
        else:
            yield branches, node

    return walk(value, ())


def prune(value: Any, pc: PathCondition) -> Any:
    """Simplify a faceted value under a known path condition.

    Facets whose label polarity is fixed by ``pc`` collapse to the matching
    side.  This is the value-level form of the Early Pruning rule F-PRUNE.
    """
    if isinstance(value, Facet):
        polarity = pc.polarity_of(value.label)
        if polarity is True:
            return prune(value.high, pc)
        if polarity is False:
            return prune(value.low, pc)
        return mk_facet(
            value.label,
            prune(value.high, pc.extend_label(value.label, True)),
            prune(value.low, pc.extend_label(value.label, False)),
        )
    if isinstance(value, list):
        return [prune(item, pc) for item in value]
    if isinstance(value, tuple):
        return tuple(prune(item, pc) for item in value)
    return value


def facet_depth(value: Any) -> int:
    """The number of facet nodes on the deepest path (0 for raw values)."""
    if isinstance(value, Facet):
        return 1 + max(facet_depth(value.high), facet_depth(value.low))
    return 0


def facet_leaf_count(value: Any) -> int:
    """The number of leaves of a faceted value (1 for raw values)."""
    if isinstance(value, Facet):
        return facet_leaf_count(value.high) + facet_leaf_count(value.low)
    return 1
