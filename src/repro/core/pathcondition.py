"""Path conditions (program counters) for faceted execution.

A path condition ``pc`` is a set of branches recording which facets the
current computation is visible to.  Evaluation of ``<k ? e1 : e2>`` adds
``k`` to the pc while evaluating ``e1`` and ``¬k`` while evaluating ``e2``
(rule F-SPLIT).  Writes performed under a non-empty pc are guarded so that
other views observe the old value (rule F-ASSIGN).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.core.errors import PathConditionError
from repro.core.labels import Branch, Label, View


class PathCondition:
    """An immutable, ordered set of branches.

    Order is preserved for readable repr/debugging; semantics only depend on
    the underlying set.
    """

    __slots__ = ("_branches", "_index")

    def __init__(self, branches: Iterable[Branch] = ()) -> None:
        ordered: Tuple[Branch, ...] = tuple(branches)
        seen = set()
        unique = []
        for branch in ordered:
            if branch not in seen:
                seen.add(branch)
                unique.append(branch)
        self._branches: Tuple[Branch, ...] = tuple(unique)
        self._index = {(b.label, b.positive) for b in self._branches}

    # -- construction ----------------------------------------------------------

    @classmethod
    def empty(cls) -> "PathCondition":
        return cls()

    def extend(self, branch: Branch) -> "PathCondition":
        """Return a new pc with ``branch`` appended.

        Raises :class:`PathConditionError` if the opposite branch is already
        present (the paper's rules never do this: F-LEFT/F-RIGHT short-circuit
        instead).
        """
        if self.contains(branch.negate()):
            raise PathConditionError(
                f"cannot add {branch!r}: opposite branch already in {self!r}"
            )
        if self.contains(branch):
            return self
        return PathCondition(self._branches + (branch,))

    def extend_label(self, label: Label, positive: bool) -> "PathCondition":
        return self.extend(Branch(label, positive))

    def union(self, branches: Iterable[Branch]) -> "PathCondition":
        pc = self
        for branch in branches:
            pc = pc.extend(branch)
        return pc

    # -- queries ---------------------------------------------------------------

    def contains(self, branch: Branch) -> bool:
        return (branch.label, branch.positive) in self._index

    def has_label(self, label: Label) -> bool:
        """True if the pc mentions ``label`` in either polarity."""
        return (label, True) in self._index or (label, False) in self._index

    def polarity_of(self, label: Label) -> Optional[bool]:
        """The polarity the pc holds for ``label``, or ``None``."""
        if (label, True) in self._index:
            return True
        if (label, False) in self._index:
            return False
        return None

    def consistent_with(self, branches: Iterable[Branch]) -> bool:
        """The paper's "B consistent with pc": no contradictory branch."""
        for branch in branches:
            if self.contains(branch.negate()):
                return False
        return True

    def visible_to(self, view: View) -> bool:
        """The ``pc ~ L`` relation from the projection theorem."""
        return all(branch.visible_to(view) for branch in self._branches)

    def branches(self) -> Tuple[Branch, ...]:
        return self._branches

    def labels(self) -> FrozenSet[Label]:
        return frozenset(branch.label for branch in self._branches)

    # -- dunder ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Branch]:
        return iter(self._branches)

    def __len__(self) -> int:
        return len(self._branches)

    def __bool__(self) -> bool:
        return bool(self._branches)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PathCondition) and set(other._branches) == set(
            self._branches
        )

    def __hash__(self) -> int:
        return hash(("PathCondition", frozenset(self._branches)))

    def __repr__(self) -> str:
        inner = ", ".join(repr(branch) for branch in self._branches)
        return f"PathCondition([{inner}])"


EMPTY_PC = PathCondition.empty()
