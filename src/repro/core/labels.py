"""Information-flow labels and branches.

A *label* is a boolean meta-variable guarding a facet: data associated with
``k`` is visible only to viewers for whom ``k`` resolves to ``True``.  A
*branch* is a label or its negation; path conditions and faceted database
rows are sets of branches (Section 4.1 of the paper).
"""

from __future__ import annotations

import itertools
import threading
from typing import FrozenSet, Iterable, Optional


_COUNTER = itertools.count(1)
_COUNTER_LOCK = threading.Lock()


def _next_index() -> int:
    with _COUNTER_LOCK:
        return next(_COUNTER)


class Label:
    """A fresh boolean label.

    Labels are compared by identity-backed unique names, so two labels
    created with the same human-readable hint are still distinct (matching
    the ``label k in e`` rule, which always allocates a fresh label).
    """

    __slots__ = ("name", "hint")

    def __init__(self, hint: str = "k", name: Optional[str] = None) -> None:
        self.hint = hint
        self.name = name if name is not None else f"{hint}#{_next_index()}"

    def __repr__(self) -> str:
        return f"Label({self.name})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Label) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Label", self.name))

    def __lt__(self, other: "Label") -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.name < other.name


class Branch:
    """A label or its negation, used in path conditions and faceted rows."""

    __slots__ = ("label", "positive")

    def __init__(self, label: Label, positive: bool = True) -> None:
        if not isinstance(label, Label):
            raise TypeError(f"Branch expects a Label, got {label!r}")
        self.label = label
        self.positive = bool(positive)

    def __repr__(self) -> str:
        return f"{'' if self.positive else '¬'}{self.label.name}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Branch)
            and other.label == self.label
            and other.positive == self.positive
        )

    def __hash__(self) -> int:
        return hash(("Branch", self.label, self.positive))

    def negate(self) -> "Branch":
        """The branch with the opposite polarity."""
        return Branch(self.label, not self.positive)

    def visible_to(self, view: "View") -> bool:
        """True if this branch is consistent with a concrete view."""
        return view.can_see(self.label) == self.positive


class View:
    """A concrete view: the set of labels a viewer is authorised to see.

    This corresponds to ``L`` in the paper's projection function.  The view
    is total: any label not in the set resolves to ``False``.
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[Label] = ()) -> None:
        self._labels: FrozenSet[Label] = frozenset(labels)

    def __repr__(self) -> str:
        inner = ", ".join(sorted(label.name for label in self._labels))
        return f"View({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, View) and other._labels == self._labels

    def __hash__(self) -> int:
        return hash(("View", self._labels))

    def can_see(self, label: Label) -> bool:
        """Whether this view is authorised for ``label``."""
        return label in self._labels

    def labels(self) -> FrozenSet[Label]:
        return self._labels

    def with_label(self, label: Label) -> "View":
        """A copy of this view that can additionally see ``label``."""
        return View(self._labels | {label})

    def without_label(self, label: Label) -> "View":
        """A copy of this view that cannot see ``label``."""
        return View(self._labels - {label})

    @classmethod
    def from_assignment(cls, assignment: dict) -> "View":
        """Build a view from a ``{Label: bool}`` or ``{name: bool}`` mapping."""
        labels = []
        for key, value in assignment.items():
            if not value:
                continue
            if isinstance(key, Label):
                labels.append(key)
            else:
                labels.append(Label(hint=str(key), name=str(key)))
        return cls(labels)


def branches_visible_to(branches: Iterable[Branch], view: View) -> bool:
    """The paper's ``B ~ L`` relation: every branch is consistent with L."""
    return all(branch.visible_to(view) for branch in branches)
