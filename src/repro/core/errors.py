"""Exception types for the faceted execution runtime."""

from __future__ import annotations


class JeevesError(Exception):
    """Base class for all errors raised by the faceted runtime."""


class PolicyError(JeevesError):
    """A policy is malformed or failed while being evaluated."""


class PathConditionError(JeevesError):
    """An operation produced an inconsistent path condition."""


class UnassignedValueError(JeevesError):
    """A computation observed a value that exists only on other paths.

    The runtime represents "no value on this execution path" with the
    :class:`repro.core.facets.Unassigned` sentinel; forcing it into a strict
    operation raises this error.
    """


class MixedFacetError(JeevesError):
    """A faceted value mixed incompatible kinds (e.g. a table and an int).

    Mirrors the footnote in Section 4.2: programs that unnaturally mix
    values get stuck.
    """


class ConcretizationError(JeevesError):
    """Concretisation could not produce an output for the requested viewer."""
