"""The Jeeves runtime: faceted execution for Python code.

The runtime owns the label/policy environment and the current path
condition.  Policy-agnostic application code uses it to:

* allocate labels and attach policies (``label`` / ``restrict``);
* build sensitive values (``mk_sensitive``);
* branch and loop on sensitive data without leaking (``jif`` / ``jfor``);
* perform guarded mutation (``cell`` / ``namespace``);
* resolve outputs for a concrete viewer (``concretize`` / ``jprint``).

The original implementation rewrites Python source with MacroPy so plain
``if``/``for`` statements become faceted; this reproduction exposes the same
semantics through explicit combinators (see DESIGN.md, substitution 1).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.core.concretize import concretize as _concretize
from repro.core.concretize import resolve_labels as _resolve_labels
from repro.core.errors import PathConditionError
from repro.core.facets import (
    UNASSIGNED,
    Facet,
    Unassigned,
    facet_apply,
    facet_cond,
    mk_facet,
    mk_facet_branches,
    prune,
)
from repro.core.labels import Branch, Label, View
from repro.core.namespace import Cell, Namespace
from repro.core.pathcondition import EMPTY_PC, PathCondition
from repro.core.policy import PolicyEnv, PolicyFn


class JeevesRuntime:
    """Coordinates labels, policies and path conditions for one application."""

    def __init__(self) -> None:
        self.policy_env = PolicyEnv()
        # The path condition is control-flow state, so it is per-thread: two
        # request workers sharing one runtime each get their own stack and
        # cannot observe (or corrupt) each other's speculative branches.
        self._pc_state = threading.local()
        self._viewer_hint: Any = None

    # -- labels and policies -----------------------------------------------------

    def label(self, hint: str = "k") -> Label:
        """Allocate a fresh label with the default allow-all policy."""
        label = Label(hint=hint)
        self.policy_env.declare(label)
        return label

    def restrict(self, label: Label, policy: PolicyFn) -> None:
        """Attach a policy to ``label`` (guarded by the current pc)."""
        self.policy_env.restrict(label, policy, self.current_pc())

    def mk_sensitive(self, label: Label, high: Any, low: Any) -> Any:
        """Create the sensitive value ``<label ? high : low>``."""
        return mk_facet(label, high, low)

    def mk_labeled(self, high: Any, low: Any, policy: PolicyFn, hint: str = "k") -> Any:
        """Allocate a label, attach ``policy`` and build the sensitive value."""
        label = self.label(hint)
        self.restrict(label, policy)
        return self.mk_sensitive(label, high, low)

    # -- path condition management ------------------------------------------------

    def _pc_stack(self) -> List[PathCondition]:
        stack = getattr(self._pc_state, "stack", None)
        if stack is None:
            stack = [EMPTY_PC]
            self._pc_state.stack = stack
        return stack

    def current_pc(self) -> PathCondition:
        return self._pc_stack()[-1]

    @contextlib.contextmanager
    def under_pc(self, pc: PathCondition):
        """Run a block with an explicit path condition (used by the FORM)."""
        stack = self._pc_stack()
        stack.append(pc)
        try:
            yield pc
        finally:
            stack.pop()

    @contextlib.contextmanager
    def under_branch(self, label: Label, positive: bool):
        """Run a block with the current pc extended by one branch."""
        new_pc = self.current_pc().extend_label(label, positive)
        stack = self._pc_stack()
        stack.append(new_pc)
        try:
            yield new_pc
        finally:
            stack.pop()

    # -- faceted control flow -------------------------------------------------------

    def jif(
        self,
        condition: Any,
        then_fn: Callable[[], Any],
        else_fn: Optional[Callable[[], Any]] = None,
    ) -> Any:
        """Faceted conditional.

        ``condition`` may be faceted.  Both branches are executed under the
        appropriate extended path conditions (rule F-SPLIT); their side
        effects on :class:`Cell`/:class:`Namespace` state are guarded
        automatically.  The return value is the faceted merge of the branch
        results.
        """
        if isinstance(condition, Facet):
            label = condition.label
            pc = self.current_pc()
            polarity = pc.polarity_of(label)
            if polarity is True:
                return self.jif(condition.high, then_fn, else_fn)
            if polarity is False:
                return self.jif(condition.low, then_fn, else_fn)
            with self.under_branch(label, True):
                high = self.jif(condition.high, then_fn, else_fn)
            with self.under_branch(label, False):
                low = self.jif(condition.low, then_fn, else_fn)
            return mk_facet(label, high, low)
        if isinstance(condition, Unassigned):
            return UNASSIGNED
        if condition:
            return then_fn()
        if else_fn is not None:
            return else_fn()
        return None

    def jfor(self, iterable: Any, body: Callable[[Any], Any]) -> List[Any]:
        """Faceted iteration.

        ``iterable`` may be a faceted list (e.g. the result of a faceted
        query).  The body runs once per element, under the path condition
        that makes the element visible; results are collected in order.
        """
        results: List[Any] = []

        def run_over(collection: Any) -> None:
            if isinstance(collection, Facet):
                label = collection.label
                pc = self.current_pc()
                polarity = pc.polarity_of(label)
                if polarity is True:
                    run_over(collection.high)
                    return
                if polarity is False:
                    run_over(collection.low)
                    return
                with self.under_branch(label, True):
                    run_over(collection.high)
                with self.under_branch(label, False):
                    run_over(collection.low)
                return
            if isinstance(collection, Unassigned):
                return
            for item in collection:
                results.append(body(item))

        run_over(iterable)
        return results

    def jfun(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Apply a strict Python function to possibly-faceted arguments."""
        if kwargs:
            return facet_apply(lambda *a: fn(*a, **kwargs), *args, pc=self.current_pc())
        return facet_apply(fn, *args, pc=self.current_pc())

    def jcond(self, condition: Any, then_value: Any, else_value: Any) -> Any:
        """Pure faceted selection between two already-computed values."""
        return facet_cond(condition, then_value, else_value)

    # -- guarded state ---------------------------------------------------------------

    def cell(self, initial: Any = UNASSIGNED) -> Cell:
        """A mutable reference with pc-guarded writes."""
        return Cell(self, initial)

    def namespace(self, **initial: Any) -> Namespace:
        """An attribute namespace with pc-guarded assignment."""
        return Namespace(self, **initial)

    def guarded(self, new_value: Any, old_value: Any) -> Any:
        """``⟨⟨pc ? new : old⟩⟩`` under the current path condition."""
        pc = self.current_pc()
        if not pc:
            return new_value
        return mk_facet_branches(pc.branches(), new_value, old_value)

    # -- output ----------------------------------------------------------------------

    def concretize(self, value: Any, viewer: Any) -> Any:
        """Resolve all facets of ``value`` for ``viewer`` per the policies."""
        return _concretize(value, viewer, self.policy_env)

    def resolve_labels(self, value: Any, viewer: Any) -> Dict[Label, bool]:
        """The label assignment concretisation would use (for inspection)."""
        return _resolve_labels(value, self.policy_env, viewer)

    def view_for(self, value: Any, viewer: Any) -> View:
        """The concrete :class:`View` induced by the policies for ``viewer``."""
        assignment = self.resolve_labels(value, viewer)
        return View(label for label, visible in assignment.items() if visible)

    def jprint(self, value: Any, viewer: Any, sink: Callable[[str], None] = print) -> str:
        """The ``print {viewer} value`` computation sink.

        Returns the rendered string and also forwards it to ``sink``.
        """
        concrete = self.concretize(value, viewer)
        text = str(concrete)
        sink(text)
        return text

    # -- Early Pruning -----------------------------------------------------------------

    def speculate_viewer(self, viewer: Any) -> None:
        """Record a viewer hint for Early Pruning (e.g. the session user)."""
        self._viewer_hint = viewer

    def viewer_hint(self) -> Any:
        return self._viewer_hint

    def prune_for_viewer(self, value: Any, viewer: Any) -> Any:
        """Early Pruning at the value level.

        Resolves the labels *currently* reachable from ``value`` for
        ``viewer`` and collapses the facets accordingly.  Sound when
        policy-relevant state will not change before output (Section 3.2).
        """
        assignment = self.resolve_labels(value, viewer)
        branches = [Branch(label, visible) for label, visible in assignment.items()]
        pc = PathCondition(branches)
        return prune(value, pc)

    # -- reset (used between test cases / benchmark iterations) -----------------------

    def reset(self) -> None:
        """Drop all policies and path conditions (fresh application state)."""
        self.policy_env = PolicyEnv()
        self._pc_state = threading.local()
        self._viewer_hint = None


_runtime_local = threading.local()


def get_runtime() -> JeevesRuntime:
    """The per-thread default runtime used by the FORM and the web framework."""
    runtime = getattr(_runtime_local, "runtime", None)
    if runtime is None:
        runtime = JeevesRuntime()
        _runtime_local.runtime = runtime
    return runtime


def set_runtime(runtime: JeevesRuntime) -> None:
    """Replace the per-thread default runtime (tests and benchmarks)."""
    _runtime_local.runtime = runtime


def reset_runtime() -> JeevesRuntime:
    """Install and return a fresh default runtime."""
    runtime = JeevesRuntime()
    _runtime_local.runtime = runtime
    return runtime
