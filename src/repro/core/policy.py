"""Policies and the policy environment.

A policy is a predicate over the viewing context: ``policy(viewer)`` returns
a boolean (possibly faceted, when the policy itself reads sensitive data).
The policy environment maps labels to policies; ``restrict`` conjoins a new
policy onto a label's existing one so policies only become more restrictive
(rule F-RESTRICT).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.core.errors import PolicyError
from repro.core.facets import facet_apply, mk_facet_branches
from repro.core.labels import Label
from repro.core.pathcondition import EMPTY_PC, PathCondition

#: A policy takes the viewing context and returns a (possibly faceted) boolean.
PolicyFn = Callable[[Any], Any]


def always_allow(viewer: Any) -> bool:
    """The default policy attached to freshly allocated labels."""
    return True


def never_allow(viewer: Any) -> bool:
    """A policy that always hides the guarded data."""
    return False


class Policy:
    """A conjunctive stack of policy predicates attached to one label."""

    __slots__ = ("_checks",)

    def __init__(self, checks: Optional[Iterable[PolicyFn]] = None) -> None:
        self._checks = list(checks) if checks is not None else []

    def __repr__(self) -> str:
        return f"Policy(checks={len(self._checks)})"

    def conjoin(self, check: PolicyFn) -> "Policy":
        """Return a new policy requiring this policy *and* ``check``."""
        if not callable(check):
            raise PolicyError(f"policy must be callable, got {check!r}")
        return Policy(self._checks + [check])

    def checks(self) -> Iterable[PolicyFn]:
        return tuple(self._checks)

    def evaluate(self, viewer: Any) -> Any:
        """Evaluate all checks for ``viewer``; result may be faceted.

        The conjunction is computed with faceted AND so that policies reading
        sensitive values yield faceted booleans rather than leaking.
        """
        result: Any = True
        for check in self._checks:
            try:
                outcome = check(viewer)
            except Exception as exc:  # a failing policy must fail closed
                raise PolicyError(f"policy {check!r} raised {exc!r}") from exc
            result = facet_apply(lambda a, b: bool(a) and bool(b), result, outcome)
        return result


class PolicyEnv:
    """Maps labels to their policies (the label portion of the store Σ)."""

    def __init__(self) -> None:
        self._policies: Dict[Label, Policy] = {}

    def __contains__(self, label: Label) -> bool:
        return label in self._policies

    def __len__(self) -> int:
        return len(self._policies)

    def declare(self, label: Label) -> None:
        """Register a fresh label with the default always-allow policy
        (rule F-LABEL)."""
        if label not in self._policies:
            self._policies[label] = Policy([always_allow])

    def restrict(self, label: Label, check: PolicyFn, pc: PathCondition = EMPTY_PC) -> None:
        """Attach an additional policy check to ``label`` (rule F-RESTRICT).

        The check is guarded by the current path condition so that attaching
        a policy inside a sensitive branch cannot itself leak: for viewers
        outside the branch the added check behaves as always-allow.
        """
        self.declare(label)
        if pc:
            guarded_branches = tuple(pc.branches())

            def guarded(viewer: Any, _check: PolicyFn = check) -> Any:
                return mk_facet_branches(guarded_branches, _check(viewer), True)

            effective: PolicyFn = guarded
        else:
            effective = check
        self._policies[label] = self._policies[label].conjoin(effective)

    def policy_for(self, label: Label) -> Policy:
        """The policy currently attached to ``label`` (default allow)."""
        return self._policies.get(label, Policy([always_allow]))

    def labels(self) -> Iterable[Label]:
        return tuple(self._policies.keys())

    def evaluate(self, label: Label, viewer: Any) -> Any:
        """Evaluate ``label``'s policy for ``viewer``."""
        return self.policy_for(label).evaluate(viewer)

    def copy(self) -> "PolicyEnv":
        clone = PolicyEnv()
        clone._policies = {
            label: Policy(policy.checks()) for label, policy in self._policies.items()
        }
        return clone
