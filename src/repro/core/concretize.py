"""Concretisation: resolving faceted values at computation sinks.

When a faceted value reaches an output (the ``print {viewer} value``
statement of λJDB, or page rendering in Jacqueline), the runtime must decide
every label occurring in the value.  This module implements the [F-PRINT]
recipe from Appendix A:

1. compute ``closeK``, the transitive closure of labels reachable from the
   value through policy results;
2. evaluate each label's policy for the viewer, obtaining a (possibly
   faceted) boolean;
3. translate the faceted booleans into propositional formulas over label
   variables and solve ``k => policy_k`` for all labels, preferring ``True``
   (show) assignments;
4. project the value under the resulting assignment.

When no policy result mentions a label (no mutual dependencies) the solver
degenerates to direct policy evaluation, which is the common fast path the
paper relies on ("unless there are mutual dependencies, Jacqueline may
determine label values by evaluating policies directly").
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Set

from repro.core.errors import ConcretizationError
from repro.core.facets import Facet, collect_labels, project_assignment
from repro.core.labels import Label
from repro.core.policy import PolicyEnv
from repro.solver.assignment import LabelAssigner, UnsatisfiableError
from repro.solver.formula import FALSE, TRUE, Formula, Or, And, Not, Var


def faceted_bool_to_formula(value: Any) -> Formula:
    """Translate a faceted boolean into a propositional formula.

    ``<k ? hi : lo>`` becomes ``(k ∧ hi') ∨ (¬k ∧ lo')``.  Raw values are
    coerced with ``bool``.
    """
    if isinstance(value, Facet):
        var = Var(value.label.name)
        high = faceted_bool_to_formula(value.high)
        low = faceted_bool_to_formula(value.low)
        return Or(And(var, high), And(Not(var), low)).simplify()
    return TRUE if bool(value) else FALSE


def close_labels(
    value: Any, policy_env: PolicyEnv, viewer: Any
) -> Dict[Label, Formula]:
    """Compute ``closeK`` and evaluate policies along the way.

    Returns a mapping from every reachable label to the propositional formula
    of its evaluated policy.  The closure follows labels that appear in
    policy *results*: a policy that reads sensitive data yields a faceted
    boolean mentioning further labels, which must also be resolved.
    """
    pending: Set[Label] = set(collect_labels(value))
    resolved: Dict[Label, Formula] = {}
    while pending:
        label = pending.pop()
        if label in resolved:
            continue
        outcome = policy_env.evaluate(label, viewer)
        formula = faceted_bool_to_formula(outcome)
        resolved[label] = formula
        for nested in collect_labels(outcome):
            if nested not in resolved:
                pending.add(nested)
        # Formula variables may reference labels not introduced via facets
        # (e.g. policies built directly from formulas); pull those in too.
        for name in formula.free_vars():
            nested_label = Label(hint=name, name=name)
            if nested_label not in resolved:
                pending.add(nested_label)
    return resolved


def resolve_labels(
    value: Any,
    policy_env: PolicyEnv,
    viewer: Any,
    extra_assignment: Optional[Mapping[Label, bool]] = None,
) -> Dict[Label, bool]:
    """Produce a total label assignment for ``value`` and ``viewer``."""
    policies = close_labels(value, policy_env, viewer)
    if not policies:
        return dict(extra_assignment or {})

    # Fast path: no policy result mentions any label, so there are no mutual
    # dependencies and each label can be decided independently.
    if all(not formula.free_vars() for formula in policies.values()):
        assignment = {
            label: formula == TRUE or (formula != FALSE and formula.evaluate({}))
            for label, formula in policies.items()
        }
    else:
        assigner = LabelAssigner()
        by_name = {label.name: formula for label, formula in policies.items()}
        try:
            named = assigner.assign(by_name)
        except UnsatisfiableError as exc:  # pragma: no cover - defensive
            raise ConcretizationError(str(exc)) from exc
        assignment = {label: named[label.name] for label in policies}

    if extra_assignment:
        assignment.update(extra_assignment)
    return assignment


def concretize(
    value: Any,
    viewer: Any,
    policy_env: PolicyEnv,
    extra_assignment: Optional[Mapping[Label, bool]] = None,
) -> Any:
    """Resolve all facets in ``value`` for ``viewer`` according to policies."""
    assignment = resolve_labels(value, policy_env, viewer, extra_assignment)
    return project_assignment(value, assignment)
