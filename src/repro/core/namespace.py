"""Faceted mutable state: cells and namespaces.

The original Jeeves embedding replaces a function's local scope with a
``Namespace`` object so that assignments inside faceted conditionals create
facets instead of overwriting (Section 5.1.1).  We expose the same mechanism
explicitly:

* :class:`Cell` -- a single mutable reference whose writes are guarded by
  the runtime's current path condition (rule F-ASSIGN);
* :class:`Namespace` -- an attribute bag backed by cells, convenient for
  porting imperative code.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, TYPE_CHECKING

from repro.core.facets import UNASSIGNED, mk_facet_branches

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.runtime import JeevesRuntime


class Cell:
    """A mutable reference with facet-aware writes.

    Reading returns the stored (possibly faceted) value.  Writing under a
    non-empty path condition stores ``⟨⟨pc ? new : old⟩⟩`` so that viewers on
    other paths keep observing the old value.
    """

    __slots__ = ("_runtime", "_value")

    def __init__(self, runtime: "JeevesRuntime", initial: Any = UNASSIGNED) -> None:
        self._runtime = runtime
        self._value = initial

    def get(self) -> Any:
        """The current (possibly faceted) contents."""
        return self._value

    def set(self, value: Any) -> None:
        """Store ``value``, guarded by the runtime's current path condition."""
        pc = self._runtime.current_pc()
        if pc:
            self._value = mk_facet_branches(pc.branches(), value, self._value)
        else:
            self._value = value

    def set_raw(self, value: Any) -> None:
        """Store ``value`` ignoring the path condition (trusted code only)."""
        self._value = value

    def __repr__(self) -> str:
        return f"Cell({self._value!r})"


class Namespace:
    """An attribute namespace whose assignments respect path conditions.

    Example::

        ns = runtime.namespace(total=0)
        runtime.jif(secret_flag, lambda: setattr(ns, "total", ns.total + 1))
        # ns.total is now a faceted integer
    """

    def __init__(self, runtime: "JeevesRuntime", **initial: Any) -> None:
        object.__setattr__(self, "_runtime", runtime)
        object.__setattr__(self, "_cells", {})
        for name, value in initial.items():
            self._cells[name] = Cell(runtime, value)

    def __getattr__(self, name: str) -> Any:
        cells: Dict[str, Cell] = object.__getattribute__(self, "_cells")
        if name in cells:
            return cells[name].get()
        raise AttributeError(f"namespace has no attribute {name!r}")

    def __setattr__(self, name: str, value: Any) -> None:
        cells: Dict[str, Cell] = object.__getattribute__(self, "_cells")
        runtime: "JeevesRuntime" = object.__getattribute__(self, "_runtime")
        if name not in cells:
            cells[name] = Cell(runtime, UNASSIGNED)
        cells[name].set(value)

    def __contains__(self, name: str) -> bool:
        return name in object.__getattribute__(self, "_cells")

    def __iter__(self) -> Iterator[str]:
        return iter(object.__getattribute__(self, "_cells"))

    def cell(self, name: str) -> Cell:
        """The underlying cell for an attribute (creates it if missing)."""
        cells: Dict[str, Cell] = object.__getattribute__(self, "_cells")
        runtime: "JeevesRuntime" = object.__getattribute__(self, "_runtime")
        if name not in cells:
            cells[name] = Cell(runtime, UNASSIGNED)
        return cells[name]

    def snapshot(self) -> Dict[str, Any]:
        """A plain dict of the current (possibly faceted) attribute values."""
        cells: Dict[str, Cell] = object.__getattribute__(self, "_cells")
        return {name: cell.get() for name, cell in cells.items()}
