"""Read-set inference: which columns a trusted method reads from its row.

The write decision procedure needs to know, for every
``jacqueline_get_public_*`` method, which *stored columns* of the record
its result depends on: a single-statement ``UPDATE`` of such a column
would leave the save-time public snapshot stale, so the FORM forces the
batched facet rewrite instead (``writes.read_set_forced_columns``).

Inference is a conservative abstract interpretation over the method's
AST.  The row parameter (and simple aliases of it) is tracked; every way
a value can flow out of it either maps to a concrete column or poisons
the result to **TOP** (meaning "may read anything"):

* ``row.attr`` / ``getattr(row, "attr")`` -- the attribute's backing
  column (a foreign key ``author`` reads column ``author_id``);
* ``row == x`` / ``x is row`` / ``row in xs`` -- reads ``jid`` (model
  equality is jid identity);
* ``Other.objects.get(field=row)`` -- reads ``jid`` (the row matches as
  a filter value by key);
* ``row.helper(...)`` / ``helper(row, ...)`` -- recurse into same-class
  methods and same-module helpers (depth-capped, cycle-guarded);
* anything else that touches the row -- an unknown attribute, the row
  escaping into a call the analyzer cannot see, dynamic ``getattr`` --
  is TOP.

TOP is sound, never silent: a TOP public method simply forces the
batched rewrite on every eligible update (and trips lint rule JQL009).

>>> from repro.analysis.facts import facts_for_source
>>> mod = facts_for_source('''
... class Doc(JModel):
...     title = CharField()
...     priority = IntegerField()
...     def jacqueline_get_public_title(self):
...         return "urgent" if self.priority > 3 else "normal"
... ''', "m.py")
>>> model = mod.models[0]
>>> name, node = model.public_methods["title"]
>>> sorted(infer_method_reads(node, model).columns)
['priority']
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.astutils import (
    attach_parents,
    const_str,
    dotted_name,
    positional_params,
)
from repro.analysis.facts import ModelFacts, first_param

#: Recursion depth cap for helper/method inlining.
MAX_DEPTH = 6

#: FORM metadata attributes a method may legitimately read.
_METADATA_ATTRS = ("jid", "jvars")

#: ``X.objects.<verb>`` verbs that use their arguments as filter values.
_QUERY_VERBS = ("get", "filter", "exclude", "get_or_raise", "get_by_jid")

_IDENTITY_OPS = (ast.Eq, ast.NotEq, ast.Is, ast.IsNot, ast.In, ast.NotIn)


class ReadSet:
    """A set of column names, or TOP ("may read anything").

    >>> reads = ReadSet()
    >>> reads.add_column("title"); sorted(reads.columns)
    ['title']
    >>> reads.mark_top("row escaped"); reads.top
    True
    """

    __slots__ = ("columns", "top", "top_reason", "cross_record")

    def __init__(self) -> None:
        self.columns: Set[str] = set()
        self.top = False
        self.top_reason: Optional[str] = None
        #: whether the method dereferences *other* records (fk chains,
        #: ORM queries) -- their columns are beyond this model's rewrites.
        self.cross_record = False

    def add_column(self, column: str) -> None:
        self.columns.add(column)

    def mark_top(self, reason: str) -> None:
        if not self.top:
            self.top = True
            self.top_reason = reason

    def merge(self, other: "ReadSet") -> None:
        self.columns |= other.columns
        self.cross_record = self.cross_record or other.cross_record
        if other.top:
            self.mark_top(other.top_reason or "TOP")

    def report(self):
        """The JSON-friendly rendering: ``"TOP"`` or a sorted column list."""
        return "TOP" if self.top else sorted(self.columns)

    def __repr__(self) -> str:
        return f"ReadSet({self.report()!r})"


def _alias_names(node: ast.FunctionDef, row_param: str) -> Set[str]:
    """Names bound (anywhere) to the bare row value, flow-insensitively."""
    aliases = {row_param}
    changed = True
    while changed:
        changed = False
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id in aliases
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id not in aliases:
                        aliases.add(target.id)
                        changed = True
    return aliases


def infer_method_reads(
    node: Optional[ast.FunctionDef],
    facts: ModelFacts,
    row_param: Optional[str] = None,
    _depth: int = 0,
    _stack: Optional[Tuple[str, ...]] = None,
) -> ReadSet:
    """Infer the stored columns ``node`` reads from its row parameter.

    ``row_param`` defaults to the function's first positional parameter
    (``self`` for public methods, ``row`` for policies).  A lost body
    (``node is None``) or a parameterless function that cannot name the
    row returns TOP / the empty set respectively.
    """
    reads = ReadSet()
    if node is None:
        reads.mark_top("method source unavailable")
        return reads
    if row_param is None:
        row_param = first_param(node)
    if row_param is None:
        return reads
    if _depth > MAX_DEPTH:
        reads.mark_top("helper recursion too deep")
        return reads
    stack = _stack or ()
    if node.name in stack:
        return reads  # recursive helper: the outer frame owns its reads
    stack = stack + (node.name,)

    attach_parents(node)
    aliases = _alias_names(node, row_param)
    consumed: Set[int] = set()

    def consume(name_node: ast.AST) -> None:
        consumed.add(id(name_node))

    def handle_attribute_read(attr: str, attribute: ast.AST, line: int) -> None:
        column = facts.column_for(attr)
        if column is not None:
            reads.add_column(column)
            field = facts.fields.get(attr)
            parent = getattr(attribute, "_parent", None)
            if (
                field is not None
                and field.is_foreign_key
                and isinstance(parent, ast.Attribute)
            ):
                # row.author.level: author_id is read here; .level lives on
                # another record, beyond this model's rewrites.
                reads.cross_record = True
            return
        if attr in _METADATA_ATTRS:
            reads.add_column(attr)
            return
        method = facts.methods.get(attr)
        if method is not None:
            parent = getattr(attribute, "_parent", None)
            if isinstance(parent, ast.Call) and parent.func is attribute:
                reads.merge(
                    infer_method_reads(
                        method, facts, first_param(method), _depth + 1, stack
                    )
                )
                return
            reads.mark_top(f"method reference .{attr} escapes (line {line})")
            return
        reads.mark_top(f"unknown attribute .{attr} (line {line})")

    # Pass 1: structured patterns, consuming the row references they explain.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Name) \
                and sub.value.id in aliases:
            if all(isinstance(t, ast.Name) for t in sub.targets):
                consume(sub.value)  # pure aliasing, tracked by _alias_names
            continue
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name) \
                and sub.value.id in aliases:
            if isinstance(sub.ctx, ast.Load):
                consume(sub.value)
                handle_attribute_read(sub.attr, sub, sub.lineno)
            # Store/Del on a row attribute is a side effect (JQL003's
            # business), not a read; the Name itself is accounted for.
            else:
                consume(sub.value)
            continue
        if isinstance(sub, ast.Compare):
            operands = [sub.left] + list(sub.comparators)
            row_operands = [
                op for op in operands
                if isinstance(op, ast.Name) and op.id in aliases
            ]
            if row_operands and all(
                isinstance(op, _IDENTITY_OPS) for op in sub.ops
            ):
                for operand in row_operands:
                    consume(operand)
                    reads.add_column("jid")
            continue
        if isinstance(sub, ast.Call):
            func_name = dotted_name(sub.func)
            # getattr(row, "attr") / getattr(row, dynamic)
            if func_name == "getattr" and sub.args \
                    and isinstance(sub.args[0], ast.Name) \
                    and sub.args[0].id in aliases:
                consume(sub.args[0])
                attr = const_str(sub.args[1]) if len(sub.args) > 1 else None
                if attr is None:
                    reads.mark_top(f"dynamic getattr (line {sub.lineno})")
                else:
                    handle_attribute_read(attr, sub, sub.lineno)
                continue
            row_args = [
                a for a in sub.args if isinstance(a, ast.Name) and a.id in aliases
            ]
            row_kwargs = [
                kw for kw in sub.keywords
                if isinstance(kw.value, ast.Name) and kw.value.id in aliases
            ]
            if not row_args and not row_kwargs:
                continue
            # Other.objects.get(author=row): the row matches by record key.
            if func_name is not None and ".objects." in func_name \
                    and func_name.rsplit(".", 1)[-1] in _QUERY_VERBS:
                for kw in row_kwargs:
                    consume(kw.value)
                    reads.add_column("jid")
                for arg in row_args:
                    consume(arg)
                    reads.add_column("jid")
                reads.cross_record = True
                continue
            # helper(row, ...): inline same-module helpers.
            helper = facts.helper(func_name) if func_name else None
            if helper is not None:
                params = positional_params(helper)
                bound: List[str] = []
                for index, arg in enumerate(sub.args):
                    if arg in row_args and index < len(params):
                        consume(arg)
                        bound.append(params[index])
                for kw in row_kwargs:
                    if kw.arg is not None and kw.arg in params:
                        consume(kw.value)
                        bound.append(kw.arg)
                for param in bound:
                    reads.merge(
                        infer_method_reads(helper, facts, param, _depth + 1, stack)
                    )
                continue
            # The row escapes into a call the analyzer cannot see.
            target = func_name or "<dynamic>"
            reads.mark_top(f"row escapes into {target}() (line {sub.lineno})")
            for arg in row_args:
                consume(arg)
            for kw in row_kwargs:
                consume(kw.value)
            continue

    # Pass 2: any remaining bare use of the row is an escape.
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Name)
            and sub.id in aliases
            and id(sub) not in consumed
            and isinstance(sub.ctx, ast.Load)
        ):
            reads.mark_top(f"row value escapes (line {sub.lineno})")
            break
    return reads


def model_read_sets(facts: ModelFacts) -> Dict[str, ReadSet]:
    """Read sets of every trusted method on a model, by method name.

    Covers the ``jacqueline_get_public_*`` methods *and* the ``@label_for``
    policies (policies re-evaluate on every read so they cannot go stale,
    but their read sets feed the pushdown classifier and the report).
    """
    result: Dict[str, ReadSet] = {}
    for _field, (method_name, node) in sorted(facts.public_methods.items()):
        result[method_name] = infer_method_reads(node, facts)
    for group in facts.groups:
        if group.method_name not in result:
            result[group.method_name] = infer_method_reads(group.node, facts)
    return result


def public_read_columns(facts: ModelFacts) -> Optional[FrozenSet[str]]:
    """The union of all public methods' read columns; ``None`` means TOP."""
    union: Set[str] = set()
    for _field, (_name, node) in facts.public_methods.items():
        reads = infer_method_reads(node, facts)
        if reads.top:
            return None
        union |= reads.columns
    return frozenset(union)


def public_read_columns_for_model(model) -> Optional[FrozenSet[str]]:
    """Runtime entry: inferred public read columns of a live model.

    ``None`` is TOP -- returned both when inference gives up and when it
    *fails* (any exception), so the write decision procedure errs toward
    the always-correct batched rewrite, never toward staleness.
    """
    from repro.analysis.facts import facts_for_model

    try:
        return public_read_columns(facts_for_model(model))
    except Exception:
        return None
