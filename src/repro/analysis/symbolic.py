"""Symbolic policy compilation: typed predicate IR from policy bodies.

A policy ``def jacqueline_restrict_f(row, viewer)`` is trusted code; this
module runs a small abstract interpreter over its AST and produces a
normalized predicate IR — and/or/not trees over :class:`Atom` leaves
``(lhs op rhs)`` whose value sources are constants (:class:`ConstVal`),
own-row columns (:class:`OwnColumn`), viewer attribute chains
(:class:`ViewerAttr`), or the row/viewer objects themselves.  Anything the
interpreter cannot model soundly becomes :class:`Top` ("unknown"), and
every consumer treats TOP conservatively: pushdown falls back to the label
store or the Python path, and the unsatisfiability check treats it as
satisfiable.

The interpreter is *typed*: own-row attribute reads resolve through the
model's :class:`~repro.analysis.types.TypeEnv`, so each :class:`OwnColumn`
carries its value kind and nullability — the information pushdown needs to
decide whether an atom can be rendered with exact SQL semantics.

>>> from repro.analysis.facts import facts_for_source
>>> mod = facts_for_source('''
... class Doc(JModel):
...     title = CharField()
...     owner = ForeignKey("User")
...     @staticmethod
...     @label_for("title")
...     def restrict_title(doc, ctxt):
...         return ctxt is not None and doc.owner_id == ctxt.jid
... ''', "m.py")
>>> model = mod.models[0]
>>> pred = compile_policy(model.groups[0], model)
>>> print(predicate_text(pred))
(viewer is not None and owner_id == viewer.jid)
>>> sorted(own_columns(pred))
['owner_id']
>>> contains_top(pred)
False

Unsatisfiable predicates are detected by a bounded DNF expansion:

>>> bad = And((Atom("eq", OwnColumn("n", "int"), ConstVal(1)),
...            Atom("eq", OwnColumn("n", "int"), ConstVal(2))))
>>> [atom_text(a) for a in unsatisfiable(bad)]
['n == 1', 'n == 2']
>>> unsatisfiable(Atom("eq", OwnColumn("n", "int"), ConstVal(1))) is None
True
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.astutils import const_str, dotted_name, positional_params
from repro.analysis.facts import GroupFacts, ModelFacts
from repro.analysis.types import TypeEnv, type_env

#: Maximum helper-inlining depth (mirrors read-set inference).
MAX_DEPTH = 6

#: Maximum number of DNF conjuncts explored by the satisfiability check.
DNF_LIMIT = 128


# ---------------------------------------------------------------------------
# IR node types
# ---------------------------------------------------------------------------


class Source:
    """Base class of atom value sources."""

    __slots__ = ()


@dataclass(frozen=True)
class ConstVal(Source):
    """A Python constant (lists/tuples/sets are stored as tuples)."""

    value: Any


@dataclass(frozen=True)
class OwnColumn(Source):
    """A column of the row being guarded, with its inferred type."""

    column: str
    kind: str = "unknown"
    nullable: bool = True


@dataclass(frozen=True)
class ViewerAttr(Source):
    """A ``viewer.a.b`` attribute chain, resolved at bind time."""

    path: Tuple[str, ...]
    has_default: bool = False
    default: Any = None


@dataclass(frozen=True)
class ViewerSelf(Source):
    """The viewer object itself (``ctxt is None``, ``ctxt == row``)."""


@dataclass(frozen=True)
class RowSelf(Source):
    """The guarded row itself; equality against it compares ``jid``."""


class Pred:
    """Base class of predicate IR nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Pred):
    value: bool


@dataclass(frozen=True)
class Top(Pred):
    """Unknown — the interpreter could not model this subtree."""

    reason: str = ""


@dataclass(frozen=True)
class And(Pred):
    items: Tuple[Pred, ...]


@dataclass(frozen=True)
class Or(Pred):
    items: Tuple[Pred, ...]


@dataclass(frozen=True)
class Not(Pred):
    item: Pred


@dataclass(frozen=True)
class Atom(Pred):
    """One comparison leaf.  ``rhs`` is ``None`` for unary ops."""

    op: str  # eq ne lt le gt ge in not-in is-null not-null prefix truthy
    lhs: Source
    rhs: Optional[Source] = None


#: Exact negations used for NNF conversion (prefix/truthy have none).
_NEG = {
    "eq": "ne",
    "ne": "eq",
    "lt": "ge",
    "ge": "lt",
    "gt": "le",
    "le": "gt",
    "in": "not-in",
    "not-in": "in",
    "is-null": "not-null",
    "not-null": "is-null",
}

_MIRROR = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt", "le": "ge", "ge": "le"}

_COMPARE_OPS = {
    ast.Eq: "eq",
    ast.NotEq: "ne",
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
    ast.In: "in",
    ast.NotIn: "not-in",
}

#: Row metadata columns the IR may not read (jvars encodes the labels
#: themselves; reading it inside a policy is circular — see JQL005).
_FORBIDDEN_COLUMNS = frozenset({"jvars"})


# ---------------------------------------------------------------------------
# Abstract interpreter
# ---------------------------------------------------------------------------

_ROW = "row"
_VIEWER = "viewer"

Binding = Union[str, Source, None]


class _Compiler:
    """Interprets one function body under a parameter-binding scope."""

    def __init__(
        self,
        facts: ModelFacts,
        env: TypeEnv,
        scope: Dict[str, Binding],
        depth: int,
        stack: Tuple[str, ...],
    ) -> None:
        self.facts = facts
        self.env = env
        self.scope = scope
        self.depth = depth
        self.stack = stack
        self.locals: Dict[str, ast.expr] = {}
        self._resolving: Set[str] = set()

    # -- statements ---------------------------------------------------

    def run(self, node: ast.FunctionDef) -> Pred:
        for stmt in node.body:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                    self.locals[stmt.targets[0].id] = stmt.value
                    continue
                return Top("unsupported assignment")
            if isinstance(stmt, ast.Return):
                if stmt.value is None:
                    return Const(False)
                return self.boolean(stmt.value)
            return Top(f"unsupported statement {type(stmt).__name__}")
        return Top("no return statement")

    # -- boolean interpretation ---------------------------------------

    def boolean(self, node: ast.expr) -> Pred:
        if isinstance(node, ast.BoolOp):
            items = tuple(self.boolean(value) for value in node.values)
            return And(items) if isinstance(node.op, ast.And) else Or(items)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return Not(self.boolean(node.operand))
        if isinstance(node, ast.Constant):
            return Const(bool(node.value))
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.IfExp):
            cond = self.boolean(node.test)
            return Or((
                And((cond, self.boolean(node.body))),
                And((Not(cond), self.boolean(node.orelse))),
            ))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name) and node.id in self.locals:
            resolved = self._local(node.id)
            if resolved is not None:
                return self.boolean(resolved)
            return Top(f"unresolvable local {node.id!r}")
        source = self.source(node)
        if isinstance(source, ConstVal):
            return Const(bool(source.value))
        if isinstance(source, ViewerAttr):
            return Atom("truthy", source)
        if isinstance(source, OwnColumn):
            if source.kind == "bool":
                return Atom("truthy", source)
            return Top(f"truthiness of non-boolean column {source.column!r}")
        return Top(f"unsupported expression {type(node).__name__}")

    def _local(self, name: str) -> Optional[ast.expr]:
        if name in self._resolving:
            return None
        return self.locals.get(name)

    def _compare(self, node: ast.Compare) -> Pred:
        if len(node.ops) != 1:
            return Top("chained comparison")
        op_node = node.ops[0]
        left = self.source(node.left)
        right = self.source(node.comparators[0])
        if isinstance(op_node, (ast.Is, ast.IsNot)):
            negated = isinstance(op_node, ast.IsNot)
            return self._identity(left, right, negated)
        op = _COMPARE_OPS.get(type(op_node))
        if op is None:
            return Top(f"unsupported comparison {type(op_node).__name__}")
        if op in ("in", "not-in"):
            if left is None or not isinstance(right, ConstVal):
                return Top("membership test on non-constant collection")
            if not isinstance(right.value, tuple):
                return Top("membership test on non-collection constant")
            return Atom(op, left, right)
        if left is None or right is None:
            return Top("operand is not a column, constant, or viewer chain")
        # ``x == None`` behaves as a null test for our value types.
        if isinstance(right, ConstVal) and right.value is None and op in ("eq", "ne"):
            return self._identity(left, right, op == "ne")
        if isinstance(left, ConstVal) and left.value is None and op in ("eq", "ne"):
            return self._identity(right, left, op == "ne")
        return self._binary(op, left, right)

    def _identity(
        self, left: Optional[Source], right: Optional[Source], negated: bool
    ) -> Pred:
        op = "not-null" if negated else "is-null"
        if isinstance(right, ConstVal) and right.value is None:
            right = None
        elif isinstance(left, ConstVal) and left.value is None:
            left, right = right, None
        else:
            # ``viewer is row`` — identity between the two objects.
            if {type(left), type(right)} == {RowSelf, ViewerSelf}:
                return Atom("ne" if negated else "eq", RowSelf(), ViewerSelf())
            return Top("identity test between non-None operands")
        if left is None:
            return Top("null test on unmodelled operand")
        if isinstance(left, ConstVal):
            return Const((left.value is None) != negated)
        return Atom(op, left)

    def _binary(self, op: str, left: Source, right: Source) -> Pred:
        # Canonical form keeps the own-row column on the left-hand side.
        if isinstance(right, OwnColumn) and not isinstance(left, OwnColumn):
            mirrored = _MIRROR.get(op)
            if mirrored is None:
                return Top(f"cannot mirror operator {op!r}")
            left, right, op = right, left, mirrored
        if {type(left), type(right)} == {RowSelf, ViewerSelf} and op in ("eq", "ne"):
            return Atom(op, RowSelf(), ViewerSelf())
        if isinstance(left, (RowSelf, ViewerSelf)) or isinstance(
            right, (RowSelf, ViewerSelf)
        ):
            return Top("object compared against a value")
        return Atom(op, left, right)

    def _call(self, node: ast.Call) -> Pred:
        if node.keywords:
            return Top("call with keyword arguments")
        # row.column.startswith(prefix) / viewer.attr.startswith(prefix)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "startswith"
            and len(node.args) == 1
        ):
            target = self.source(node.func.value)
            prefix = self.source(node.args[0])
            if target is None or prefix is None:
                return Top("startswith on unmodelled operands")
            if isinstance(target, (RowSelf, ViewerSelf)) or isinstance(
                prefix, (RowSelf, ViewerSelf)
            ):
                return Top("startswith on a non-string object")
            return Atom("prefix", target, prefix)
        name = dotted_name(node.func)
        if name is None or "." in name:
            return Top("unsupported call target")
        if name == "getattr":
            source = self.source(node)
            if isinstance(source, ViewerAttr):
                return Atom("truthy", source)
            return Top("getattr in boolean position")
        if name in self.stack or self.depth >= MAX_DEPTH:
            return Top(f"helper {name!r} recursion or depth limit")
        helper = self.facts.helper(name)
        if helper is None:
            return Top(f"unknown helper {name!r}")
        params = positional_params(helper)
        if len(params) != len(node.args):
            return Top(f"helper {name!r} arity mismatch")
        scope: Dict[str, Binding] = {}
        for param, arg in zip(params, node.args):
            arg_source = self.source(arg)
            if isinstance(arg_source, RowSelf):
                scope[param] = _ROW
            elif isinstance(arg_source, ViewerSelf):
                scope[param] = _VIEWER
            else:
                scope[param] = arg_source  # Source or None (= unmodelled)
        child = _Compiler(
            self.facts, self.env, scope, self.depth + 1, self.stack + (name,)
        )
        return child.run(helper)

    # -- source resolution --------------------------------------------

    def source(self, node: ast.expr) -> Optional[Source]:
        if isinstance(node, ast.Constant):
            return ConstVal(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            values = []
            for elt in node.elts:
                if not isinstance(elt, ast.Constant):
                    return None
                values.append(elt.value)
            return ConstVal(tuple(values))
        if isinstance(node, ast.Name):
            binding = self.scope.get(node.id)
            if binding == _ROW:
                return RowSelf()
            if binding == _VIEWER:
                return ViewerSelf()
            if isinstance(binding, Source):
                return binding
            if node.id in self.scope:
                return None  # unmodelled helper argument
            expr = self._local(node.id)
            if expr is not None:
                self._resolving.add(node.id)
                try:
                    return self.source(expr)
                finally:
                    self._resolving.discard(node.id)
            return None
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Call):
            return self._getattr_call(node)
        return None

    def _attribute(self, node: ast.Attribute) -> Optional[Source]:
        path: List[str] = []
        base: ast.expr = node
        while isinstance(base, ast.Attribute):
            path.append(base.attr)
            base = base.value
        path.reverse()
        root = self.source(base)
        if isinstance(root, RowSelf):
            if len(path) != 1:
                return None  # cross-record traversal
            return self._own_column(path[0])
        if isinstance(root, ViewerSelf):
            return ViewerAttr(tuple(path))
        if isinstance(root, ViewerAttr):
            return ViewerAttr(root.path + tuple(path))
        return None

    def _getattr_call(self, node: ast.Call) -> Optional[Source]:
        if (
            dotted_name(node.func) != "getattr"
            or node.keywords
            or len(node.args) not in (2, 3)
        ):
            return None
        attr = const_str(node.args[1])
        if attr is None:
            return None
        root = self.source(node.args[0])
        if isinstance(root, RowSelf):
            return self._own_column(attr)
        if isinstance(root, (ViewerSelf, ViewerAttr)):
            prefix = root.path if isinstance(root, ViewerAttr) else ()
            if len(node.args) == 3:
                if not isinstance(node.args[2], ast.Constant):
                    return None
                return ViewerAttr(prefix + (attr,), True, node.args[2].value)
            return ViewerAttr(prefix + (attr,))
        return None

    def _own_column(self, attr: str) -> Optional[Source]:
        if attr == "jid":
            return OwnColumn("jid", "int", nullable=False)
        column = self.facts.column_for(attr)
        if column is None or column in _FORBIDDEN_COLUMNS:
            return None
        ctype = self.env.lookup(column)
        if ctype is None:
            return OwnColumn(column)
        return OwnColumn(column, ctype.kind, ctype.nullable)


def compile_policy(
    group: GroupFacts, facts: ModelFacts, env: Optional[TypeEnv] = None
) -> Pred:
    """Compile one policy group's body to normalized predicate IR.

    Never raises: any modelling failure yields :class:`Top` with a reason.
    """
    node = group.node
    if node is None:
        return Top("policy source unavailable")
    params = positional_params(node)
    if len(params) < 2:
        return Top("policy does not take (row, viewer) parameters")
    if env is None:
        env = type_env(facts)
    scope: Dict[str, Binding] = {params[0]: _ROW, params[1]: _VIEWER}
    try:
        compiler = _Compiler(facts, env, scope, 0, (group.method_name,))
        return normalize(compiler.run(node))
    except RecursionError:  # pragma: no cover - defensive
        return Top("policy too deeply nested")


# ---------------------------------------------------------------------------
# Normalization and queries over the IR
# ---------------------------------------------------------------------------


def normalize(pred: Pred) -> Pred:
    """Flatten nested and/or, fold constants, push double negation."""
    if isinstance(pred, (And, Or)):
        is_and = isinstance(pred, And)
        absorbing, neutral = (False, True) if is_and else (True, False)
        items: List[Pred] = []
        for item in pred.items:
            norm = normalize(item)
            if isinstance(norm, Const):
                if norm.value == absorbing:
                    return Const(absorbing)
                continue  # neutral element
            if isinstance(norm, And if is_and else Or):
                items.extend(norm.items)
            elif norm not in items:
                items.append(norm)
        if not items:
            return Const(neutral)
        if len(items) == 1:
            return items[0]
        return And(tuple(items)) if is_and else Or(tuple(items))
    if isinstance(pred, Not):
        inner = normalize(pred.item)
        if isinstance(inner, Const):
            return Const(not inner.value)
        if isinstance(inner, Not):
            return inner.item
        if isinstance(inner, Top):
            return inner
        if isinstance(inner, Atom) and inner.op in _NEG:
            return Atom(_NEG[inner.op], inner.lhs, inner.rhs)
        return Not(inner)
    if isinstance(pred, Atom):
        return _fold_atom(pred)
    return pred


def _fold_atom(atom: Atom) -> Pred:
    """Constant-fold atoms whose operands are all constants."""
    lhs, rhs = atom.lhs, atom.rhs
    if not isinstance(lhs, ConstVal):
        return atom
    try:
        if atom.op == "truthy":
            return Const(bool(lhs.value))
        if atom.op == "is-null":
            return Const(lhs.value is None)
        if atom.op == "not-null":
            return Const(lhs.value is not None)
        if not isinstance(rhs, ConstVal):
            return atom
        pairs = {
            "eq": lambda a, b: a == b,
            "ne": lambda a, b: a != b,
            "lt": lambda a, b: a < b,
            "le": lambda a, b: a <= b,
            "gt": lambda a, b: a > b,
            "ge": lambda a, b: a >= b,
            "in": lambda a, b: a in b,
            "not-in": lambda a, b: a not in b,
            "prefix": lambda a, b: a.startswith(b),
        }
        fold = pairs.get(atom.op)
        if fold is None:
            return atom
        return Const(bool(fold(lhs.value, rhs.value)))
    except (TypeError, AttributeError):
        return atom


def iter_atoms(pred: Pred) -> Iterator[Atom]:
    if isinstance(pred, Atom):
        yield pred
    elif isinstance(pred, (And, Or)):
        for item in pred.items:
            yield from iter_atoms(item)
    elif isinstance(pred, Not):
        yield from iter_atoms(pred.item)


def contains_top(pred: Pred) -> bool:
    if isinstance(pred, Top):
        return True
    if isinstance(pred, (And, Or)):
        return any(contains_top(item) for item in pred.items)
    if isinstance(pred, Not):
        return contains_top(pred.item)
    return False


def own_columns(pred: Pred) -> Set[str]:
    """Backing columns the predicate reads from the guarded row itself."""
    columns: Set[str] = set()
    for atom in iter_atoms(pred):
        for source in (atom.lhs, atom.rhs):
            if isinstance(source, OwnColumn):
                columns.add(source.column)
            elif isinstance(source, RowSelf):
                columns.update(("jid",))
    return columns


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def source_text(source: Optional[Source]) -> str:
    if source is None:
        return "?"
    if isinstance(source, ConstVal):
        return repr(source.value)
    if isinstance(source, OwnColumn):
        return source.column
    if isinstance(source, ViewerAttr):
        return "viewer." + ".".join(source.path)
    if isinstance(source, ViewerSelf):
        return "viewer"
    if isinstance(source, RowSelf):
        return "row"
    return "?"


_OP_TEXT = {
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "in": "in", "not-in": "not in",
}


def atom_text(atom: Atom) -> str:
    """Human-readable rendering of one atom (used by JQL010 messages)."""
    lhs = source_text(atom.lhs)
    if atom.op == "is-null":
        return f"{lhs} is None"
    if atom.op == "not-null":
        return f"{lhs} is not None"
    if atom.op == "truthy":
        return f"bool({lhs})"
    if atom.op == "prefix":
        return f"{lhs}.startswith({source_text(atom.rhs)})"
    return f"{lhs} {_OP_TEXT[atom.op]} {source_text(atom.rhs)}"


def predicate_text(pred: Pred) -> str:
    """Human-readable rendering of a whole predicate.

    >>> predicate_text(Or((Const(True), Top("x"))))
    '(True or TOP[x])'
    """
    if isinstance(pred, Const):
        return str(pred.value)
    if isinstance(pred, Top):
        return f"TOP[{pred.reason}]" if pred.reason else "TOP"
    if isinstance(pred, And):
        return "(" + " and ".join(predicate_text(i) for i in pred.items) + ")"
    if isinstance(pred, Or):
        return "(" + " or ".join(predicate_text(i) for i in pred.items) + ")"
    if isinstance(pred, Not):
        return f"not {predicate_text(pred.item)}"
    return atom_text(pred)


def _source_json(source: Optional[Source]) -> Any:
    if source is None:
        return None
    if isinstance(source, ConstVal):
        value = source.value
        if isinstance(value, tuple):
            value = list(value)
        return {"const": value}
    if isinstance(source, OwnColumn):
        return {"column": source.column, "type": source.kind,
                "nullable": source.nullable}
    if isinstance(source, ViewerAttr):
        out: Dict[str, Any] = {"viewer": ".".join(source.path)}
        if source.has_default:
            out["default"] = source.default
        return out
    if isinstance(source, ViewerSelf):
        return {"viewer-self": True}
    if isinstance(source, RowSelf):
        return {"row-self": True}
    return None


def predicate_json(pred: Pred) -> Any:
    """JSON-serializable form of the IR (stable across runs).

    >>> predicate_json(Atom("eq", OwnColumn("owner_id", "int"),
    ...                     ViewerAttr(("jid",))))
    {'atom': 'eq', 'lhs': {'column': 'owner_id', 'type': 'int', \
'nullable': True}, 'rhs': {'viewer': 'jid'}}
    """
    if isinstance(pred, Const):
        return {"const": pred.value}
    if isinstance(pred, Top):
        return {"top": pred.reason}
    if isinstance(pred, And):
        return {"and": [predicate_json(item) for item in pred.items]}
    if isinstance(pred, Or):
        return {"or": [predicate_json(item) for item in pred.items]}
    if isinstance(pred, Not):
        return {"not": predicate_json(pred.item)}
    if isinstance(pred, Atom):
        out: Dict[str, Any] = {"atom": pred.op, "lhs": _source_json(pred.lhs)}
        if pred.rhs is not None or pred.op not in (
            "is-null", "not-null", "truthy"
        ):
            out["rhs"] = _source_json(pred.rhs)
        return out
    return {"top": "unserializable"}


# ---------------------------------------------------------------------------
# Satisfiability (sound in the unsat direction only)
# ---------------------------------------------------------------------------

#: A literal is an atom with a polarity; negative literals only survive NNF
#: for ops without an exact negation (prefix, truthy).
_Literal = Tuple[bool, Atom]


def _nnf(pred: Pred, negate: bool) -> Pred:
    if isinstance(pred, Const):
        return Const(pred.value != negate)
    if isinstance(pred, Top):
        return pred
    if isinstance(pred, Not):
        return _nnf(pred.item, not negate)
    if isinstance(pred, And):
        items = tuple(_nnf(item, negate) for item in pred.items)
        return Or(items) if negate else And(items)
    if isinstance(pred, Or):
        items = tuple(_nnf(item, negate) for item in pred.items)
        return And(items) if negate else Or(items)
    assert isinstance(pred, Atom)
    if negate and pred.op in _NEG:
        return Atom(_NEG[pred.op], pred.lhs, pred.rhs)
    return Not(pred) if negate else pred


def _dnf(pred: Pred) -> Optional[List[List[Pred]]]:
    """Lists of literal lists; ``None`` when the expansion exceeds the cap.

    Literals are Atom, Not(Atom), Top, or Const nodes.
    """
    if isinstance(pred, Or):
        conjuncts: List[List[Pred]] = []
        for item in pred.items:
            sub = _dnf(item)
            if sub is None:
                return None
            conjuncts.extend(sub)
            if len(conjuncts) > DNF_LIMIT:
                return None
        return conjuncts
    if isinstance(pred, And):
        conjuncts = [[]]
        for item in pred.items:
            sub = _dnf(item)
            if sub is None:
                return None
            conjuncts = [left + right for left in conjuncts for right in sub]
            if len(conjuncts) > DNF_LIMIT:
                return None
        return conjuncts
    return [[pred]]


def _source_key(source: Optional[Source]) -> Optional[str]:
    if isinstance(source, OwnColumn):
        return f"col:{source.column}"
    if isinstance(source, ViewerAttr):
        return "viewer:" + ".".join(source.path)
    if isinstance(source, ViewerSelf):
        return "viewer-self"
    if isinstance(source, RowSelf):
        return "row-self"
    return None


def _const(source: Optional[Source]) -> Tuple[bool, Any]:
    if isinstance(source, ConstVal):
        return True, source.value
    return False, None


def _conflicting(a: Atom, b: Atom) -> bool:
    """True only when the two atoms definitely cannot both hold."""
    key = _source_key(a.lhs)
    if key is None or key != _source_key(b.lhs):
        return False
    a_const, a_val = _const(a.rhs)
    b_const, b_val = _const(b.rhs)
    ops = {a.op, b.op}
    try:
        if ops == {"is-null", "not-null"}:
            return True
        if "is-null" in ops:
            other = b if a.op == "is-null" else a
            o_const, o_val = _const(other.rhs)
            if other.op == "eq" and o_const and o_val is not None:
                return True
            if other.op == "in" and o_const and None not in o_val:
                return True
            return False
        if a.op == "eq" and b.op == "eq":
            return a_const and b_const and a_val != b_val
        if ops == {"eq", "ne"}:
            eq, ne = (a, b) if a.op == "eq" else (b, a)
            return eq.rhs == ne.rhs and eq.rhs is not None
        if ops == {"eq", "in"} or ops == {"eq", "not-in"}:
            eq, mem = (a, b) if a.op == "eq" else (b, a)
            e_const, e_val = _const(eq.rhs)
            m_const, m_val = _const(mem.rhs)
            if not (e_const and m_const):
                return False
            inside = e_val in m_val
            return not inside if mem.op == "in" else inside
        if a.op == "in" and b.op == "in":
            if a_const and b_const:
                return not set(a_val) & set(b_val)
            return False
        if ops == {"in", "not-in"}:
            pos, neg = (a, b) if a.op == "in" else (b, a)
            p_const, p_val = _const(pos.rhs)
            n_const, n_val = _const(neg.rhs)
            return p_const and n_const and set(p_val) <= set(n_val)
        range_ops = {"eq", "lt", "le", "gt", "ge"}
        if ops <= range_ops and a_const and b_const:
            low, low_strict = None, False
            high, high_strict = None, False
            for atom, value in ((a, a_val), (b, b_val)):
                if atom.op in ("gt", "ge"):
                    low, low_strict = value, atom.op == "gt"
                elif atom.op in ("lt", "le"):
                    high, high_strict = value, atom.op == "lt"
                else:  # eq acts as both bounds
                    low = high = value
            if low is None or high is None:
                return False
            if low > high:
                return True
            return low == high and (low_strict or high_strict)
    except TypeError:
        return False
    return False


def unsatisfiable(pred: Pred, limit: int = DNF_LIMIT) -> Optional[List[Atom]]:
    """Offending atoms when the predicate can never hold, else ``None``.

    Sound in one direction only: a non-``None`` result means *definitely*
    unsatisfiable; ``None`` means satisfiable **or** unknown (TOP subtrees,
    expansion over ``limit`` conjuncts, or incomparable constants).
    """
    norm = normalize(pred)
    if isinstance(norm, Const):
        return [] if not norm.value else None
    conjuncts = _dnf(_nnf(norm, False))
    if conjuncts is None or not conjuncts:
        return None
    offending: List[Atom] = []
    for conjunct in conjuncts:
        if any(isinstance(lit, Top) for lit in conjunct):
            return None
        if any(isinstance(lit, Const) and lit.value for lit in conjunct):
            return None
        witnesses: Optional[Tuple[Atom, ...]] = None
        if any(isinstance(lit, Const) and not lit.value for lit in conjunct):
            witnesses = ()
        atoms = [lit for lit in conjunct if isinstance(lit, Atom)]
        negated = [lit.item for lit in conjunct if isinstance(lit, Not)]
        if witnesses is None:
            for i, first in enumerate(atoms):
                if witnesses is not None:
                    break
                if first in negated:
                    witnesses = (first,)
                    break
                for second in atoms[i + 1:]:
                    if _conflicting(first, second):
                        witnesses = (first, second)
                        break
        if witnesses is None:
            return None  # this conjunct may be satisfiable
        for atom in witnesses:
            if atom not in offending:
                offending.append(atom)
    return offending
