"""Diagnostics: findings, severities and reports for the static analyzer.

A :class:`Diagnostic` is one finding of one rule at one source location.
:class:`Report` collects findings (and the policy classifications computed
alongside them), renders them as text or JSON, and turns them into the
CLI's exit code.

>>> d = Diagnostic("JQL001", Severity.ERROR, "no such field", "m.py", 3)
>>> d.is_error
True
>>> print(d.format())
m.py:3: JQL001 error: no such field
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings are soundness or correctness problems (the CLI exits
    nonzero); ``WARNING`` findings are likely omissions or heuristic smells
    (nonzero only under ``--strict``).

    >>> Severity.ERROR.value
    'error'
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule code, a severity, a message and a location."""

    code: str
    severity: Severity
    message: str
    file: str
    line: int
    model: Optional[str] = None
    symbol: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def sort_key(self):
        return (self.file, self.line, self.code, self.message)

    def format(self) -> str:
        """The one-line human rendering of this finding.

        >>> print(Diagnostic("JQL004", Severity.ERROR, "leaky read",
        ...                  "models.py", 12, "Paper", "get_public_x").format())
        models.py:12: JQL004 error: leaky read [Paper.get_public_x]
        """
        where = ""
        if self.model and self.symbol:
            where = f" [{self.model}.{self.symbol}]"
        elif self.model:
            where = f" [{self.model}]"
        return (
            f"{self.file}:{self.line}: {self.code} {self.severity.value}: "
            f"{self.message}{where}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "model": self.model,
            "symbol": self.symbol,
        }


@dataclass
class Report:
    """The full outcome of one analyzer run.

    ``diagnostics`` are rule findings; ``policies`` are the classifier's
    machine-readable policy shapes (the planning input for policy
    pushdown); ``read_sets`` maps ``Model.method`` to the inferred column
    read set (``"TOP"`` when inference gave up).
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    policies: List[Dict[str, Any]] = field(default_factory=list)
    read_sets: Dict[str, Any] = field(default_factory=dict)
    files: List[str] = field(default_factory=list)
    models: List[str] = field(default_factory=list)

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    def sorted_diagnostics(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def exit_code(self, strict: bool = False) -> int:
        """The CLI exit code: 0 clean, 1 findings (errors; warnings too
        under ``strict``).

        >>> Report().exit_code()
        0
        """
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def summary(self) -> Dict[str, Any]:
        return {
            "files": len(self.files),
            "models": len(self.models),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def to_text(self) -> str:
        lines = [d.format() for d in self.sorted_diagnostics()]
        s = self.summary()
        lines.append(
            f"{s['files']} file(s), {s['models']} model(s): "
            f"{s['errors']} error(s), {s['warnings']} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "diagnostics": [d.to_json() for d in self.sorted_diagnostics()],
            "policies": self.policies,
            "read_sets": self.read_sets,
            "summary": self.summary(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
