"""The JQL lint rules: static checks on the Jacqueline trusted surface.

The paper's guarantee -- policy-agnostic application code -- rests on two
disciplines nothing enforced until now: policies and
``jacqueline_get_public_*`` methods are the *only* code that decides
visibility (and must be well-formed side-effect-free functions of the row
and viewer), and application code never touches the faceted encoding
(``jvars``, facet internals) directly.  Each rule checks one way those
disciplines break:

====== ======== =========================================================
code   severity finding
====== ======== =========================================================
JQL001 error    ``@label_for`` names a field the model does not declare
JQL002 warning  policied field has no ``jacqueline_get_public_*`` method
JQL003 error    side effect inside a policy / public-facet method
JQL004 error    public method reads another label group's guarded field
JQL005 error    code touches the faceted encoding (``.jvars`` access,
                ``.jid`` assignment, ``_facet_rows``/``_db_row``/``_meta``)
JQL006 warning  branching on a policied field outside a viewer context
                (name heuristic); promoted to **error** when the receiver
                is *typed* -- bound from an unambiguous ``Model.objects``
                query whose type environment declares the field policied
JQL007 error    policy/public method has the wrong arity
JQL008 warning  public method depends on *other* records (fk chains, ORM
                queries) -- cross-record staleness this model's rewrites
                cannot repair
JQL009 warning  public method's read set is TOP -- every eligible update
                will take the batched rewrite
JQL010 error    policy predicate is unsatisfiable -- the compiled IR
                proves the label can never be granted, so every viewer
                sees only the public facet
====== ======== =========================================================

>>> from repro.analysis.facts import facts_for_source
>>> bad = facts_for_source('''
... class Doc(JModel):
...     title = CharField()
...     @staticmethod
...     @label_for("subject")
...     def restrict(row, viewer):
...         return viewer is not None
... ''', "bad.py")
>>> [d.code for d in run_rules(bad)]
['JQL001']
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.astutils import (
    ancestors,
    dotted_name,
    enclosing_function,
    positional_params,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.facts import ModelFacts, ModuleFacts
from repro.analysis.readsets import infer_method_reads
from repro.analysis.symbolic import atom_text, compile_policy, unsatisfiable

#: code -> (severity, one-line summary); the rule catalogue.
RULES: Dict[str, Tuple[Severity, str]] = {
    "JQL001": (Severity.ERROR, "label_for names a nonexistent field"),
    "JQL002": (Severity.WARNING, "policied field missing its public method"),
    "JQL003": (Severity.ERROR, "side effect inside a policy or public method"),
    "JQL004": (Severity.ERROR, "public method reads another group's guarded field"),
    "JQL005": (Severity.ERROR, "code touches the faceted encoding internals"),
    "JQL006": (Severity.WARNING, "branching on a policied field outside a viewer context"),
    "JQL007": (Severity.ERROR, "policy or public method has the wrong arity"),
    "JQL008": (Severity.WARNING, "public method depends on other records"),
    "JQL009": (Severity.WARNING, "public method read set is TOP"),
    "JQL010": (Severity.ERROR, "policy predicate is unsatisfiable"),
}

#: Call leaves that mutate persistent or record state.
_MUTATING_CALLS = frozenset({
    "save", "delete", "update", "create", "bulk_create", "bulk_update",
    "bulk_save", "insert_many", "replace_rows", "execute_update",
    "execute_delete",
})

#: Internal attributes application code must never reach for.
_INTERNAL_ATTRS = frozenset({"_facet_rows", "_db_row", "_meta"})

#: ``with`` context managers that establish a viewer/branch context.
_VIEWER_CONTEXTS = frozenset({"viewer_context", "jif", "under_branch"})


def _diag(code: str, message: str, module: ModuleFacts, line: int,
          model: Optional[str] = None, symbol: Optional[str] = None,
          severity: Optional[Severity] = None) -> Diagnostic:
    if severity is None:
        severity, _summary = RULES[code]
    return Diagnostic(code, severity, message, module.path, line, model, symbol)


def _trusted_methods(model: ModelFacts):
    """(kind, field-or-key, name, node) for every policy + public method."""
    for group in model.groups:
        yield "policy", group.key, group.method_name, group.node, group.line
    for field_name, (name, node) in sorted(model.public_methods.items()):
        line = node.lineno if node is not None else model.line
        yield "public", field_name, name, node, line


def check_jql001(module: ModuleFacts) -> List[Diagnostic]:
    """``@label_for`` on a field the model does not declare."""
    found = []
    for model in module.models:
        for group in model.groups:
            for field_name in group.fields:
                if field_name not in model.fields:
                    found.append(_diag(
                        "JQL001",
                        f"@label_for({field_name!r}) names a field "
                        f"{model.name} does not declare",
                        module, group.line, model.name, group.method_name,
                    ))
            if not group.fields:
                found.append(_diag(
                    "JQL001", "@label_for() lists no fields",
                    module, group.line, model.name, group.method_name,
                ))
    return found


def check_jql002(module: ModuleFacts) -> List[Diagnostic]:
    """A policied field with no public-facet method renders as ``None``.

    Usually an omission: the paper's models always pair a policy with the
    public value viewers outside the branch should see.  Declaring an
    explicit method returning ``None`` documents the intent and silences
    the warning.
    """
    found = []
    for model in module.models:
        for group in model.groups:
            for field_name in group.fields:
                if field_name in model.fields and field_name not in model.public_methods:
                    found.append(_diag(
                        "JQL002",
                        f"policied field {field_name!r} has no "
                        f"jacqueline_get_public_{field_name} method "
                        "(public facet falls back to None)",
                        module, group.line, model.name, group.method_name,
                    ))
    return found


def check_jql003(module: ModuleFacts) -> List[Diagnostic]:
    """Side effects inside the trusted surface.

    Policies run at every read (possibly many times per request) and
    public methods at every save/rewrite; a store, a mutating ORM/backend
    call, or ``global``/``nonlocal`` inside one makes visibility evaluation
    observable -- the paper requires them to be pure.
    """
    found = []
    for model in module.models:
        for kind, _key, name, node, _line in _trusted_methods(model):
            if node is None:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    found.append(_diag(
                        "JQL003",
                        f"{kind} method assigns attribute .{sub.attr}",
                        module, sub.lineno, model.name, name,
                    ))
                elif isinstance(sub, (ast.Global, ast.Nonlocal)):
                    found.append(_diag(
                        "JQL003",
                        f"{kind} method declares {sub.names[0]!r} "
                        f"{'global' if isinstance(sub, ast.Global) else 'nonlocal'}",
                        module, sub.lineno, model.name, name,
                    ))
                elif isinstance(sub, ast.Call):
                    called = dotted_name(sub.func)
                    leaf = called.rsplit(".", 1)[-1] if called else None
                    if leaf in _MUTATING_CALLS and called != leaf:
                        found.append(_diag(
                            "JQL003",
                            f"{kind} method calls mutating {called}()",
                            module, sub.lineno, model.name, name,
                        ))
    return found


def check_jql004(module: ModuleFacts) -> List[Diagnostic]:
    """A public method reading another group's guarded field leaks it.

    The public facet is computed from the *secret* instance at save time
    and stored on rows where the other group's label is False -- deriving
    it from a field that other group guards publishes data its own policy
    would have hidden.
    """
    found = []
    for model in module.models:
        column_to_field = {f.column: f.name for f in model.fields.values()}
        for field_name, (name, node) in sorted(model.public_methods.items()):
            if node is None:
                continue
            own_group = model.group_for_field(field_name)
            own_fields = set(own_group.fields) if own_group else {field_name}
            reads = infer_method_reads(node, model)
            if reads.top:
                continue  # JQL009's finding
            for column in sorted(reads.columns):
                read_field = column_to_field.get(column)
                if read_field is None or read_field in own_fields:
                    continue
                other = model.group_for_field(read_field)
                if other is not None:
                    found.append(_diag(
                        "JQL004",
                        f"public method for {field_name!r} reads "
                        f"{read_field!r}, guarded by the {other.key!r} label "
                        "group -- its save-time snapshot leaks the secret value",
                        module, node.lineno, model.name, name,
                    ))
    return found


def check_jql005(module: ModuleFacts) -> List[Diagnostic]:
    """Application code touching the faceted encoding directly.

    ``.jvars`` is the label-assignment encoding (never meaningful to
    applications); assigning ``.jid`` forges record identity; the
    underscore internals bypass the FORM entirely.  Reading ``.jid`` is
    fine -- it is the public record key.
    """
    found = []
    for sub in ast.walk(module.tree):
        if not isinstance(sub, ast.Attribute):
            continue
        if sub.attr == "jvars":
            found.append(_diag(
                "JQL005",
                "direct access to the jvars label encoding",
                module, sub.lineno,
            ))
        elif sub.attr == "jid" and isinstance(sub.ctx, (ast.Store, ast.Del)):
            found.append(_diag(
                "JQL005",
                "assignment to .jid forges record identity",
                module, sub.lineno,
            ))
        elif sub.attr in _INTERNAL_ATTRS:
            found.append(_diag(
                "JQL005",
                f"access to FORM internal .{sub.attr}",
                module, sub.lineno,
            ))
    return found


def _objects_model(node: ast.AST, names: Set[str]) -> Optional[str]:
    """The model name when ``node`` is a ``Model.objects...`` expression.

    Unwraps call/attribute chains (``Doc.objects.get(...)``,
    ``Doc.objects.filter(...).first()``) down to the root name.
    """
    seen_objects = False
    while True:
        if isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Attribute):
            if node.attr == "objects":
                seen_objects = True
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id if seen_objects and node.id in names else None
        else:
            return None


def _typed_locals(module: ModuleFacts) -> Dict[Tuple[Optional[ast.AST], str], Optional[str]]:
    """(enclosing function, variable) -> model name for locals bound from
    an unambiguous ``Model.objects`` query (assignment or ``for`` target).
    A rebinding to a different model poisons the entry to ``None``."""
    names = {m.name for m in module.models}
    types: Dict[Tuple[Optional[ast.AST], str], Optional[str]] = {}

    def note(owner: Optional[ast.AST], var: str, model: str) -> None:
        key = (owner, var)
        types[key] = model if types.get(key, model) == model else None

    for sub in ast.walk(module.tree):
        if isinstance(sub, ast.Assign):
            model = _objects_model(sub.value, names)
            if model is None:
                continue
            owner = enclosing_function(sub)
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    note(owner, target.id, model)
        elif isinstance(sub, ast.For):
            model = _objects_model(sub.iter, names)
            if model is not None and isinstance(sub.target, ast.Name):
                note(enclosing_function(sub), sub.target.id, model)
    return types


def check_jql006(module: ModuleFacts) -> List[Diagnostic]:
    """Branching on a (possibly faceted) policied field outside a viewer
    context.

    Outside ``viewer_context``/``jif`` a policied attribute may be a
    faceted value; a plain ``if`` on it silently takes the truthiness of
    the facet object.  Two precision levels:

    * **typed** (error): the receiver is provably an instance of a known
      model -- the branch reads a ``Model.objects`` result directly, or a
      local bound from one -- and that model's type environment declares
      the attribute policied.  This is not a heuristic: the value *is*
      faceted outside a viewer context.
    * **heuristic** (warning): the attribute merely shares its name with
      some model's policied field.  A typed receiver whose model does
      *not* police the attribute suppresses the name heuristic.

    The trusted methods themselves are exempt (they receive the secret
    instance).
    """
    policied: Set[str] = set()
    by_model: Dict[str, Set[str]] = {}
    trusted_nodes = set()
    for model in module.models:
        attrs: Set[str] = set()
        for field_name in model.policied_fields:
            attrs.add(field_name)
            facts = model.fields.get(field_name)
            if facts is not None:
                attrs.add(facts.column)
        by_model[model.name] = attrs
        policied |= attrs
        for _kind, _key, _name, node, _line in _trusted_methods(model):
            if node is not None:
                trusted_nodes.add(node)
    if not policied:
        return []
    model_names = set(by_model)
    typed = _typed_locals(module)
    found = []
    for sub in ast.walk(module.tree):
        if not isinstance(sub, (ast.If, ast.IfExp, ast.While)):
            continue
        owner = enclosing_function(sub)
        if owner in trusted_nodes:
            continue
        if _inside_viewer_context(sub):
            continue
        for attr in ast.walk(sub.test):
            if not isinstance(attr, ast.Attribute) or attr.attr not in policied:
                continue
            receiver = _objects_model(attr.value, model_names)
            if receiver is None and isinstance(attr.value, ast.Name):
                receiver = typed.get((owner, attr.value.id))
            if receiver is not None and attr.attr not in by_model[receiver]:
                continue  # typed receiver, attribute not policied there
            if receiver is not None:
                found.append(_diag(
                    "JQL006",
                    f"branch on policied attribute {receiver}.{attr.attr} "
                    "outside a viewer context: the value is faceted here",
                    module, attr.lineno, receiver,
                    symbol=owner.name if owner is not None else None,
                    severity=Severity.ERROR,
                ))
            else:
                found.append(_diag(
                    "JQL006",
                    f"branch on policied attribute .{attr.attr} outside a "
                    "viewer context (may be a faceted value)",
                    module, attr.lineno,
                    symbol=owner.name if owner is not None else None,
                ))
            break
    return found


def _inside_viewer_context(node: ast.AST) -> bool:
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                expr = item.context_expr
                target = expr.func if isinstance(expr, ast.Call) else expr
                name = dotted_name(target)
                if name is not None and name.rsplit(".", 1)[-1] in _VIEWER_CONTEXTS:
                    return True
    return False


def check_jql007(module: ModuleFacts) -> List[Diagnostic]:
    """Arity of the trusted surface: policies take (row, viewer), public
    methods take (row)."""
    found = []
    for model in module.models:
        for kind, _key, name, node, line in _trusted_methods(model):
            if node is None:
                continue
            arity = len(positional_params(node))
            expected = 2 if kind == "policy" else 1
            if arity != expected:
                found.append(_diag(
                    "JQL007",
                    f"{kind} method takes {arity} positional parameter(s), "
                    f"expected {expected}",
                    module, line, model.name, name,
                ))
    return found


def check_jql008(module: ModuleFacts) -> List[Diagnostic]:
    """A public method depending on *other* records can go stale when those
    records change -- a cross-record dependency no rewrite of this model
    repairs.  (Policies re-evaluate per read, so only public methods are
    flagged.)"""
    found = []
    for model in module.models:
        for field_name, (name, node) in sorted(model.public_methods.items()):
            if node is None:
                continue
            reads = infer_method_reads(node, model)
            if reads.cross_record and not reads.top:
                found.append(_diag(
                    "JQL008",
                    f"public method for {field_name!r} depends on other "
                    "records; its stored snapshot cannot be kept fresh by "
                    "this model's writes",
                    module, node.lineno, model.name, name,
                ))
    return found


def check_jql009(module: ModuleFacts) -> List[Diagnostic]:
    """A TOP public read set forces the batched rewrite on every eligible
    update of the model -- correct but slow, and worth making explicit."""
    found = []
    for model in module.models:
        for field_name, (name, node) in sorted(model.public_methods.items()):
            reads = infer_method_reads(node, model)
            if reads.top:
                found.append(_diag(
                    "JQL009",
                    f"public method for {field_name!r} has read set TOP "
                    f"({reads.top_reason}); every eligible update() of "
                    f"{model.name} will take the batched rewrite",
                    module,
                    node.lineno if node is not None else model.line,
                    model.name, name,
                ))
    return found


def check_jql010(module: ModuleFacts) -> List[Diagnostic]:
    """A policy whose compiled predicate can never hold locks its fields
    to the public facet for every viewer -- almost certainly a typo in a
    constant or an inverted comparison.  Sound in one direction: the
    symbolic decision procedure only reports *definitely* unsatisfiable
    predicates (TOP subtrees and over-budget expansions stay silent)."""
    found = []
    for model in module.models:
        for group in model.groups:
            atoms = unsatisfiable(compile_policy(group, model))
            if atoms is None:
                continue
            if atoms:
                detail = "conflicting atoms: " + "; ".join(
                    atom_text(atom) for atom in atoms
                )
            else:
                detail = "constant-False"
            found.append(_diag(
                "JQL010",
                f"policy for group {group.key!r} is unsatisfiable "
                f"({detail}); no viewer can ever see the secret facet",
                module, group.line, model.name, group.method_name,
            ))
    return found


_CHECKERS = (
    check_jql001,
    check_jql002,
    check_jql003,
    check_jql004,
    check_jql005,
    check_jql006,
    check_jql007,
    check_jql008,
    check_jql009,
    check_jql010,
)


def run_rules(module: ModuleFacts) -> List[Diagnostic]:
    """Run every rule over one module's facts, findings in stable order."""
    found: List[Diagnostic] = []
    for checker in _CHECKERS:
        found.extend(checker(module))
    return sorted(found, key=Diagnostic.sort_key)
