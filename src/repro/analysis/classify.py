"""Policy-shape classification: the planning input for policy pushdown.

The ROADMAP's biggest open item compiles Early Pruning into SQL; its first
step is knowing, per ``@label_for`` policy, *how* the decision depends on
the viewer.  Three shapes, checked in order:

* ``viewer-independent`` -- the viewer parameter never occurs: the policy
  is a pure function of the row and global state (e.g. the conference
  phase) and one evaluation covers every viewer;
* ``equality-on-viewer`` -- every viewer occurrence is an identity test
  (``==``/``!=``/``is``/``in``) of the viewer or one of its attributes
  against a row value or a constant (helpers inlined): the outcome can be
  joined against an indexed ``(label, viewer_key, visible)`` table;
* ``symbolic`` -- the occurrence walk fails but the symbolic predicate
  interpreter (:mod:`repro.analysis.symbolic`) captures the whole body
  without TOP: the policy still reads only own-row columns and viewer
  attributes (e.g. ``row.path.startswith(viewer.prefix)``);
* ``opaque`` -- anything else, most importantly the viewer flowing into an
  ORM query as a filter value (membership checks): the Python evaluator
  stays the oracle.

Each ``equality-on-viewer`` verdict carries its *atoms*, the individual
identity tests, machine-readably.

>>> from repro.analysis.facts import facts_for_source
>>> mod = facts_for_source('''
... class Paper(JModel):
...     author = ForeignKey("User")
...     @staticmethod
...     @label_for("author")
...     def restrict_author(paper, viewer):
...         return viewer is not None and viewer.jid == paper.author_id
... ''', "m.py")
>>> shape = classify_policy(mod.models[0].groups[0], mod.models[0])
>>> shape["shape"]
'equality-on-viewer'
>>> [a["kind"] for a in shape["atoms"]]
['is-not', 'eq']
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.astutils import (
    attach_parents,
    const_str,
    dotted_name,
    positional_params,
)
from repro.analysis.facts import GroupFacts, ModelFacts, ModuleFacts
from repro.analysis.readsets import MAX_DEPTH, infer_method_reads
from repro.analysis.symbolic import compile_policy, contains_top, predicate_json

_ATOM_KINDS = {
    ast.Eq: "eq",
    ast.NotEq: "ne",
    ast.Is: "is",
    ast.IsNot: "is-not",
    ast.In: "in",
    ast.NotIn: "not-in",
}


def _describe_operand(node: ast.AST) -> Any:
    """A JSON-friendly description of a comparison operand."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)) and all(
        isinstance(e, ast.Constant) for e in node.elts
    ):
        return [e.value for e in node.elts]
    name = dotted_name(node)
    return name if name is not None else "<expr>"


def _viewer_chain(name_node: ast.Name) -> Tuple[ast.AST, str]:
    """Climb ``viewer.attr...`` to the outermost attribute; spell the chain."""
    current: ast.AST = name_node
    spelling = name_node.id
    parent = getattr(current, "_parent", None)
    while isinstance(parent, ast.Attribute) and parent.value is current:
        current = parent
        spelling += "." + parent.attr
        parent = getattr(current, "_parent", None)
    return current, spelling


class _PolicyClassifier:
    def __init__(self, facts: ModelFacts) -> None:
        self.facts = facts
        self.atoms: List[Dict[str, Any]] = []
        self.opaque_reasons: List[str] = []
        self.occurrences = 0

    def classify(
        self, node: Optional[ast.FunctionDef], viewer_param: Optional[str],
        depth: int = 0, stack: Tuple[str, ...] = (),
    ) -> None:
        if node is None:
            self.opaque_reasons.append("policy source unavailable")
            self.occurrences += 1
            return
        if viewer_param is None:
            return
        if depth > MAX_DEPTH or node.name in stack:
            self.opaque_reasons.append("helper recursion too deep")
            self.occurrences += 1
            return
        attach_parents(node)
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Name) and sub.id == viewer_param
                    and isinstance(sub.ctx, ast.Load)):
                continue
            self.occurrences += 1
            self._classify_occurrence(sub, node, depth, stack + (node.name,))

    def _classify_occurrence(
        self, name_node: ast.Name, func: ast.FunctionDef,
        depth: int, stack: Tuple[str, ...],
    ) -> None:
        # getattr(viewer, "attr"[, default]) reads a viewer attribute; the
        # call node stands in for the attribute chain.
        parent = getattr(name_node, "_parent", None)
        if (
            isinstance(parent, ast.Call)
            and dotted_name(parent.func) == "getattr"
            and parent.args
            and parent.args[0] is name_node
            and len(parent.args) >= 2
            and const_str(parent.args[1]) is not None
        ):
            chain: ast.AST = parent
            spelling = f"{name_node.id}.{const_str(parent.args[1])}"
        else:
            chain, spelling = _viewer_chain(name_node)
        outer = getattr(chain, "_parent", None)
        # A keyword argument wraps its value in an ast.keyword node; the
        # interesting parent is the call it belongs to.
        if isinstance(outer, ast.keyword):
            outer = getattr(outer, "_parent", None)
        if isinstance(outer, ast.Compare):
            ops = outer.ops
            if all(type(op) in _ATOM_KINDS for op in ops):
                operands = [outer.left] + list(outer.comparators)
                others = [op for op in operands if op is not chain]
                self.atoms.append({
                    "kind": _ATOM_KINDS[type(ops[0])],
                    "viewer": spelling,
                    "other": _describe_operand(others[0]) if others else None,
                })
                return
            self.opaque_reasons.append(
                f"non-identity comparison on {spelling} (line {name_node.lineno})"
            )
            return
        if isinstance(outer, ast.Call):
            func_name = dotted_name(outer.func)
            if func_name is not None and ".objects." in func_name:
                self.opaque_reasons.append(
                    f"{spelling} used as a query filter value in "
                    f"{func_name}() (line {name_node.lineno})"
                )
                return
            helper = self.facts.helper(func_name) if func_name else None
            if helper is None and func_name in self.facts.methods:
                helper = self.facts.methods[func_name]
            if helper is not None and chain is name_node:
                params = positional_params(helper)
                bound: Optional[str] = None
                for index, arg in enumerate(outer.args):
                    if arg is chain and index < len(params):
                        bound = params[index]
                for kw in outer.keywords:
                    if kw.value is chain and kw.arg in params:
                        bound = kw.arg
                if bound is not None:
                    self.classify(helper, bound, depth + 1, stack)
                    return
            self.opaque_reasons.append(
                f"{spelling} escapes into {func_name or '<dynamic>'}() "
                f"(line {name_node.lineno})"
            )
            return
        self.opaque_reasons.append(
            f"{spelling} used outside an identity comparison "
            f"(line {name_node.lineno})"
        )


def classify_policy(group: GroupFacts, facts: ModelFacts) -> Dict[str, Any]:
    """Classify one policy group into its machine-readable shape record."""
    classifier = _PolicyClassifier(facts)
    viewer = None
    if group.node is not None:
        params = positional_params(group.node)
        viewer = params[1] if len(params) > 1 else None
    classifier.classify(group.node, viewer)
    if classifier.occurrences == 0 and group.node is not None:
        shape = "viewer-independent"
    elif not classifier.opaque_reasons:
        shape = "equality-on-viewer"
    else:
        shape = "opaque"
    predicate = compile_policy(group, facts)
    if shape == "opaque" and not contains_top(predicate):
        # The occurrence walk could not place every viewer use, but the
        # symbolic interpreter captured the whole body: a TOP-free
        # predicate provably reads nothing beyond own-row columns and
        # viewer attributes (e.g. prefix tests, ``startswith``).
        shape = "symbolic"
    reads = infer_method_reads(group.node, facts)
    return {
        "model": facts.name,
        "group": group.key,
        "fields": list(group.fields),
        "policy": group.method_name,
        "shape": shape,
        "atoms": classifier.atoms,
        "opaque_reasons": classifier.opaque_reasons,
        "reads": reads.report(),
        "cross_record": reads.cross_record,
        "predicate": predicate_json(predicate),
    }


def classify_module(module: ModuleFacts) -> List[Dict[str, Any]]:
    """Shape records for every policy group declared in a module."""
    records = []
    for model in module.models:
        for group in model.groups:
            records.append(classify_policy(group, model))
    return records
