"""The analyzer command line: ``python -m repro.analysis [paths]``.

Walks the given files/directories, runs every JQL rule, the policy
classifier and read-set inference over each module, and prints a text or
JSON report.  Exit codes are stable (CI contracts on them):

* ``0`` -- no findings (warnings allowed unless ``--strict``);
* ``1`` -- error-severity findings (or any finding under ``--strict``);
* ``2`` -- usage error (no such path, unreadable/binary file, unknown
  ``--select`` code, unreadable/malformed ``--baseline`` file).

Two filters compose with the exit-code contract:

* ``--select JQL004,JQL010`` keeps only the listed rule codes (``JQL000``
  syntax errors are always kept -- a broken file must never pass);
* ``--baseline report.json`` suppresses findings recorded in a previous
  JSON report, matched by ``(code, file, model, symbol, message)`` with
  the line number ignored, so accepted legacy findings survive unrelated
  edits that shift them.

Syntax errors in analyzed files are *findings* (``JQL000``, error
severity), not crashes: a tree with one broken file still gets the rest
of its report.

>>> report = analyze_source('''
... class Doc(JModel):
...     title = CharField()
...     @staticmethod
...     @label_for("nope")
...     def restrict(row, viewer):
...         return False
... ''', "doc.py")
>>> [d.code for d in report.diagnostics]
['JQL001', 'JQL010']
>>> report.exit_code()
1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.classify import classify_module
from repro.analysis.diagnostics import Diagnostic, Report, Severity
from repro.analysis.facts import ModuleFacts, facts_for_source
from repro.analysis.readsets import model_read_sets
from repro.analysis.rules import RULES, run_rules


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises ``FileNotFoundError`` for a path that does not exist (a usage
    error, exit code 2 -- a silently skipped tree would report "clean").
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if not d.startswith(("__", ".")))
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(files))


def _analyze_module(module: ModuleFacts, report: Report) -> None:
    report.files.append(module.path)
    report.extend(run_rules(module))
    report.policies.extend(classify_module(module))
    for model in module.models:
        report.models.append(model.name)
        for method_name, reads in model_read_sets(model).items():
            report.read_sets[f"{model.name}.{method_name}"] = reads.report()


def analyze_source(source: str, path: str, report: Optional[Report] = None) -> Report:
    """Analyze one source string (the in-memory entry used by tests/docs)."""
    report = report if report is not None else Report()
    try:
        module = facts_for_source(source, path)
    except SyntaxError as exc:
        report.files.append(path)
        report.diagnostics.append(Diagnostic(
            "JQL000", Severity.ERROR, f"syntax error: {exc.msg}",
            path, exc.lineno or 0,
        ))
        return report
    _analyze_module(module, report)
    return report


def analyze_paths(paths: Sequence[str]) -> Report:
    """Analyze every ``.py`` file under the given paths into one report."""
    report = Report()
    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        analyze_source(source, path, report)
    return report


def _fingerprint(code: str, file: str, model, symbol, message) -> tuple:
    """The line-independent identity of a finding, for baseline matching."""
    return (code, os.path.normpath(file or ""), model, symbol, message)


def parse_select(spec: str) -> set:
    """The rule codes of a ``--select`` spec; raises ``ValueError`` on an
    unknown code.  ``JQL000`` (syntax error) is always included.

    >>> sorted(parse_select("JQL004,JQL010"))
    ['JQL000', 'JQL004', 'JQL010']
    """
    codes = {code.strip() for code in spec.split(",") if code.strip()}
    unknown = sorted(code for code in codes if code not in RULES and code != "JQL000")
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return codes | {"JQL000"}


def load_baseline(path: str) -> set:
    """The accepted-finding fingerprints of a baseline JSON report.

    Accepts a full ``--format json`` report (its ``diagnostics`` list) or
    a bare list of diagnostic objects.  Raises ``OSError``/``ValueError``
    for unreadable or malformed files (a usage error, exit code 2).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("diagnostics") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise ValueError("baseline must be a JSON report or a list of findings")
    accepted = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError("baseline entries must be finding objects")
        accepted.add(_fingerprint(
            entry.get("code"), entry.get("file", ""),
            entry.get("model"), entry.get("symbol"), entry.get("message"),
        ))
    return accepted


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static information-flow lint for Jacqueline applications.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["."],
        help="files or directories to analyze (default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not only errors",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to keep (e.g. JQL004,JQL010); "
             "JQL000 syntax errors are always kept",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON report of accepted findings to suppress (matched by "
             "code, file, model, symbol and message; line ignored)",
    )
    args = parser.parse_args(argv)
    if args.select is not None:
        try:
            selected = parse_select(args.select)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.baseline is not None:
        try:
            accepted = load_baseline(args.baseline)
        except FileNotFoundError:
            print(f"error: no such baseline: {args.baseline}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"error: bad baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
    try:
        report = analyze_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc.args[0]}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.select is not None:
        report.diagnostics = [
            d for d in report.diagnostics if d.code in selected
        ]
    if args.baseline is not None:
        report.diagnostics = [
            d for d in report.diagnostics
            if _fingerprint(d.code, d.file, d.model, d.symbol, d.message)
            not in accepted
        ]
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
