"""Symbol facts: what the analyzer knows about modules, models and methods.

Two front doors build the same :class:`ModelFacts` shape:

* :func:`facts_for_source` / :func:`facts_for_path` -- purely syntactic,
  used by the linter CLI over application source trees (no imports run);
* :func:`facts_for_model` -- built from a *live* registered model class
  (``model._meta``), used at runtime by read-set inference.

Model detection in source is nominal: a class is a Jacqueline model when a
base is spelled ``JModel`` (possibly qualified) or is another model defined
earlier in the same module.  Fields are class-level assignments calling a
constructor whose name ends in ``Field`` or is ``ForeignKey``; a foreign
key ``author`` stores into column ``author_id``, as in the FORM.

>>> mod = facts_for_source('''
... class Paper(JModel):
...     title = CharField()
...     author = ForeignKey("User")
...     @staticmethod
...     @label_for("title")
...     def restrict_title(row, viewer):
...         return viewer == row.author
...     def jacqueline_get_public_title(self):
...         return "[redacted]"
... ''', "m.py")
>>> model = mod.models[0]
>>> sorted(model.columns)
['author_id', 'title']
>>> model.groups[0].fields
('title',)
>>> sorted(model.public_methods)
['title']
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.astutils import (
    attach_parents,
    const_str,
    dotted_name,
    function_ast,
    parse_source,
    positional_params,
)

#: Spellings that mark a base class as the Jacqueline model root.
MODEL_BASE_NAMES = ("JModel",)

#: The public-facet naming convention (kept in sync with repro.form.policies).
PUBLIC_METHOD_PREFIX = "jacqueline_get_public_"


@dataclass
class FieldFacts:
    """One declared field: its name, backing column, and kind.

    ``ctor`` records the constructor spelling (``"CharField"``,
    ``"ForeignKey"``, ...) so type environments can assign a value kind;
    ``fk_target`` is the referenced model name for foreign keys when it can
    be determined; ``nullable`` mirrors the field declaration (fields are
    nullable unless declared otherwise).
    """

    name: str
    column: str
    is_foreign_key: bool
    line: int = 0
    ctor: Optional[str] = None
    fk_target: Optional[str] = None
    nullable: bool = True


@dataclass
class GroupFacts:
    """One ``@label_for`` declaration found on a model."""

    fields: Tuple[str, ...]
    method_name: str
    node: Optional[ast.FunctionDef]
    line: int = 0

    @property
    def key(self) -> str:
        return self.fields[0]


@dataclass
class ModelFacts:
    """Everything the analyzer knows about one model class."""

    name: str
    file: str
    line: int = 0
    fields: Dict[str, FieldFacts] = field(default_factory=dict)
    groups: List[GroupFacts] = field(default_factory=list)
    #: field name -> (method name, definition AST or None when source lost)
    public_methods: Dict[str, Tuple[str, Optional[ast.FunctionDef]]] = field(
        default_factory=dict
    )
    #: every method defined on the class, by name
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: resolver for same-module helper functions: name -> AST or None
    helper: Callable[[str], Optional[ast.FunctionDef]] = lambda name: None

    @property
    def columns(self) -> frozenset:
        return frozenset(f.column for f in self.fields.values())

    def column_for(self, attr: str) -> Optional[str]:
        """The column an attribute read of ``attr`` lands on, if any."""
        facts = self.fields.get(attr)
        if facts is not None:
            return facts.column
        for facts in self.fields.values():
            if facts.column == attr:
                return facts.column
        return None

    def group_for_field(self, field_name: str) -> Optional[GroupFacts]:
        for group in self.groups:
            if field_name in group.fields:
                return group
        return None

    @property
    def policied_fields(self) -> frozenset:
        return frozenset(f for g in self.groups for f in g.fields)


@dataclass
class ModuleFacts:
    """One parsed source file: its models and module-level helpers."""

    path: str
    tree: ast.Module
    models: List[ModelFacts] = field(default_factory=list)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    def model_named(self, name: str) -> Optional[ModelFacts]:
        for model in self.models:
            if model.name == name:
                return model
        return None


def _is_model_base(base: ast.AST, known_models: Dict[str, ModelFacts]) -> bool:
    name = dotted_name(base)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in MODEL_BASE_NAMES or leaf in known_models


def _label_for_fields(func: ast.FunctionDef) -> Optional[Tuple[str, ...]]:
    """The field tuple of a ``@label_for(...)`` decorator, if present."""
    for deco in func.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = dotted_name(deco.func)
        if name is None or name.rsplit(".", 1)[-1] != "label_for":
            continue
        names = tuple(
            value for value in (const_str(arg) for arg in deco.args)
            if value is not None
        )
        return names
    return None


def _field_call_kind(value: ast.AST) -> Optional[str]:
    """``"fk"`` / ``"field"`` when a class-level value is a field ctor call."""
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    if leaf == "ForeignKey":
        return "fk"
    if leaf.endswith("Field"):
        return "field"
    return None


def _field_decl_details(value: ast.Call) -> Tuple[str, Optional[str], bool]:
    """(ctor leaf, fk target, nullable) for a field constructor call."""
    ctor = dotted_name(value.func).rsplit(".", 1)[-1]
    fk_target: Optional[str] = None
    if ctor == "ForeignKey" and value.args:
        fk_target = const_str(value.args[0]) or dotted_name(value.args[0])
    nullable = True
    for keyword in value.keywords:
        if keyword.arg == "nullable" and isinstance(keyword.value, ast.Constant):
            nullable = bool(keyword.value.value)
    return ctor, fk_target, nullable


def _model_from_classdef(
    node: ast.ClassDef, path: str, helper: Callable[[str], Optional[ast.FunctionDef]]
) -> ModelFacts:
    model = ModelFacts(name=node.name, file=path, line=node.lineno, helper=helper)
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            kind = _field_call_kind(stmt.value)
            if kind is None:
                continue
            ctor, fk_target, nullable = _field_decl_details(stmt.value)
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                column = target.id + "_id" if kind == "fk" else target.id
                model.fields[target.id] = FieldFacts(
                    target.id,
                    column,
                    kind == "fk",
                    stmt.lineno,
                    ctor=ctor,
                    fk_target=fk_target,
                    nullable=nullable,
                )
        elif isinstance(stmt, ast.FunctionDef):
            model.methods[stmt.name] = stmt
            guarded = _label_for_fields(stmt)
            if guarded is not None:
                model.groups.append(
                    GroupFacts(guarded, stmt.name, stmt, stmt.lineno)
                )
            if stmt.name.startswith(PUBLIC_METHOD_PREFIX):
                field_name = stmt.name[len(PUBLIC_METHOD_PREFIX):]
                model.public_methods[field_name] = (stmt.name, stmt)
    return model


def facts_for_source(source: str, path: str) -> ModuleFacts:
    """Extract module facts from source text (parent links attached)."""
    tree = parse_source(source, path)
    attach_parents(tree)
    module = ModuleFacts(path=path, tree=tree)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            module.functions[node.name] = node

    known: Dict[str, ModelFacts] = {}

    def helper(name: str) -> Optional[ast.FunctionDef]:
        return module.functions.get(name)

    for node in tree.body:
        if isinstance(node, ast.ClassDef) and any(
            _is_model_base(base, known) for base in node.bases
        ):
            model = _model_from_classdef(node, path, helper)
            known[model.name] = model
            module.models.append(model)
    return module


def facts_for_path(path: str) -> ModuleFacts:
    """Parse a file on disk into module facts."""
    with open(path, "r", encoding="utf-8") as handle:
        return facts_for_source(handle.read(), path)


def facts_for_model(model) -> ModelFacts:
    """Model facts from a *live* registered model class.

    Field and group structure come from ``model._meta`` (authoritative);
    method bodies are recovered with ``inspect.getsource`` and may be
    ``None`` when the source is lost (doctest-defined classes), which
    read-set inference treats as TOP.  Same-module helpers resolve through
    ``sys.modules[model.__module__]``.
    """
    meta = model._meta
    defining_module = sys.modules.get(model.__module__)
    facts = ModelFacts(
        name=meta.table_name,
        file=getattr(defining_module, "__file__", "<live>") or "<live>",
    )

    def helper(name: str) -> Optional[ast.FunctionDef]:
        target = getattr(defining_module, name, None)
        if callable(target):
            return function_ast(target)
        return None

    facts.helper = helper
    for name, fld in meta.fields.items():
        fk_target: Optional[str] = None
        if fld.column_name != name:
            try:
                fk_target = fld.target_model().__name__
            except Exception:
                fk_target = None
        facts.fields[name] = FieldFacts(
            name,
            fld.column_name,
            fld.column_name != name,
            ctor=type(fld).__name__,
            fk_target=fk_target,
            nullable=bool(getattr(fld, "nullable", True)),
        )
    for group in meta.policy_groups:
        facts.groups.append(
            GroupFacts(group.fields, group.method.__name__, function_ast(group.method))
        )
    for field_name, method in meta.public_methods.items():
        facts.public_methods[field_name] = (method.__name__, function_ast(method))
    for attr_name in dir(model):
        attr = getattr(model, attr_name, None)
        if callable(attr) and not attr_name.startswith("__"):
            node = function_ast(attr)
            if node is not None:
                facts.methods[attr_name] = node
    return facts


def first_param(node: Optional[ast.FunctionDef]) -> Optional[str]:
    """The row-binding parameter of a method node (its first positional).

    >>> import ast
    >>> first_param(ast.parse("def f(self): pass").body[0])
    'self'
    """
    if node is None:
        return None
    params = positional_params(node)
    return params[0] if params else None
