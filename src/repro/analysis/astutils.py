"""Shared ``ast`` helpers for the static analyzer.

Stdlib-only: parsing, dotted-name resolution, parent links and source
recovery for live functions.  Everything downstream (facts extraction,
read-set inference, rules, the classifier) builds on these few primitives.

>>> import ast
>>> node = ast.parse("Paper.objects.get(author=row)").body[0].value
>>> dotted_name(node.func)
'Paper.objects.get'
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Iterator, Optional


def parse_source(source: str, filename: str = "<string>") -> ast.Module:
    """Parse source text into a module AST (syntax errors propagate)."""
    return ast.parse(source, filename=filename)


def dotted_name(node: ast.AST) -> Optional[str]:
    """The ``a.b.c`` spelling of a Name/Attribute chain, or ``None``.

    Chains interrupted by calls, subscripts or literals do not resolve --
    callers treat that as "not a simple reference".

    >>> import ast
    >>> dotted_name(ast.parse("a.b.c").body[0].value)
    'a.b.c'
    >>> dotted_name(ast.parse("f().b").body[0].value) is None
    True
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute chain (``a`` for ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def const_str(node: ast.AST) -> Optional[str]:
    """The value of a string constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``_parent`` link (in place)."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._parent = parent  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``_parent`` links outward (requires :func:`attach_parents`)."""
    current = getattr(node, "_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_parent", None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """The nearest enclosing function definition, via parent links."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def positional_params(func: ast.AST) -> list:
    """The positional parameter names of a function definition node."""
    args = func.args
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


def decorator_names(func: ast.AST) -> list:
    """Dotted names of a function's decorators (call decorators by callee).

    >>> import ast
    >>> fn = ast.parse("@staticmethod\\n@label_for('x')\\ndef p(r, v): pass").body[0]
    >>> decorator_names(fn)
    ['staticmethod', 'label_for']
    """
    names = []
    for deco in func.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None:
            names.append(name)
    return names


def function_ast(func) -> Optional[ast.FunctionDef]:
    """The definition AST of a live function, or ``None`` when unavailable.

    ``None`` (source lost: doctest/exec-defined functions, builtins) is the
    conservative answer -- read-set inference maps it to TOP.
    """
    target = getattr(func, "__func__", func)
    try:
        source = textwrap.dedent(inspect.getsource(target))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    return None
