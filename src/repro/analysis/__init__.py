"""Static analysis for Jacqueline applications (``repro.analysis``).

Three consumers share one AST toolkit:

* the **linter** (:mod:`repro.analysis.rules`, codes ``JQL001``...)
  enforces the trusted surface -- run as ``python -m repro.analysis``;
* **read-set inference** (:mod:`repro.analysis.readsets`) feeds the FORM
  write decision procedure at runtime: a fast-path ``update()`` touching a
  column some public-facet method reads is forced onto the batched
  rewrite, closing the stored-snapshot staleness hole;
* the **policy classifier** (:mod:`repro.analysis.classify`) emits
  machine-readable policy shapes, the planning input for compiling Early
  Pruning into SQL.

Import side effects are kept minimal: this package never imports
``repro.form`` at module level (the form imports *us* lazily), so the
analyzer stays usable on source trees without touching the runtime.
"""

from repro.analysis.diagnostics import Diagnostic, Report, Severity
from repro.analysis.readsets import ReadSet, public_read_columns_for_model
from repro.analysis.rules import RULES

__all__ = [
    "Diagnostic",
    "Report",
    "Severity",
    "ReadSet",
    "RULES",
    "public_read_columns_for_model",
]
