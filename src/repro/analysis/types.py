"""Per-model type environments inferred from ``_meta`` field declarations.

A :class:`TypeEnv` maps attribute names *and* backing columns of one model
to :class:`ColumnType` records carrying a coarse value kind (``"text"``,
``"int"``, ``"bool"``, ...), nullability, and — for foreign keys — the
referenced model name.  Both analyzer front doors feed it: the syntactic
one records the field-constructor spelling (``CharField(...)``) and the
live one the field class name, so the same :func:`type_env` builder serves
linting over source trees and runtime pushdown decisions alike.

>>> from repro.analysis.facts import facts_for_source
>>> mod = facts_for_source('''
... class Doc(JModel):
...     title = CharField(nullable=False, default="")
...     score = IntegerField()
...     owner = ForeignKey("User")
... ''', "m.py")
>>> env = type_env(mod.models[0])
>>> env.lookup("title").kind, env.lookup("title").nullable
('text', False)
>>> env.lookup("owner_id").kind, env.lookup("owner_id").fk_target
('int', 'User')
>>> env.lookup("jid").kind, env.lookup("jid").nullable
('int', False)
>>> env.lookup("missing") is None
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.facts import ModelFacts

#: Field-constructor leaf name -> coarse value kind.
_CTOR_KINDS = {
    "CharField": "text",
    "TextField": "text",
    "IntegerField": "int",
    "FloatField": "float",
    "BooleanField": "bool",
    "DateTimeField": "datetime",
    "ForeignKey": "int",
}


@dataclass(frozen=True)
class ColumnType:
    """The inferred type of one backing column."""

    column: str
    kind: str  # "text" | "int" | "float" | "bool" | "datetime" | "unknown"
    nullable: bool = True
    fk_target: Optional[str] = None


class TypeEnv:
    """Attribute/column -> :class:`ColumnType` for one model."""

    def __init__(self, model: str, entries: Dict[str, ColumnType]):
        self.model = model
        self._entries = dict(entries)

    def lookup(self, name: str) -> Optional[ColumnType]:
        """Resolve a field name or column name; ``None`` when unknown."""
        return self._entries.get(name)

    def knows(self, name: str) -> bool:
        return name in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TypeEnv({self.model}, {sorted(self._entries)})"


def type_env(facts: ModelFacts) -> TypeEnv:
    """Build the type environment for one model's facts.

    Metadata columns are always present: ``jid`` is a non-null integer and
    ``jvars`` a non-null text column.  Unrecognized field constructors map
    to kind ``"unknown"`` (their declared nullability is still trusted).
    """
    entries: Dict[str, ColumnType] = {
        "jid": ColumnType("jid", "int", nullable=False),
        "jvars": ColumnType("jvars", "text", nullable=False),
    }
    for field in facts.fields.values():
        kind = _CTOR_KINDS.get(field.ctor or "", "unknown")
        ctype = ColumnType(
            field.column,
            kind,
            nullable=field.nullable,
            fk_target=field.fk_target,
        )
        entries[field.name] = ctype
        entries[field.column] = ctype
    return TypeEnv(facts.name, entries)
