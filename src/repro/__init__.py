"""repro: a reproduction of "Precise, Dynamic Information Flow for
Database-Backed Applications" (Yang et al., PLDI 2016).

The package provides:

* :mod:`repro.core` -- the Jeeves faceted-execution runtime;
* :mod:`repro.solver` -- the SAT substrate used for label assignment;
* :mod:`repro.lambda_jdb` -- an executable interpreter for the λJDB core
  calculus used in the paper's formal development;
* :mod:`repro.db` -- relational database substrates (in-memory engine and a
  SQLite backend);
* :mod:`repro.form` -- the faceted object-relational mapping (FORM);
* :mod:`repro.web` -- the Jacqueline-style model-view-controller framework;
* :mod:`repro.baseline` -- a non-faceted ORM/stack for hand-coded-policy
  comparisons;
* :mod:`repro.apps` -- the paper's case studies (conference manager, health
  record manager, course manager, and the Section 2 calendar example);
* :mod:`repro.bench` -- workload generators and the harness that regenerates
  the paper's tables and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
