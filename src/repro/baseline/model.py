"""The baseline ORM: plain models over the relational substrate.

This mirrors Django's behaviour where the paper's comparison depends on it:

* models store exactly what the application gives them (no facets, no
  meta-data columns);
* ``Model.objects.get(...)`` raises :class:`DoesNotExist` when no row matches
  (the paper's Figure 8 wraps policy checks in ``try/except`` because of it);
* policy enforcement is entirely the application's responsibility: views must
  call policy functions and scrub fields by hand.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from repro.db.engine import Database
from repro.db.expr import eq, eq_or_null
from repro.db.query import (
    Query,
    limit_by_key,
    plan_bounded,
    plan_count_distinct,
    plan_delete,
    plan_exists,
    plan_scalar_aggregate,
    plan_update,
)
from repro.db.schema import Column, ColumnType, TableSchema
from repro.form.fields import Field
from repro.baseline.fields import ForeignKey


class DoesNotExist(Exception):
    """Raised by ``get`` when no record matches (Django behaviour)."""


class BaselineDB:
    """A database handle for baseline models (thread-local stack)."""

    def __init__(self, database: Optional[Database] = None) -> None:
        self.database = database if database is not None else Database()
        self._models: Dict[str, type] = {}

    def register(self, model: type) -> None:
        self.database.create_table(model._meta.table_schema())
        self._models[model._meta.table_name] = model

    def register_all(self, models: List[type]) -> None:
        for model in models:
            self.register(model)

    def clear(self) -> None:
        self.database.clear()


_state = threading.local()


def _db_stack() -> List[BaselineDB]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = [BaselineDB()]
        _state.stack = stack
    return stack


def current_baseline_db() -> BaselineDB:
    return _db_stack()[-1]


@contextlib.contextmanager
def use_baseline_db(db: BaselineDB) -> Iterator[BaselineDB]:
    stack = _db_stack()
    stack.append(db)
    try:
        yield db
    finally:
        stack.pop()


class BaselineRegistry:
    """Name → baseline model class registry (for string foreign keys)."""

    _models: Dict[str, type] = {}

    @classmethod
    def register(cls, model: type) -> None:
        cls._models[model.__name__] = model

    @classmethod
    def get(cls, name: str) -> type:
        try:
            return cls._models[name]
        except KeyError as exc:
            raise LookupError(f"unknown baseline model {name!r}") from exc


class BaselineOptions:
    """Per-model metadata for the baseline ORM."""

    def __init__(self, model: type, fields: Dict[str, Field]) -> None:
        self.model = model
        self.table_name = model.__name__
        self.fields = fields

    def table_schema(self) -> TableSchema:
        columns: List[Column] = [Column("id", ColumnType.INTEGER, primary_key=True)]
        for field in self.fields.values():
            columns.append(field.to_column())
        return TableSchema(self.table_name, tuple(columns))

    def field_column(self, name: str) -> str:
        return self.fields[name].column_name


class BaselineMeta(type):
    """Collects fields into ``cls._meta`` and attaches a manager."""

    def __new__(mcls, name: str, bases: Tuple[type, ...], namespace: Dict[str, Any]):
        cls = super().__new__(mcls, name, bases, dict(namespace))
        if name in {"Model"} and not bases:
            return cls
        fields: Dict[str, Field] = {}
        for base in bases:
            base_meta = getattr(base, "_meta", None)
            if base_meta is not None:
                fields.update(base_meta.fields)
        for attr_name, attr_value in list(namespace.items()):
            if isinstance(attr_value, Field):
                attr_value.name = attr_name
                attr_value.model = cls
                fields[attr_name] = attr_value
                delattr(cls, attr_name)
        cls._meta = BaselineOptions(cls, fields)
        BaselineRegistry.register(cls)
        cls.objects = BaselineManager(cls)
        cls.DoesNotExist = DoesNotExist
        return cls


class Model(metaclass=BaselineMeta):
    """Base class for baseline (non-faceted) models."""

    _meta: BaselineOptions

    def __init__(self, **kwargs: Any) -> None:
        self.pk: Optional[int] = kwargs.pop("pk", None) or kwargs.pop("id", None)
        meta = type(self)._meta
        for name, field in meta.fields.items():
            if name in kwargs:
                value = kwargs.pop(name)
                if isinstance(field, ForeignKey) and isinstance(value, Model):
                    self.__dict__[f"_fk_cache_{name}"] = value
                    setattr(self, field.column_name, value.pk)
                else:
                    setattr(self, field.column_name, value)
            elif isinstance(field, ForeignKey) and f"{name}_id" in kwargs:
                setattr(self, f"{name}_id", kwargs.pop(f"{name}_id"))
            else:
                setattr(self, field.column_name, field.default)
        if kwargs:
            raise TypeError(f"unexpected field(s) {sorted(kwargs)} for {type(self).__name__}")

    # -- identity ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        if type(self) is not type(other):
            return False
        if self.pk is None or other.pk is None:
            return self is other
        return self.pk == other.pk

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.pk if self.pk is not None else id(self)))

    def __repr__(self) -> str:
        meta = type(self)._meta
        parts = [f"pk={self.pk}"]
        for name, field in list(meta.fields.items())[:4]:
            parts.append(f"{name}={getattr(self, field.column_name, None)!r}")
        return f"{type(self).__name__}({', '.join(parts)})"

    # -- foreign keys --------------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        meta = type(self).__dict__.get("_meta") or type(self)._meta
        field = meta.fields.get(name)
        if isinstance(field, ForeignKey):
            cache_name = f"_fk_cache_{name}"
            if cache_name in self.__dict__:
                return self.__dict__[cache_name]
            target_pk = self.__dict__.get(field.column_name)
            if target_pk is None:
                return None
            resolved = field.target_model().objects.get(pk=target_pk)
            self.__dict__[cache_name] = resolved
            return resolved
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {name!r}")

    # -- persistence -----------------------------------------------------------------------

    def field_values(self) -> Dict[str, Any]:
        meta = type(self)._meta
        return {
            field.column_name: field.to_db(self.__dict__.get(field.column_name))
            for field in meta.fields.values()
        }

    def save(self) -> "Model":
        db = current_baseline_db().database
        meta = type(self)._meta
        values = self.field_values()
        if self.pk is None:
            self.pk = db.insert_row(meta.table_name, values)
        else:
            db.update(meta.table_name, eq("id", self.pk), **values)
        return self

    def delete(self) -> None:
        """Remove this row; clears ``pk`` so a later ``save`` re-creates it
        (Django behaviour -- a stale pk would resurrect the record through
        the UPDATE path instead)."""
        if self.pk is None:
            return
        db = current_baseline_db().database
        db.delete(type(self)._meta.table_name, eq("id", self.pk))
        self.pk = None


class BaselineQuerySet:
    """A lazily executed query over one baseline model."""

    def __init__(
        self,
        model: Type[Model],
        filters: Optional[Dict[str, Any]] = None,
        order_fields: Tuple[Tuple[str, bool], ...] = (),
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> None:
        self.model = model
        self.filters = dict(filters or {})
        self.order_fields = order_fields
        self.limit = limit
        self.offset = offset

    def filter(self, **filters: Any) -> "BaselineQuerySet":
        combined = dict(self.filters)
        combined.update(filters)
        return BaselineQuerySet(
            self.model, combined, self.order_fields, self.limit, self.offset
        )

    def order_by(self, *fields: str) -> "BaselineQuerySet":
        order = list(self.order_fields)
        for field in fields:
            order.append((field.lstrip("-"), not field.startswith("-")))
        return BaselineQuerySet(
            self.model, self.filters, tuple(order), self.limit, self.offset
        )

    def limited(self, limit: int, offset: int = 0) -> "BaselineQuerySet":
        return BaselineQuerySet(
            self.model, self.filters, self.order_fields, limit, offset
        )

    # -- execution ----------------------------------------------------------------------

    def fetch(self) -> List[Model]:
        db = current_baseline_db().database
        meta = self.model._meta
        query, joined = self._build_query(meta)
        rows = db.execute(query)
        instances = []
        for row in rows:
            values = self._base_values(meta, row, joined)
            instances.append(_instance_from_row(self.model, values))
        if joined:
            # The bounded pushdown already restricts a joined query to the
            # selected pks; this distinct-record truncation (same helper the
            # FORM uses per jid) stays as a backend-independent safety net.
            instances = limit_by_key(instances, lambda inst: inst.pk, self.limit)
        return instances

    def __iter__(self) -> Iterator[Model]:
        return iter(self.fetch())

    def __len__(self) -> int:
        return len(self.fetch())

    def first(self) -> Optional[Model]:
        """The first match, fetched with ``LIMIT 1`` pushed to the database."""
        bounded = self if self.limit is not None else self.limited(1, self.offset)
        rows = bounded.fetch()
        return rows[0] if rows else None

    def count(self) -> int:
        """The number of matching records, in one ``COUNT(DISTINCT id)``.

        Counting DISTINCT primary keys (rather than raw rows) keeps the
        count per *record* under joins, where one record spans one row per
        join match -- the same record-counting discipline as the FORM's
        jid-based count.  Bounded query sets keep the fetching path: the
        bound itself counts records, which a scalar plan cannot see.
        """
        if self.limit is not None or self.offset:
            return len(self.fetch())
        db = current_baseline_db().database
        query, _joined = self._build_query(self.model._meta)
        return int(db.aggregate(plan_count_distinct(query, "id")) or 0)

    def exists(self) -> bool:
        """Whether any record matches, via one ``SELECT EXISTS(...)``.

        The database answers the probe without returning rows: SQLite stops
        at its first hit and the memory engine early-exits its scan.
        """
        if self.limit is not None or self.offset:
            return bool(self.fetch())
        db = current_baseline_db().database
        query, _joined = self._build_query(self.model._meta)
        return bool(db.aggregate(plan_exists(query)))

    def aggregate(self, field_name: str, function: str) -> Any:
        """Aggregate a field over the matching rows in one SQL statement.

        ``function`` is COUNT, SUM, AVG, MIN or MAX with SQL's NULL rules
        (NULLs skipped; SUM/AVG/MIN/MAX of no values is ``None``, COUNT is
        0).  Under a join the aggregate ranges over the joined rows, like
        Django's -- a record matched by several join rows contributes each
        of them.  Bounded query sets reduce the fetched instances instead.
        """
        function = function.upper()
        meta = self.model._meta
        if field_name in ("id", "pk"):
            column = "id"
        else:
            from repro.form.aggregates import check_aggregate_field

            column = check_aggregate_field(
                field_name, meta.fields.get(field_name), meta.table_name, function
            )
        if self.limit is not None or self.offset:
            from repro.form.aggregates import stats_of_values

            # Instances expose the primary key as ``pk``, not ``id``.
            attribute = "pk" if column == "id" else column
            values = [getattr(instance, attribute, None) for instance in self.fetch()]
            return stats_of_values(values).finalise(function)
        db = current_baseline_db().database
        query, _joined = self._build_query(meta)
        return db.aggregate(plan_scalar_aggregate(query, function, column))

    def sum(self, field_name: str) -> Any:
        """``SUM(field)`` in one statement (``None`` when no values)."""
        return self.aggregate(field_name, "SUM")

    def avg(self, field_name: str) -> Any:
        """``AVG(field)`` in one statement (``None`` when no values)."""
        return self.aggregate(field_name, "AVG")

    def min(self, field_name: str) -> Any:
        """``MIN(field)`` in one statement (``None`` when no values)."""
        return self.aggregate(field_name, "MIN")

    def max(self, field_name: str) -> Any:
        """``MAX(field)`` in one statement (``None`` when no values)."""
        return self.aggregate(field_name, "MAX")

    def update(self, **values: Any) -> int:
        """Set columns on every matching record in one UPDATE statement.

        Django semantics: no instances are fetched or saved, and the number
        of affected rows is returned.  Joined filters and bounds compile to
        the id-subselect pushdown (``UPDATE t SET ... WHERE id IN (SELECT
        DISTINCT id ...)``); plain single-table filters apply directly.
        """
        if not values:
            return 0
        from repro.form.writes import resolve_update_fields

        db = current_baseline_db().database
        meta = self.model._meta
        column_values: Dict[str, Any] = {}
        # Same kwarg-to-field resolution as the FORM's update(); only the
        # instance marshalling differs (pk here, jid there).
        for _name, field, value in resolve_update_fields(meta, values):
            column_values[field.column_name] = (
                value.pk if isinstance(value, Model) else field.to_db(value)
            )
        query, joined = self._raw_query(meta)
        key = "id" if (joined or self.limit is not None or self.offset) else None
        return db.execute_update(plan_update(query, column_values, key_column=key))

    def delete(self) -> int:
        """Delete every matching record in one DELETE statement.

        Replaces the fetch-then-delete-per-row loop: joined or bounded
        query sets push their filters through the id subselect, plain ones
        delete directly on their WHERE clause.  Returns the number of rows
        removed.
        """
        db = current_baseline_db().database
        meta = self.model._meta
        query, joined = self._raw_query(meta)
        key = "id" if (joined or self.limit is not None or self.offset) else None
        return db.execute_delete(plan_delete(query, key_column=key))

    # -- internals ---------------------------------------------------------------------------

    def _raw_query(self, meta: BaselineOptions) -> Tuple[Query, List[str]]:
        """Filters, joins, ordering and the raw bound -- no plan applied.

        Shared input of the read planner (:meth:`_build_query`) and the
        write planners (``plan_update``/``plan_delete``).
        """
        query = Query(table=meta.table_name)
        joined: List[str] = []
        has_join = any("__" in lookup for lookup in self.filters)
        for lookup, value in self.filters.items():
            query = self._apply_filter(meta, query, joined, lookup, value, has_join)
        for field, ascending in self.order_fields:
            column = meta.fields[field].column_name if field in meta.fields else field
            if joined and "." not in column:
                # Qualify with the base table: the joined table may carry a
                # column of the same name, which SQLite rejects as ambiguous.
                column = f"{meta.table_name}.{column}"
            query = query.ordered_by(column, ascending)
        if self.limit is not None or self.offset:
            query = query.limited(self.limit, self.offset)
        return query, joined

    def _build_query(self, meta: BaselineOptions) -> Tuple[Query, List[str]]:
        query, joined = self._raw_query(meta)
        if joined and (query.limit is not None or query.offset):
            # A row LIMIT under a join would count join-duplicated rows, so a
            # bounded joined query compiles to the id-subselect pushdown (the
            # same plan the FORM uses with jid), bounding *records* in SQL.
            query = plan_bounded(query, "id", query.limit, query.offset)
        return query, joined

    def _apply_filter(
        self,
        meta: BaselineOptions,
        query: Query,
        joined: List[str],
        lookup: str,
        value: Any,
        has_join: bool,
    ) -> Query:
        if "__" in lookup:
            fk_name, _, related = lookup.partition("__")
            field = meta.fields.get(fk_name)
            if not isinstance(field, ForeignKey):
                raise ValueError(f"{lookup!r}: {fk_name!r} is not a foreign key")
            target_meta = field.target_model()._meta
            if target_meta.table_name not in joined:
                query = query.join(target_meta.table_name, field.column_name, "id")
                joined.append(target_meta.table_name)
            column = "id" if related in ("id", "pk") else target_meta.field_column(related)
            if isinstance(value, Model):
                value = value.pk
            return query.filter(eq_or_null(f"{target_meta.table_name}.{column}", value))
        if lookup in ("id", "pk"):
            column = f"{meta.table_name}.id" if has_join else "id"
            return query.filter(eq_or_null(column, value))
        field = meta.fields.get(lookup)
        if field is None and lookup.endswith("_id"):
            field = meta.fields.get(lookup[:-3])
        if field is None:
            raise ValueError(f"unknown field {lookup!r} on {meta.table_name}")
        if isinstance(value, Model):
            value = value.pk
        else:
            value = field.to_db(value)
        column = field.column_name
        if has_join:
            column = f"{meta.table_name}.{column}"
        return query.filter(eq_or_null(column, value))

    @staticmethod
    def _base_values(meta: BaselineOptions, row: Dict[str, Any], joined: List[str]) -> Dict[str, Any]:
        if not joined:
            return dict(row)
        prefix = f"{meta.table_name}."
        return {
            name[len(prefix):]: value for name, value in row.items() if name.startswith(prefix)
        }


class BaselineManager:
    """``Model.objects`` for baseline models."""

    def __init__(self, model: Type[Model]) -> None:
        self.model = model

    def __get__(self, instance: Any, owner: Type) -> "BaselineManager":
        return self

    def create(self, **kwargs: Any) -> Model:
        instance = self.model(**kwargs)
        instance.save()
        return instance

    def all(self) -> BaselineQuerySet:
        return BaselineQuerySet(self.model)

    def filter(self, **filters: Any) -> BaselineQuerySet:
        return BaselineQuerySet(self.model, filters)

    def get(self, **filters: Any) -> Model:
        """Django semantics: raise :class:`DoesNotExist` when nothing matches."""
        found = BaselineQuerySet(self.model, filters).first()
        if found is None:
            raise DoesNotExist(
                f"{self.model.__name__} matching {filters!r} does not exist"
            )
        return found

    def count(self) -> int:
        return BaselineQuerySet(self.model).count()

    def exists(self) -> bool:
        return BaselineQuerySet(self.model).exists()

    def aggregate(self, field_name: str, function: str) -> Any:
        return BaselineQuerySet(self.model).aggregate(field_name, function)


def _instance_from_row(model: Type[Model], values: Dict[str, Any]) -> Model:
    meta = model._meta
    instance = model.__new__(model)
    instance.pk = values.get("id")
    for field in meta.fields.values():
        instance.__dict__[field.column_name] = field.from_db(values.get(field.column_name))
    return instance
