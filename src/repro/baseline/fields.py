"""Field declarations for the baseline (non-faceted) ORM.

These mirror :mod:`repro.form.fields` but foreign keys reference the target's
primary key (``id``) rather than a facet identifier, exactly like Django.
"""

from __future__ import annotations

from typing import Any, Type, TYPE_CHECKING

from repro.form.fields import (
    BooleanField,
    CharField,
    DateTimeField,
    Field,
    FloatField,
    IntegerField,
    TextField,
)
from repro.db.schema import ColumnType

if TYPE_CHECKING:  # pragma: no cover
    from repro.baseline.model import Model

__all__ = [
    "Field",
    "CharField",
    "TextField",
    "IntegerField",
    "FloatField",
    "BooleanField",
    "DateTimeField",
    "ForeignKey",
]


class ForeignKey(Field):
    """A reference to another baseline model, stored as ``<name>_id`` = pk."""

    column_type = ColumnType.INTEGER

    def __init__(self, to: Any, **kwargs: Any) -> None:
        kwargs.setdefault("indexed", True)
        super().__init__(**kwargs)
        self._to = to

    @property
    def column_name(self) -> str:
        return f"{self.name}_id"

    def target_model(self) -> Type["Model"]:
        if isinstance(self._to, str):
            from repro.baseline.model import BaselineRegistry

            return BaselineRegistry.get(self._to)
        return self._to

    def to_db(self, value: Any) -> Any:
        from repro.baseline.model import Model

        if value is None:
            return None
        if isinstance(value, Model):
            return value.pk
        return int(value)
