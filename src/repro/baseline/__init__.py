"""A plain (non-faceted) ORM used for the hand-coded-policy baseline.

The paper compares Jacqueline against "traditional applications with
hand-coded policy checks" written in Django (Figure 8): the schema holds no
policies, and every view must remember to call the right policy functions and
scrub the data it renders.  This package provides the Django stand-in: the
same field vocabulary and query API as :mod:`repro.form`, but values are
stored and returned verbatim, foreign keys reference primary keys, and ``get``
raises :class:`DoesNotExist` when nothing matches (as Django does).
"""

from repro.baseline.model import (
    BaselineManager,
    BaselineQuerySet,
    DoesNotExist,
    Model,
    use_baseline_db,
    current_baseline_db,
    BaselineDB,
)
from repro.baseline.fields import (
    BooleanField,
    CharField,
    DateTimeField,
    Field,
    FloatField,
    ForeignKey,
    IntegerField,
    TextField,
)

__all__ = [
    "Model",
    "BaselineManager",
    "BaselineQuerySet",
    "DoesNotExist",
    "BaselineDB",
    "use_baseline_db",
    "current_baseline_db",
    "Field",
    "CharField",
    "TextField",
    "IntegerField",
    "FloatField",
    "BooleanField",
    "DateTimeField",
    "ForeignKey",
]
