"""A small model-view-controller web framework.

Jacqueline is "a web framework based on Python's Django framework"; the
relevant pieces for the paper's evaluation are the MVC structure (models with
policies, controller views, template rendering), session-based
authentication, and the point where the framework resolves faceted values
for the logged-in viewer.  This package provides those pieces:

* :mod:`repro.web.http` -- request/response objects;
* :mod:`repro.web.routing` -- URL routing with path parameters;
* :mod:`repro.web.templates` -- a tiny template engine (variables, ``for``,
  ``if``);
* :mod:`repro.web.sessions` / :mod:`repro.web.auth` -- cookie-less sessions
  and a user store;
* :mod:`repro.web.app` -- the application object.  ``JacquelineApp`` binds a
  FORM, sets the session user as the speculated viewer on "get" requests
  (Early Pruning) and concretises every value handed to a template;
  ``BaselineApp`` provides the same plumbing without any of that, for the
  hand-coded-policy comparison;
* :mod:`repro.web.testclient` -- in-process clients used by the examples,
  tests and benchmarks (the stand-in for the paper's FunkLoad HTTP driver);
* :mod:`repro.web.wsgi` / :mod:`repro.web.serve` -- the serving layer:
  a WSGI adapter for any WSGI server plus a bundled threaded server for
  zero-dependency local runs.
"""

from repro.web.http import HttpError, Request, Response
from repro.web.routing import Route, Router
from repro.web.templates import Template, render_template
from repro.web.sessions import Session, SessionStore
from repro.web.auth import AuthenticationError, Authenticator
from repro.web.app import Application, BaselineApp, JacquelineApp
from repro.web.testclient import TestClient, WsgiClient
from repro.web.wsgi import SESSION_COOKIE, WsgiAdapter
from repro.web.serve import BackgroundServer, ThreadingWSGIServer, make_threaded_server, serve

__all__ = [
    "Request",
    "Response",
    "HttpError",
    "Router",
    "Route",
    "Template",
    "render_template",
    "Session",
    "SessionStore",
    "Authenticator",
    "AuthenticationError",
    "Application",
    "JacquelineApp",
    "BaselineApp",
    "TestClient",
    "WsgiClient",
    "WsgiAdapter",
    "SESSION_COOKIE",
    "BackgroundServer",
    "ThreadingWSGIServer",
    "make_threaded_server",
    "serve",
]
