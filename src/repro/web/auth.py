"""Authentication: mapping sessions to application user objects.

Applications register a *user loader* -- a callable from a stored user
identifier to the application's user model instance (e.g. a ``UserProfile``
row).  The application object calls :meth:`Authenticator.user_for` on every
request and exposes the result as ``request.user``; in the Jacqueline app the
same object becomes the speculated viewer for Early Pruning.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Optional

from repro.web.sessions import Session


class AuthenticationError(Exception):
    """Raised for bad credentials."""


def hash_password(password: str, salt: str = "jacqueline") -> str:
    """A deterministic password hash (not for production use)."""
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


class Authenticator:
    """Username/password accounts plus the session → user mapping."""

    def __init__(self, user_loader: Optional[Callable[[Any], Any]] = None) -> None:
        self._credentials: Dict[str, str] = {}
        self._user_ids: Dict[str, Any] = {}
        self._user_loader = user_loader or (lambda user_id: user_id)

    # -- account management -------------------------------------------------------

    def register(self, username: str, password: str, user_id: Any) -> None:
        """Create an account bound to an application-level user identifier."""
        self._credentials[username] = hash_password(password)
        self._user_ids[username] = user_id

    def has_account(self, username: str) -> bool:
        return username in self._credentials

    # -- login / logout ----------------------------------------------------------------

    def login(self, session: Session, username: str, password: str) -> Any:
        """Validate credentials and record the login in the session."""
        expected = self._credentials.get(username)
        if expected is None or expected != hash_password(password):
            raise AuthenticationError(f"invalid credentials for {username!r}")
        self.force_login(session, self._user_ids[username], username)
        return self.user_for(session)

    def force_login(self, session: Session, user_id: Any, username: str = "") -> None:
        """Record a login without credentials (tests and benchmarks).

        The session id is rotated before the identity is written, so a
        pre-planted (fixated) cookie never becomes an authenticated session.
        """
        rotate = getattr(session, "rotate", None)
        if callable(rotate):
            rotate()
        session["username"] = username
        session["user_id"] = user_id

    def logout(self, session: Session) -> None:
        session.data.pop("username", None)
        session.data.pop("user_id", None)

    # -- lookup -------------------------------------------------------------------------

    def user_for(self, session: Optional[Session]) -> Any:
        """The application user object for a session, or ``None``."""
        if session is None or "user_id" not in session:
            return None
        return self._user_loader(session["user_id"])

    def set_user_loader(self, loader: Callable[[Any], Any]) -> None:
        self._user_loader = loader
