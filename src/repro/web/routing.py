"""URL routing with ``<name>`` path parameters."""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.web.http import Request

#: A view takes the request and returns a Response, a (template, context)
#: pair, or a plain context dict (the route then names the template).
View = Callable[..., Any]


class Route:
    """One URL pattern bound to a view."""

    def __init__(
        self,
        pattern: str,
        view: View,
        methods: Tuple[str, ...] = ("GET", "POST"),
        name: str = "",
        template: str = "",
    ) -> None:
        self.pattern = pattern if pattern.startswith("/") else "/" + pattern
        self.view = view
        self.methods = tuple(method.upper() for method in methods)
        self.name = name or view.__name__
        self.template = template
        self._regex = self._compile(self.pattern)

    @staticmethod
    def _compile(pattern: str) -> re.Pattern:
        parts = []
        for segment in pattern.strip("/").split("/"):
            if segment.startswith("<") and segment.endswith(">"):
                parts.append(f"(?P<{segment[1:-1]}>[^/]+)")
            elif segment:
                parts.append(re.escape(segment))
        body = "/".join(parts)
        return re.compile(f"^/{body}$" if body else "^/$")

    def match(self, path: str, method: str) -> Optional[Dict[str, str]]:
        """Path parameters if this route matches, else ``None``."""
        if method.upper() not in self.methods:
            return None
        found = self._regex.match(path if path.startswith("/") else "/" + path)
        if found is None:
            return None
        return found.groupdict()

    def __repr__(self) -> str:
        return f"Route({self.pattern!r} -> {self.name})"


class Router:
    """An ordered collection of routes."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self,
        pattern: str,
        view: View,
        methods: Tuple[str, ...] = ("GET", "POST"),
        name: str = "",
        template: str = "",
    ) -> Route:
        route = Route(pattern, view, methods, name, template)
        self._routes.append(route)
        return route

    def route(self, pattern: str, methods: Tuple[str, ...] = ("GET", "POST"), template: str = ""):
        """Decorator form: ``@router.route("/papers/<pk>")``."""

        def decorate(view: View) -> View:
            self.add(pattern, view, methods=methods, template=template)
            return view

        return decorate

    def resolve(self, request: Request) -> Optional[Route]:
        """The first route matching the request (path params stored on it)."""
        for route in self._routes:
            params = route.match(request.path, request.method)
            if params is not None:
                request.path_params = params
                return route
        return None

    def routes(self) -> List[Route]:
        return list(self._routes)

    def url_for(self, name: str, **params: Any) -> str:
        """Reverse a route name into a path (simple parameter substitution)."""
        for route in self._routes:
            if route.name == name:
                path = route.pattern
                for key, value in params.items():
                    path = path.replace(f"<{key}>", str(value))
                return path
        raise LookupError(f"no route named {name!r}")
