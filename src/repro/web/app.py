"""Application objects: request dispatch plus framework policy handling.

:class:`Application` owns the router, session store and authenticator and
turns view return values into responses.  Two subclasses bind the two
stacks compared in the paper:

* :class:`JacquelineApp` holds a :class:`~repro.form.context.FORM`.  Every
  request runs with that FORM active; "get" requests additionally speculate
  on the session user as the viewer (Early Pruning, Section 3.2).  Values
  placed in a template context are concretised for the logged-in viewer
  before rendering, so views stay policy-agnostic.
* :class:`BaselineApp` holds a plain :class:`~repro.baseline.model.BaselineDB`;
  views receive raw data and are themselves responsible for enforcing
  policies (the hand-coded-check comparison of Figure 8).
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs
from repro.cache.epoch import policy_epoch
from repro.cache.fragment import FragmentCache
from repro.cache.label_cache import viewer_cache_key
from repro.core.facets import Facet
from repro.form.context import FORM, use_form, viewer_context
from repro.baseline.model import BaselineDB, use_baseline_db
from repro.web.auth import Authenticator
from repro.web.http import HttpError, Request, Response
from repro.web.routing import Route, Router
from repro.web.sessions import SessionStore
from repro.web.templates import render_template


class Application:
    """Routing, sessions and view-result handling shared by both stacks."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.router = Router()
        self.sessions = SessionStore()
        self.auth = Authenticator()
        self.templates: Dict[str, str] = {}

    # -- configuration -----------------------------------------------------------

    def route(self, pattern: str, methods: Tuple[str, ...] = ("GET", "POST"), template: str = ""):
        """Decorator registering a view."""
        return self.router.route(pattern, methods=methods, template=template)

    def add_template(self, name: str, source: str) -> None:
        self.templates[name] = source

    def wsgi(self) -> Any:
        """This application as a WSGI callable (see :mod:`repro.web.wsgi`).

        ``handle`` is safe to call from concurrent worker threads: per-request
        ambient state (active FORM, speculated viewer, path conditions) lives
        in thread-local stacks entered by ``_request_context``.
        """
        from repro.web.wsgi import WsgiAdapter  # deferred: wsgi imports app

        return WsgiAdapter(self)

    # -- request handling -----------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Dispatch one request to its view and normalise the result.

        Each request runs as one observability trace (when tracing is
        enabled): the span tree covers view execution, concretisation and
        template rendering, every backend statement appears as a ``db.sql``
        leaf, and the response carries an ``X-Trace-Id`` header pointing at
        the stored trace (``/debug/trace/<id>``).
        """
        with obs.trace(f"{request.method} {request.path}", app=self.name) as trace_:
            obs.add("web.requests")
            response = self._handle(request)
            if trace_ is not None:
                trace_.annotate(status=response.status)
                response.headers.setdefault("X-Trace-Id", trace_.trace_id)
            return response

    def _handle(self, request: Request) -> Response:
        request.session = self.sessions.get_or_create(request.session_id)
        request.session_id = request.session.session_id
        request.user = self.auth.user_for(request.session)
        route = self.router.resolve(request)
        if route is None:
            return Response.not_found(f"no route for {request.method} {request.path}")
        cached = self._cached_response(request)
        if cached is not None:
            return cached
        response: Optional[Response] = None
        try:
            with self._request_context(request):
                with obs.span("web.view", route=route.name):
                    result = route.view(request)
                response = self._to_response(request, route, result)
        except HttpError as error:
            response = Response(body=error.message, status=error.status)
        finally:
            # Runs even when the view crashes with a non-HTTP error: a
            # failed non-GET handler may already have mutated state the
            # caches cannot see, so invalidation must not be skipped.
            # The session id is re-read because a login view rotates it.
            request.session_id = request.session.session_id
            self._finish_request(request, response)
        return response

    # -- hooks overridden by the concrete stacks ----------------------------------------

    @contextlib.contextmanager
    def _request_context(self, request: Request):
        """Ambient state active while the view runs."""
        yield

    def _cached_response(self, request: Request) -> Optional[Response]:
        """A whole-response cache hit, or ``None`` (default: no cache)."""
        return None

    def _finish_request(self, request: Request, response: Optional[Response]) -> None:
        """Post-dispatch hook: response caching and cache invalidation.

        ``response`` is ``None`` when the view raised a non-HTTP error."""

    def _prepare_context(self, request: Request, context: Dict[str, Any]) -> Dict[str, Any]:
        """Transform a view's template context before rendering."""
        return context

    # -- view-result handling --------------------------------------------------------------

    def _to_response(self, request: Request, route: Route, result: Any) -> Response:
        if isinstance(result, Response):
            return result
        if isinstance(result, tuple) and len(result) == 2:
            template_name, context = result
        elif isinstance(result, dict):
            template_name, context = route.template, result
        elif result is None:
            template_name, context = route.template, {}
        else:
            return Response(body=str(result))
        context = dict(context)
        context.setdefault("user", request.user)
        with obs.span("web.concretize"):
            context = self._prepare_context(request, context)
        source = self.templates.get(template_name, template_name)
        if not source:
            raise HttpError(500, f"view {route.name!r} returned no template")
        with obs.span("web.render", template=template_name):
            body = render_template(source, context)
        return Response(body=body, context=context)


class JacquelineApp(Application):
    """The policy-agnostic stack: FORM-backed, facets resolved by the framework."""

    def __init__(self, form: FORM, name: str = "jacqueline", early_pruning: bool = True) -> None:
        super().__init__(name)
        self.form = form
        #: Early Pruning toggle; Table 5 measures the difference.
        self.early_pruning = early_pruning

    @contextlib.contextmanager
    def _request_context(self, request: Request):
        with use_form(self.form):
            if self.early_pruning and request.is_get and request.user is not None:
                # Speculate on the session user as the viewer ("get" requests
                # read but do not change policy-relevant state).
                with viewer_context(request.user):
                    yield
            else:
                yield

    # -- rendered-fragment cache ---------------------------------------------------------

    def _fragment_slot(self, request: Request):
        """The fragment cache and key for a request, or ``(None, None)``.

        Only GET requests by viewers with a stable identity participate;
        the viewer identity is part of the key, so a cached body is only
        ever replayed to the viewer it was concretised for.
        """
        caches = getattr(self.form, "caches", None)
        if caches is None or not caches.fragments_enabled or not request.is_get:
            return None, None
        key_viewer = viewer_cache_key(request.user)
        if key_viewer is None:
            return None, None
        return caches.fragments, FragmentCache.key_for(
            request.path, request.params, key_viewer
        )

    def _cached_response(self, request: Request) -> Optional[Response]:
        fragments, key = self._fragment_slot(request)
        if fragments is None:
            return None
        entry = fragments.get(key)
        if entry is not None:
            body, headers = entry
            return Response(body=body, headers=headers)
        # Miss: snapshot generation and epoch *before* the view renders, so
        # the fill below is discarded if a write or epoch bump races it.
        request._fragment_fill = (fragments, key, fragments.generation, policy_epoch())
        return None

    def _finish_request(self, request: Request, response: Optional[Response]) -> None:
        caches = getattr(self.form, "caches", None)
        if caches is None:
            return
        if not request.is_get:
            # Non-GET handlers may mutate state the invalidation bus cannot
            # observe (auth, sessions, out-of-band policy inputs), so drop
            # the viewer-facing caches wholesale -- even when the handler
            # crashed partway through.
            caches.on_external_change()
            return
        fill = getattr(request, "_fragment_fill", None)
        if fill is not None and response is not None and response.status == 200:
            fragments, key, generation, epoch = fill
            fragments.put(
                key, response.body, headers=response.headers,
                generation=generation, epoch=epoch,
            )

    def _prepare_context(self, request: Request, context: Dict[str, Any]) -> Dict[str, Any]:
        """Concretise every faceted value for the logged-in viewer.

        This is the computation sink: policies are resolved here, not in the
        views, which is what makes Jacqueline views policy-agnostic.
        """
        prepared = {}
        for name, value in context.items():
            prepared[name] = self._concretize(value, request.user)
        return prepared

    def _concretize(self, value: Any, viewer: Any) -> Any:
        if isinstance(value, Facet):
            return self.form.runtime.concretize(value, viewer)
        if isinstance(value, list):
            return [self._concretize(item, viewer) for item in value]
        if isinstance(value, dict):
            return {key: self._concretize(item, viewer) for key, item in value.items()}
        return value


class BaselineApp(Application):
    """The hand-coded-policy stack: plain ORM, views enforce policies themselves."""

    def __init__(self, db: BaselineDB, name: str = "baseline") -> None:
        super().__init__(name)
        self.db = db

    @contextlib.contextmanager
    def _request_context(self, request: Request):
        with use_baseline_db(self.db):
            yield
