"""A tiny template engine.

Supports the constructs the case-study pages need::

    {{ expression }}                      -- HTML-escaped interpolation
    {% for item in items %} ... {% endfor %}
    {% if condition %} ... {% else %} ... {% endif %}

Expressions are dotted lookups (``paper.title``) evaluated against the
context; attribute access falls back to dictionary lookup.  Everything is
escaped on output, so templates cannot smuggle raw values out by accident.
"""

from __future__ import annotations

import html
import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

_TOKEN = re.compile(r"({{.*?}}|{%.*?%})", re.DOTALL)


class TemplateError(Exception):
    """Raised for malformed templates or unresolvable expressions."""


class _Node:
    def render(self, context: Dict[str, Any]) -> str:
        raise NotImplementedError


class _Text(_Node):
    def __init__(self, text: str) -> None:
        self.text = text

    def render(self, context: Dict[str, Any]) -> str:
        return self.text


class _Expr(_Node):
    def __init__(self, expression: str) -> None:
        self.expression = expression.strip()

    def render(self, context: Dict[str, Any]) -> str:
        value = _lookup(self.expression, context)
        if value is None:
            return ""
        return html.escape(str(value))


class _If(_Node):
    def __init__(self, condition: str, then: List[_Node], orelse: List[_Node]) -> None:
        self.condition = condition.strip()
        self.then = then
        self.orelse = orelse

    def render(self, context: Dict[str, Any]) -> str:
        branch = self.then if _truthy(_lookup(self.condition, context)) else self.orelse
        return "".join(node.render(context) for node in branch)


class _For(_Node):
    def __init__(self, var: str, expression: str, body: List[_Node]) -> None:
        self.var = var
        self.expression = expression
        self.body = body

    def render(self, context: Dict[str, Any]) -> str:
        items = _lookup(self.expression, context)
        if items is None:
            return ""
        pieces = []
        for item in items:
            scoped = dict(context)
            scoped[self.var] = item
            pieces.append("".join(node.render(scoped) for node in self.body))
        return "".join(pieces)


def _truthy(value: Any) -> bool:
    return bool(value)


def _lookup(expression: str, context: Dict[str, Any]) -> Any:
    """Resolve a dotted expression against the context."""
    parts = expression.split(".")
    if parts[0] not in context:
        return None
    value: Any = context[parts[0]]
    for part in parts[1:]:
        if value is None:
            return None
        if isinstance(value, dict):
            value = value.get(part)
        else:
            value = getattr(value, part, None)
        if callable(value) and not isinstance(value, type):
            try:
                value = value()
            except TypeError:
                pass
    return value


class Template:
    """A parsed template ready to render repeatedly."""

    def __init__(self, source: str) -> None:
        self.source = source
        tokens = [token for token in _TOKEN.split(source) if token]
        self.nodes, remainder = self._parse(tokens, 0, ())
        if remainder != len(tokens):
            raise TemplateError("unbalanced template blocks")

    def _parse(
        self, tokens: List[str], index: int, stop: Tuple[str, ...]
    ) -> Tuple[List[_Node], int]:
        nodes: List[_Node] = []
        while index < len(tokens):
            token = tokens[index]
            if token.startswith("{{"):
                nodes.append(_Expr(token[2:-2]))
                index += 1
            elif token.startswith("{%"):
                directive = token[2:-2].strip()
                keyword = directive.split()[0]
                if keyword in stop:
                    return nodes, index
                if keyword == "for":
                    match = re.match(r"for\s+(\w+)\s+in\s+(.+)", directive)
                    if match is None:
                        raise TemplateError(f"malformed for: {directive!r}")
                    body, index = self._parse(tokens, index + 1, ("endfor",))
                    nodes.append(_For(match.group(1), match.group(2).strip(), body))
                    index += 1  # consume endfor
                elif keyword == "if":
                    condition = directive[2:].strip()
                    then, index = self._parse(tokens, index + 1, ("else", "endif"))
                    orelse: List[_Node] = []
                    if tokens[index][2:-2].strip().startswith("else"):
                        orelse, index = self._parse(tokens, index + 1, ("endif",))
                    nodes.append(_If(condition, then, orelse))
                    index += 1  # consume endif
                else:
                    raise TemplateError(f"unknown directive {directive!r}")
            else:
                nodes.append(_Text(token))
                index += 1
        if stop:
            raise TemplateError(f"missing closing tag for {stop}")
        return nodes, index

    def render(self, context: Optional[Dict[str, Any]] = None) -> str:
        context = dict(context or {})
        return "".join(node.render(context) for node in self.nodes)


from repro.cache.lru import LRUCache

#: Parse cache: template source -> parsed Template.  Bounded (unlike the
#: previous plain dict) so applications rendering many distinct template
#: strings cannot grow it without limit.
_template_cache = LRUCache(max_entries=512)


def render_template(source: str, context: Optional[Dict[str, Any]] = None) -> str:
    """Render template source with a per-source parse cache."""
    template = _template_cache.get(source)
    if template is None:
        template = Template(source)
        _template_cache.put(source, template)
    return template.render(context)


def template_cache_stats() -> Dict[str, Any]:
    """Hit/miss statistics of the parse cache (for diagnostics)."""
    return _template_cache.stats.snapshot()
