"""In-process test clients.

The paper drives its stress tests with FunkLoad over HTTP; these clients play
that role without the network: they build requests, maintain the session id
across calls (like a cookie jar) and return the framework's responses
directly.  :class:`TestClient` dispatches straight into ``app.handle``;
:class:`WsgiClient` goes through the full WSGI adapter (environ parsing,
form-body decoding, session cookie round-trip) without opening a socket --
the client the concurrent load benchmark runs on its worker threads.
"""

from __future__ import annotations

import io
from http.cookies import SimpleCookie
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlencode

from repro.web.app import Application
from repro.web.http import Request, Response


class TestClient:
    """Drives an :class:`~repro.web.app.Application` in process."""

    #: keep pytest from trying to collect this class as a test case
    __test__ = False

    def __init__(self, app: Application) -> None:
        self.app = app
        self.session_id: Optional[str] = None

    # -- request helpers --------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Mapping[str, Any]] = None,
        data: Optional[Mapping[str, Any]] = None,
    ) -> Response:
        request = Request(method, path, params=params, data=data, session_id=self.session_id)
        response = self.app.handle(request)
        self.session_id = request.session_id
        return response

    def get(self, path: str, **params: Any) -> Response:
        return self.request("GET", path, params=params)

    def post(self, path: str, **data: Any) -> Response:
        return self.request("POST", path, data=data)

    # -- authentication helpers ---------------------------------------------------------

    def login(self, username: str, password: str) -> Response:
        """Log in through the application's ``/login`` route."""
        return self.post("/login", username=username, password=password)

    def force_login(self, user_id: Any, username: str = "") -> None:
        """Attach a login to the client's session without going through a view."""
        request = Request("GET", "/", session_id=self.session_id)
        session = self.app.sessions.get_or_create(request.session_id)
        self.app.auth.force_login(session, user_id, username)
        # Read the id only after the login: force_login rotates it.
        self.session_id = session.session_id

    def logout(self) -> None:
        session = self.app.sessions.get(self.session_id)
        if session is not None:
            self.app.auth.logout(session)


class WsgiClient:
    """Drives an application through its WSGI adapter, in process.

    Requests are synthesised as WSGI environ dicts and responses come back
    through ``start_response``, so the path exercised is exactly what a real
    WSGI server executes per request -- minus the socket.  Each client keeps
    its own session cookie; use one client per simulated user/thread.
    """

    __test__ = False

    def __init__(self, wsgi_app: Any) -> None:
        # Accept either a WSGI callable or a bare Application.
        if isinstance(wsgi_app, Application):
            wsgi_app = wsgi_app.wsgi()
        self.wsgi_app = wsgi_app
        self.cookies: SimpleCookie = SimpleCookie()

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Mapping[str, Any]] = None,
        data: Optional[Mapping[str, Any]] = None,
    ) -> Response:
        path, _, path_query = path.partition("?")
        query_parts = [part for part in (path_query, urlencode(dict(params or {}))) if part]
        body = urlencode({k: str(v) for k, v in dict(data or {}).items()}).encode()
        environ: Dict[str, Any] = {
            "REQUEST_METHOD": method.upper(),
            "PATH_INFO": path,
            "QUERY_STRING": "&".join(query_parts),
            "CONTENT_TYPE": "application/x-www-form-urlencoded",
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
        }
        cookie_header = "; ".join(
            f"{name}={morsel.value}" for name, morsel in self.cookies.items()
        )
        if cookie_header:
            environ["HTTP_COOKIE"] = cookie_header

        captured: Dict[str, Any] = {}

        def start_response(status: str, headers: List[Tuple[str, str]]) -> None:
            captured["status"] = int(status.split(" ", 1)[0])
            captured["headers"] = headers

        chunks = self.wsgi_app(environ, start_response)
        text = b"".join(chunks).decode("utf-8")
        headers = dict(captured["headers"])
        for name, value in captured["headers"]:
            if name.lower() == "set-cookie":
                self.cookies.load(value)
        return Response(body=text, status=captured["status"], headers=headers)

    def get(self, path: str, **params: Any) -> Response:
        return self.request("GET", path, params=params)

    def post(self, path: str, **data: Any) -> Response:
        return self.request("POST", path, data=data)
