"""An in-process test client.

The paper drives its stress tests with FunkLoad over HTTP; this client plays
that role without the network: it builds requests, maintains the session id
across calls (like a cookie jar) and returns the framework's responses
directly.  Benchmarks time ``client.get(...)`` calls, which measure the whole
server-side path: routing, view, ORM, policy resolution and template
rendering.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.web.app import Application
from repro.web.http import Request, Response


class TestClient:
    """Drives an :class:`~repro.web.app.Application` in process."""

    #: keep pytest from trying to collect this class as a test case
    __test__ = False

    def __init__(self, app: Application) -> None:
        self.app = app
        self.session_id: Optional[str] = None

    # -- request helpers --------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Mapping[str, Any]] = None,
        data: Optional[Mapping[str, Any]] = None,
    ) -> Response:
        request = Request(method, path, params=params, data=data, session_id=self.session_id)
        response = self.app.handle(request)
        self.session_id = request.session_id
        return response

    def get(self, path: str, **params: Any) -> Response:
        return self.request("GET", path, params=params)

    def post(self, path: str, **data: Any) -> Response:
        return self.request("POST", path, data=data)

    # -- authentication helpers ---------------------------------------------------------

    def login(self, username: str, password: str) -> Response:
        """Log in through the application's ``/login`` route."""
        return self.post("/login", username=username, password=password)

    def force_login(self, user_id: Any, username: str = "") -> None:
        """Attach a login to the client's session without going through a view."""
        request = Request("GET", "/", session_id=self.session_id)
        session = self.app.sessions.get_or_create(request.session_id)
        self.session_id = session.session_id
        self.app.auth.force_login(session, user_id, username)

    def logout(self) -> None:
        session = self.app.sessions.get(self.session_id)
        if session is not None:
            self.app.auth.logout(session)
