"""HTTP request and response objects (framework-internal, no sockets).

The benchmarks drive applications through the in-process test client, so the
request/response types model just what views need: method, path, query
parameters, form data, session id and a status/body/headers triple back.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional
from urllib.parse import parse_qs, urlencode, urlsplit


class HttpError(Exception):
    """An error with an HTTP status code; converted to a response by the app."""

    def __init__(self, status: int, message: str = "") -> None:
        super().__init__(message or f"HTTP {status}")
        self.status = status
        self.message = message or f"HTTP {status}"


class Request:
    """An incoming request."""

    def __init__(
        self,
        method: str,
        path: str,
        params: Optional[Mapping[str, Any]] = None,
        data: Optional[Mapping[str, Any]] = None,
        session_id: Optional[str] = None,
    ) -> None:
        self.method = method.upper()
        split = urlsplit(path)
        self.path = split.path or "/"
        query: Dict[str, Any] = {
            name: values[-1] for name, values in parse_qs(split.query).items()
        }
        if params:
            query.update(dict(params))
        self.params = query
        self.data = dict(data or {})
        self.session_id = session_id
        #: populated by the application: the logged-in user and session object
        self.user: Any = None
        self.session: Any = None
        #: populated by the router: captured path parameters
        self.path_params: Dict[str, str] = {}

    @property
    def is_get(self) -> bool:
        return self.method == "GET"

    @property
    def is_post(self) -> bool:
        return self.method == "POST"

    def param(self, name: str, default: Any = None) -> Any:
        """A query or path parameter (path parameters take precedence)."""
        if name in self.path_params:
            return self.path_params[name]
        return self.params.get(name, default)

    def form(self, name: str, default: Any = None) -> Any:
        """A posted form field."""
        return self.data.get(name, default)

    def __repr__(self) -> str:
        return f"Request({self.method} {self.path})"


class Response:
    """An outgoing response."""

    def __init__(
        self,
        body: str = "",
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.body = body
        self.status = status
        self.headers = dict(headers or {})
        self.headers.setdefault("Content-Type", "text/html; charset=utf-8")
        #: the rendered template context, kept for white-box assertions in tests
        self.context = dict(context or {})

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "Response":
        return cls(body="", status=status, headers={"Location": location})

    @classmethod
    def not_found(cls, message: str = "Not Found") -> "Response":
        return cls(body=message, status=404)

    @classmethod
    def forbidden(cls, message: str = "Forbidden") -> "Response":
        return cls(body=message, status=403)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:
        return f"Response(status={self.status}, bytes={len(self.body)})"


def build_url(path: str, **params: Any) -> str:
    """Build a path with a query string (used by views issuing redirects)."""
    if not params:
        return path
    return f"{path}?{urlencode(params)}"
