"""A zero-dependency threaded serving layer for local runs.

``wsgiref``'s reference server is single-threaded; mixing in
``socketserver.ThreadingMixIn`` gives one worker thread per connection --
enough to exercise the paper's policy semantics under real concurrency
without any third-party server.  For production-style deployments the same
:class:`~repro.web.wsgi.WsgiAdapter` runs unchanged under gunicorn/uwsgi
(see :func:`demo_app` and the README).

Three entry points:

* :func:`serve` -- blocking ``serve_forever`` for ``python -m repro.web.serve``;
* :class:`BackgroundServer` -- context manager starting the server on a
  daemon thread (tests and benchmarks);
* :func:`demo_app` -- build a seeded demo application as a WSGI callable,
  e.g. ``gunicorn --threads 8 'repro.web.serve:demo_app()'``.
"""

from __future__ import annotations

import argparse
import socketserver
import threading
from typing import Any, Optional, Union
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.db.engine import Database
from repro.form.context import FORM, set_default_form
from repro.web.app import Application
from repro.web.wsgi import WsgiAdapter


class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    """A WSGI server with one worker thread per connection."""

    #: worker threads must not block interpreter shutdown
    daemon_threads = True
    #: avoid "address already in use" on quick restarts
    allow_reuse_address = True


class QuietRequestHandler(WSGIRequestHandler):
    """A request handler that does not log every request to stderr."""

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass


def make_threaded_server(
    app: Union[Application, WsgiAdapter],
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> WSGIServer:
    """A threaded WSGI server bound to ``host:port`` (0 picks a free port)."""
    wsgi_app = app if isinstance(app, WsgiAdapter) else WsgiAdapter(app)
    handler = QuietRequestHandler if quiet else WSGIRequestHandler
    return make_server(
        host, port, wsgi_app, server_class=ThreadingWSGIServer, handler_class=handler
    )


def serve(
    app: Union[Application, WsgiAdapter],
    host: str = "127.0.0.1",
    port: int = 8000,
    quiet: bool = False,
) -> None:
    """Serve an application until interrupted (blocking)."""
    server = make_threaded_server(app, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"Serving on http://{bound_host}:{bound_port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()


class BackgroundServer:
    """Run an application on a daemon thread for the ``with`` block.

    >>> with BackgroundServer(app) as server:
    ...     urllib.request.urlopen(server.url + "/papers")
    """

    def __init__(
        self,
        app: Union[Application, WsgiAdapter],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = make_threaded_server(app, host, port)
        self.host, self.port = self._server.server_address[:2]
        self.url = f"http://{self.host}:{self.port}"
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-web-serve", daemon=True
        )

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._server.shutdown()
        self._thread.join(timeout=10)
        self._server.server_close()


# -- demo applications (CLI and gunicorn entry points) ---------------------------------


def _is_empty(form: FORM) -> bool:
    return all(
        form.database.count(model._meta.table_name) == 0
        for model in form.registered_models()
    )


def _demo_parts(name: str):
    """(setup, seed, build) callables for a demo application."""
    if name == "conf":
        from repro.apps.conf import build_conf_app, seed_conference, setup_conf

        return (
            setup_conf,
            lambda form, n: seed_conference(form, papers=n, users=n, pc_members=4),
            build_conf_app,
        )
    if name == "health":
        from repro.apps.health import build_health_app, seed_health, setup_health

        return setup_health, lambda form, n: seed_health(form, patients=n), build_health_app
    if name == "course":
        from repro.apps.course import build_course_app, seed_courses, setup_courses

        return setup_courses, lambda form, n: seed_courses(form, courses=n), build_course_app
    raise ValueError(f"unknown demo application {name!r}")


def _build_demo(name: str, database: Optional[Database], seed_size: int) -> Application:
    from repro.web.obs import add_observability_routes

    setup, seed, build = _demo_parts(name)
    form = setup(database)
    # Seed only a fresh database: a reopened SQLite file keeps its data
    # (and FORM.register resumed its jid counters past the stored rows).
    if _is_empty(form):
        seed(form, seed_size)
    set_default_form(form)
    return add_observability_routes(build(form))


def demo_app(
    name: str = "conf", sqlite_path: Optional[str] = None, seed_size: int = 16
) -> WsgiAdapter:
    """A seeded demo application as a WSGI callable.

    ``gunicorn --threads 8 'repro.web.serve:demo_app()'`` serves the
    conference manager; pass ``sqlite_path`` for a WAL-mode file database
    shared by all worker threads.
    """
    database = Database.sqlite(sqlite_path) if sqlite_path else None
    return WsgiAdapter(_build_demo(name, database, seed_size))


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description="Serve a demo application.")
    parser.add_argument("--app", default="conf", choices=("conf", "health", "course"))
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--sqlite", default=None, metavar="PATH",
                        help="back the FORM with a WAL-mode SQLite file")
    parser.add_argument("--seed", type=int, default=16, metavar="N",
                        help="number of seeded records (papers/patients/courses)")
    parser.add_argument("--trace", action="store_true",
                        help="enable repro.obs tracing (per-request span trees "
                             "on /debug/trace/<id>, counters on /metrics)")
    args = parser.parse_args(argv)
    if args.trace:
        from repro import obs

        obs.enable()
    serve(demo_app(args.app, args.sqlite, args.seed), args.host, args.port)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    main()
