"""In-memory sessions keyed by opaque session ids."""

from __future__ import annotations

import itertools
import secrets
from typing import Any, Dict, Optional


class Session:
    """A per-client key/value store; ``user_id`` identifies the login."""

    def __init__(self, session_id: str) -> None:
        self.session_id = session_id
        self.data: Dict[str, Any] = {}

    def get(self, name: str, default: Any = None) -> Any:
        return self.data.get(name, default)

    def __setitem__(self, name: str, value: Any) -> None:
        self.data[name] = value

    def __getitem__(self, name: str) -> Any:
        return self.data[name]

    def __contains__(self, name: str) -> bool:
        return name in self.data

    def clear(self) -> None:
        self.data.clear()

    def __repr__(self) -> str:
        return f"Session({self.session_id!r}, keys={sorted(self.data)})"


class SessionStore:
    """Creates and looks up sessions."""

    def __init__(self) -> None:
        self._sessions: Dict[str, Session] = {}
        self._counter = itertools.count(1)

    def create(self) -> Session:
        session_id = f"s{next(self._counter)}-{secrets.token_hex(8)}"
        session = Session(session_id)
        self._sessions[session_id] = session
        return session

    def get(self, session_id: Optional[str]) -> Optional[Session]:
        if session_id is None:
            return None
        return self._sessions.get(session_id)

    def get_or_create(self, session_id: Optional[str]) -> Session:
        session = self.get(session_id)
        if session is None:
            session = self.create()
        return session

    def drop(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._sessions)
