"""In-memory sessions keyed by opaque session ids.

The store is shared by every worker thread of a threaded server, so session
creation/lookup serialises on a lock.  The server path mints a session for
every cookie-less request (health checks, crawlers), so the store is
LRU-bounded: beyond ``max_sessions`` the least recently used session is
evicted and that client simply re-authenticates.  Being process-local, it
implies the single-process threading model documented in the README;
multi-process deployments need a shared session backend.
"""

from __future__ import annotations

import itertools
import secrets
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional


class Session:
    """A per-client key/value store; ``user_id`` identifies the login."""

    def __init__(self, session_id: str, store: "Optional[SessionStore]" = None) -> None:
        self.session_id = session_id
        self.data: Dict[str, Any] = {}
        #: the store this session persists into on first write (lazy
        #: persistence: stateless sessions are never stored)
        self._store = store
        #: whether the session is held by a store; the WSGI layer only sends
        #: a session cookie for persisted sessions, so anonymous requests
        #: neither churn ids nor clobber a concurrent login's cookie
        self.persisted = store is None

    def get(self, name: str, default: Any = None) -> Any:
        return self.data.get(name, default)

    def rotate(self) -> str:
        """Swap in a fresh unguessable id (fixation defence on login)."""
        if self._store is not None:
            self._store._rotate(self)
        return self.session_id

    def __setitem__(self, name: str, value: Any) -> None:
        self.data[name] = value
        if self._store is not None:
            self._store._persist(self)

    def __getitem__(self, name: str) -> Any:
        return self.data[name]

    def __contains__(self, name: str) -> bool:
        return name in self.data

    def clear(self) -> None:
        self.data.clear()

    def __repr__(self) -> str:
        return f"Session({self.session_id!r}, keys={sorted(self.data)})"


class SessionStore:
    """Creates and looks up sessions (LRU-bounded, thread-safe).

    Persistence is lazy: a session minted for a cookie-less request is only
    stored once something is written into it (login, view state), so
    unauthenticated request floods cannot grow the store -- or evict real
    logged-in sessions out of the LRU bound.
    """

    def __init__(self, max_sessions: int = 10_000) -> None:
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self.max_sessions = max_sessions

    def _new_session(self) -> Session:
        """Mint a session with a fresh unguessable id (not yet stored)."""
        return Session(f"s{next(self._counter)}-{secrets.token_hex(8)}", store=self)

    def _store_locked(self, session: Session) -> None:
        self._sessions[session.session_id] = session
        session.persisted = True
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)

    def _persist(self, session: Session) -> None:
        """Store a session on its first write (idempotent)."""
        with self._lock:
            if session.session_id not in self._sessions:
                self._store_locked(session)

    def _rotate(self, session: Session) -> None:
        """Re-key a session under a fresh id (its old id stops resolving)."""
        with self._lock:
            was_stored = self._sessions.pop(session.session_id, None) is not None
            session.session_id = f"s{next(self._counter)}-{secrets.token_hex(8)}"
            if was_stored or session.data:
                self._store_locked(session)
            else:
                session.persisted = False

    def create(self) -> Session:
        """Mint and immediately store a session (explicit creation)."""
        session = self._new_session()
        with self._lock:
            self._store_locked(session)
        return session

    def get(self, session_id: Optional[str]) -> Optional[Session]:
        if session_id is None:
            return None
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                self._sessions.move_to_end(session_id)
            return session

    def get_or_create(self, session_id: Optional[str]) -> Session:
        # Ids are unguessable tokens, so two threads only race here when they
        # share a client-supplied id; the lock makes that a single session.
        with self._lock:
            session = self._sessions.get(session_id) if session_id else None
            if session is not None:
                self._sessions.move_to_end(session.session_id)
                return session
        # Not stored yet: the session persists itself on first write.
        return self._new_session()

    def drop(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._sessions)
