"""Observability endpoints: ``/metrics`` and ``/debug/trace/<trace_id>``.

:func:`add_observability_routes` mounts two JSON endpoints on any
:class:`~repro.web.app.Application` (both stacks work -- the registry is
process-wide):

* ``GET /metrics`` -- the :func:`repro.obs.snapshot` payload: counter
  totals, the registered FORMs' cache statistics summed per layer, and an
  index of recent traces;
* ``GET /debug/trace/<trace_id>`` -- one stored trace as its full span
  tree (the id a traced response returns in its ``X-Trace-Id`` header).

The endpoints only *read* the registry; enabling tracing stays an explicit
operator decision (``repro.obs.enable()``, or ``--trace`` on
``python -m repro.web.serve``).
"""

from __future__ import annotations

import json

from repro import obs
from repro.web.app import Application
from repro.web.http import Request, Response

#: Content type of both endpoints' payloads.
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def json_response(payload: dict, status: int = 200) -> Response:
    """A JSON response (sorted keys, so payloads diff cleanly in tests)."""
    return Response(
        body=json.dumps(payload, sort_keys=True, default=str),
        status=status,
        headers={"Content-Type": JSON_CONTENT_TYPE},
    )


def add_observability_routes(app: Application) -> Application:
    """Mount ``/metrics`` and ``/debug/trace/<trace_id>`` on ``app``."""

    @app.route("/metrics", methods=("GET",))
    def metrics(request: Request) -> Response:
        return json_response(obs.snapshot())

    @app.route("/debug/trace/<trace_id>", methods=("GET",))
    def debug_trace(request: Request) -> Response:
        trace = obs.get_trace(request.param("trace_id"))
        if trace is None:
            return json_response({"error": "unknown trace id"}, status=404)
        return json_response(trace.to_dict())

    return app
