"""WSGI adapter: run :class:`~repro.web.app.Application` under any WSGI server.

The framework-internal :class:`~repro.web.http.Request`/``Response`` objects
stay the single dispatch path -- the adapter translates a WSGI ``environ``
into a ``Request`` (method, path, query string, urlencoded form body,
session cookie) and the returned ``Response`` back into a WSGI
``(status, headers, body)`` triple.  Sessions ride on one cookie holding the
opaque session id the session store already mints.

Both application classes are safe to serve from worker threads:
``JacquelineApp`` activates its FORM (and the speculated viewer) per request
through thread-local context stacks, so concurrent requests cannot observe
each other's bindings.

Usage::

    from repro.web.wsgi import WsgiAdapter
    application = WsgiAdapter(build_conf_app(form))   # any WSGI server
"""

from __future__ import annotations

from http.client import responses as _REASON_PHRASES
from http.cookies import SimpleCookie
from typing import Any, Callable, Dict, Iterable, List, Tuple
from urllib.parse import parse_qs

from repro.web.app import Application
from repro.web.http import Request, Response

#: Name of the cookie carrying the opaque session id.
SESSION_COOKIE = "repro_session"

StartResponse = Callable[..., Any]


class WsgiAdapter:
    """A WSGI callable wrapping one :class:`Application`.

    Stateless apart from the wrapped application, so a single instance may
    be shared by every worker thread of a threaded WSGI server.
    """

    def __init__(self, app: Application, session_cookie: str = SESSION_COOKIE) -> None:
        self.app = app
        self.session_cookie = session_cookie

    # -- request translation ----------------------------------------------------------

    def build_request(self, environ: Dict[str, Any]) -> Request:
        """Translate a WSGI environ into a framework request."""
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "") or "/"
        query = environ.get("QUERY_STRING", "")
        if query:
            path = f"{path}?{query}"
        return Request(
            method,
            path,
            data=self._form_data(environ),
            session_id=self._session_id(environ),
        )

    def _session_id(self, environ: Dict[str, Any]) -> Any:
        cookie_header = environ.get("HTTP_COOKIE", "")
        if not cookie_header:
            return None
        cookies: SimpleCookie = SimpleCookie()
        try:
            cookies.load(cookie_header)
        except Exception:  # malformed cookie header: treat as no session
            return None
        morsel = cookies.get(self.session_cookie)
        return morsel.value if morsel is not None else None

    def _form_data(self, environ: Dict[str, Any]) -> Dict[str, Any]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except (TypeError, ValueError):
            length = 0
        if length > 0:
            body = environ["wsgi.input"].read(length)
        elif environ.get("wsgi.input_terminated"):
            # De-chunked body with no CONTENT_LENGTH (gunicorn et al. flag
            # EOF-terminated input); servers without the flag may block on an
            # unbounded read, so only read to EOF when it is safe.
            body = environ["wsgi.input"].read()
        else:
            return {}
        if not body:
            return {}
        content_type = (environ.get("CONTENT_TYPE") or "").split(";")[0].strip()
        if content_type not in ("", "application/x-www-form-urlencoded"):
            # Views receive the raw body under a reserved key; only
            # urlencoded forms populate named fields.
            return {"_raw_body": body}
        text = body.decode("utf-8", errors="replace")
        # keep_blank_values: "title=" must arrive as '' (present-but-empty),
        # matching what views see through the in-process test clients.
        return {
            name: values[-1]
            for name, values in parse_qs(text, keep_blank_values=True).items()
        }

    # -- the WSGI callable ---------------------------------------------------------------

    def __call__(
        self, environ: Dict[str, Any], start_response: StartResponse
    ) -> Iterable[bytes]:
        from repro import obs  # late: keep the adapter importable standalone

        obs.add("web.wsgi.requests")
        request = self.build_request(environ)
        response = self.app.handle(request)
        return self._respond(request, response, start_response)

    def _respond(
        self, request: Request, response: Response, start_response: StartResponse
    ) -> Iterable[bytes]:
        body = response.body.encode("utf-8")
        headers: List[Tuple[str, str]] = [
            (name, str(value)) for name, value in response.headers.items()
        ]
        if not any(name.lower() == "content-length" for name, _ in headers):
            headers.append(("Content-Length", str(len(body))))
        # Only persisted sessions get a cookie: an anonymous request's
        # unstored session would mint a different id every time, and its
        # Set-Cookie could clobber the cookie of a concurrent login.
        if request.session_id and getattr(request.session, "persisted", True):
            headers.append(
                (
                    "Set-Cookie",
                    f"{self.session_cookie}={request.session_id}; Path=/; HttpOnly",
                )
            )
        reason = _REASON_PHRASES.get(response.status, "Unknown")
        start_response(f"{response.status} {reason}", headers)
        return [body]
