"""Benchmark support: timing, lines-of-code analysis and report formatting.

The actual experiments live in ``benchmarks/`` (one module per table or
figure of the paper); this package holds the shared machinery:

* :mod:`repro.bench.timing` -- request timing in the style of the paper's
  FunkLoad runs (average over a burst of identical requests);
* :mod:`repro.bench.loc` -- the policy / non-policy lines-of-code classifier
  behind Figure 6;
* :mod:`repro.bench.report` -- plain-text table rendering for the harness
  output recorded in EXPERIMENTS.md.
"""

from repro.bench.timing import time_callable, time_request
from repro.bench.loc import LocBreakdown, classify_source, count_module
from repro.bench.report import format_series, format_table

__all__ = [
    "time_request",
    "time_callable",
    "LocBreakdown",
    "classify_source",
    "count_module",
    "format_table",
    "format_series",
]
