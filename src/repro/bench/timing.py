"""Request timing helpers.

The paper averages over 10 rapid sequential HTTP requests issued by
FunkLoad; :func:`time_request` does the same through the in-process test
client (the network constant is absent, the server-side work is identical).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Tuple


def time_callable(fn: Callable[[], Any], repeats: int = 10) -> Tuple[float, Any]:
    """Average wall-clock seconds per call over ``repeats`` calls.

    Returns ``(seconds_per_call, last_result)``.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    last = None
    start = time.perf_counter()
    for _ in range(repeats):
        last = fn()
    elapsed = time.perf_counter() - start
    return elapsed / repeats, last


def time_request(client, path: str, repeats: int = 10, **params: Any) -> Tuple[float, Any]:
    """Average seconds per GET request to ``path`` (checks it succeeded)."""

    def issue():
        response = client.get(path, **params)
        if response.status >= 400:
            raise RuntimeError(f"GET {path} failed with status {response.status}")
        return response

    return time_callable(issue, repeats=repeats)
