"""Lines-of-code classification for the Figure 6 experiment.

Figure 6 compares, for the conference management system, how many lines of
*policy* code versus other code live in the models (``models.py``) and the
controllers (``views.py``) of the Jacqueline and Django implementations.  The
classifier here works on source text: a line counts as policy code if it
belongs to a policy declaration (a ``label_for``/``jacqueline_get_public``
block in Jacqueline models, a ``policy_*`` method in Django models) or, for
Django views, to a hand-coded enforcement block (a policy call or the
scrubbing statements it guards).
"""

from __future__ import annotations

import ast
import importlib
import inspect
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

#: Function-name markers that make a whole def a policy definition.
_POLICY_DEF_PREFIXES = ("jacqueline_restrict", "jacqueline_get_public", "jeeves_restrict", "policy_")

#: Call/attribute markers that make a statement hand-coded policy enforcement.
_POLICY_CALL_MARKERS = ("policy_", "label_for", "restrict")


@dataclass
class LocBreakdown:
    """Line counts for one source artifact."""

    policy: int
    non_policy: int

    @property
    def total(self) -> int:
        return self.policy + self.non_policy

    def __add__(self, other: "LocBreakdown") -> "LocBreakdown":
        return LocBreakdown(self.policy + other.policy, self.non_policy + other.non_policy)


def _code_lines(source: str) -> Set[int]:
    """Line numbers that contain code (not blank, not pure comments)."""
    lines = set()
    for number, text in enumerate(source.splitlines(), start=1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            lines.add(number)
    return lines


def _node_lines(node: ast.AST) -> Set[int]:
    start = getattr(node, "lineno", None)
    end = getattr(node, "end_lineno", None)
    if start is None or end is None:
        return set()
    # include decorators
    for decorator in getattr(node, "decorator_list", []):
        start = min(start, decorator.lineno)
    return set(range(start, end + 1))


def _is_policy_def(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    if any(node.name.startswith(prefix) for prefix in _POLICY_DEF_PREFIXES):
        return True
    for decorator in node.decorator_list:
        text = ast.dump(decorator)
        if "label_for" in text or "jacqueline" in text or "jeeves" in text:
            return True
    return False


def _statement_mentions_policy(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and any(
            child.attr.startswith(marker) for marker in _POLICY_CALL_MARKERS
        ):
            return True
        if isinstance(child, ast.Name) and any(
            child.id.startswith(marker) for marker in _POLICY_CALL_MARKERS
        ):
            return True
        if isinstance(child, ast.Call):
            callee = child.func
            name = getattr(callee, "attr", getattr(callee, "id", ""))
            if isinstance(name, str) and any(
                name.startswith(marker) for marker in _POLICY_CALL_MARKERS
            ):
                return True
    return False


def classify_source(source: str) -> LocBreakdown:
    """Classify one module's source into policy vs non-policy code lines."""
    tree = ast.parse(source)
    code = _code_lines(source)
    policy_lines: Set[int] = set()

    for node in ast.walk(tree):
        if _is_policy_def(node):
            policy_lines |= _node_lines(node)

    # Hand-coded enforcement in views: `if not x.policy_*(...)` blocks,
    # including the scrubbing statements in their bodies.
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _statement_mentions_policy(node.test):
            policy_lines |= _node_lines(node)
        elif isinstance(node, (ast.Expr, ast.Assign, ast.Try)) and _statement_mentions_policy(node):
            policy_lines |= _node_lines(node)

    policy = len(policy_lines & code)
    return LocBreakdown(policy=policy, non_policy=len(code) - policy)


def count_module(module_name: str) -> LocBreakdown:
    """Classify an importable module by name."""
    module = importlib.import_module(module_name)
    source = inspect.getsource(module)
    return classify_source(source)


def figure6_breakdown() -> dict:
    """The four bars of Figure 6 for this reproduction's conference apps."""
    return {
        ("jacqueline", "models.py"): count_module("repro.apps.conf.models"),
        ("jacqueline", "views.py"): count_module("repro.apps.conf.views"),
        ("django", "models.py"): count_module("repro.apps.conf.baseline_models"),
        ("django", "views.py"): count_module("repro.apps.conf.baseline_views"),
    }
