"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render an aligned text table (used for paper-style table output)."""
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(widths[index]) for index, value in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Dict[Any, float], unit: str = "s") -> str:
    """Render a figure series as ``x -> y`` lines (for Figure 9-style output)."""
    lines = [f"{name}:"]
    for x_value in sorted(points):
        lines.append(f"  {x_value:>6} -> {points[x_value]:.4f}{unit}")
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if value is None:
        return "–"
    return str(value)
