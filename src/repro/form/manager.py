"""Managers and query sets: the Jacqueline query API.

``Model.objects`` exposes the Django-style entry points (``create``,
``all``, ``filter``, ``get``, ``count``); a :class:`QuerySet` describes one
query and executes it against the active FORM.

Execution has two modes:

* **Pruned** (inside ``viewer_context(user)``): policies are resolved for the
  known viewer while unmarshalling and only the visible facet rows are kept,
  so results are plain Python lists of model instances.  This is the Early
  Pruning optimisation the paper's web benchmarks rely on.
* **Faceted** (no viewer context): results are faceted collections that must
  be concretised with ``runtime.concretize(value, viewer)`` before display.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro import obs
from repro.cache.epoch import policy_epoch
from repro.cache.label_cache import viewer_cache_key
from repro.core.facets import Facet, collect_labels, facet_map
from repro.core.labels import Label
import dataclasses

from repro.db.expr import InList, and_all, col, eq, eq_or_null
from repro.db.query import (
    Aggregate,
    Query,
    limit_by_key,
    plan_aggregate,
    plan_bounded,
    plan_delete,
    plan_keys,
    plan_update,
)
from repro.form import pushdown as pushdown_sql
from repro.form import writes
from repro.form.aggregates import (
    FACET_AGGREGATE_FUNCTIONS,
    ColumnStats,
    check_aggregate_field,
    finalise_stats,
    merge_counts,
    merge_stats,
    stats_of_values,
    visible_value,
)
from repro.form.context import FORM, current_form, current_viewer
from repro.form.fields import ForeignKey
from repro.form.policies import evaluate_policy
from repro.form.marshal import (
    JvarBranch,
    build_faceted_collection,
    label_name_for,
    parse_jvars,
)


class DoesNotExist(Exception):
    """Raised by :meth:`Manager.get_or_raise` when no record matches."""


#: Which per-partition SQL aggregates each user-facing function needs.  AVG
#: cannot merge from per-partition averages, so it ships (SUM, COUNT) and
#: divides after the faceted merge.
_STATS_SPECS: Dict[str, Tuple[str, ...]] = {
    "COUNT": ("COUNT",),
    "SUM": ("SUM",),
    "AVG": ("SUM", "COUNT"),
    "MIN": ("MIN",),
    "MAX": ("MAX",),
}


class QuerySet:
    """A lazily executed query over one Jacqueline model."""

    def __init__(
        self,
        model: Type,
        filters: Optional[Dict[str, Any]] = None,
        order_fields: Tuple[Tuple[str, bool], ...] = (),
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> None:
        self.model = model
        self.filters = dict(filters or {})
        self.order_fields = order_fields
        self.limit = limit
        self.offset = offset

    # -- chaining -------------------------------------------------------------------

    def filter(self, **filters: Any) -> "QuerySet":
        combined = dict(self.filters)
        combined.update(filters)
        return QuerySet(self.model, combined, self.order_fields, self.limit, self.offset)

    def order_by(self, *fields: str) -> "QuerySet":
        order = list(self.order_fields)
        for field in fields:
            # Exactly one optional leading "-" selects descending order;
            # anything else ("", "-", "--name") is a caller error.
            ascending = not field.startswith("-")
            name = field[1:] if not ascending else field
            if not name or name.startswith("-"):
                raise ValueError(f"malformed order_by field {field!r}")
            order.append((name, ascending))
        return QuerySet(self.model, self.filters, tuple(order), self.limit, self.offset)

    def limited(self, limit: int, offset: int = 0) -> "QuerySet":
        """Bound the result to the first ``limit`` *records* (jids), skipping
        ``offset`` records first -- both counted per record, never per facet
        row, and pushed into the database as a jid subselect."""
        return QuerySet(self.model, self.filters, self.order_fields, limit, offset)

    # -- execution --------------------------------------------------------------------

    def fetch(self) -> Any:
        """Execute the query.

        Returns a plain list of instances inside a viewer context, or a
        faceted collection otherwise.
        """
        form = current_form()
        with obs.span("form.fetch", model=self.model._meta.table_name):
            entries, pushed = self._fetch_entries(form)
            self._register_policies(form, entries)
            viewer = current_viewer()
            if viewer is not None:
                if pushed:
                    # Policy pushdown: the statement's pruning predicate
                    # already kept exactly the facet rows visible to this
                    # viewer -- no Python-side label resolution.
                    obs.add("plan.policy_pushdown")
                    return [instance for _jid, _branches, instance in entries]
                return self._pruned(form, entries, viewer)
            obs.add("worlds.merged", len(entries))
            return build_faceted_collection(
                [(branches, instance) for _jid, branches, instance in entries]
            )

    def __iter__(self) -> Iterator[Any]:
        result = self.fetch()
        if isinstance(result, Facet):
            raise TypeError(
                "cannot iterate a faceted result directly; use runtime.jfor or "
                "run the query inside viewer_context()"
            )
        return iter(result)

    def __len__(self) -> int:
        result = self.fetch()
        if isinstance(result, Facet):
            raise TypeError("faceted result has no plain length; use count()")
        return len(result)

    def first(self) -> Any:
        """The first *visible* matching record (or ``None`` / a faceted option).

        Inside a viewer context this compiles to the bounded jid-subselect
        form (``LIMIT 1`` on distinct jids) instead of fetching the full
        match set -- what makes ``get()`` by unique fields constant-cost on
        large tables.  The bound selects the first *matching* record
        pre-pruning; when that record turns out to be invisible to the
        viewer (the filter matched a secret facet, or the record was
        persisted under a path condition), the query falls back to the
        unbounded scan so the next visible match is still found -- ``get``
        can never report ``None`` for a record the viewer could see.

        Outside a viewer context the full faceted result is kept: its first
        element differs per possible world, which a pre-pruning ``LIMIT 1``
        cannot express (the facet sharing collapse would hand every viewer
        the one fetched record).
        """
        viewer = current_viewer()
        if self.limit is None and viewer is not None:
            form = current_form()
            bounded = self.limited(1, self.offset)
            entries, _pushed = bounded._fetch_entries(form)
            if not entries:
                return None  # no matching record at all: no fallback needed
            bounded._register_policies(form, entries)
            pruned = bounded._pruned(form, entries, viewer)
            if pruned:
                return pruned[0]
            # The one bounded record exists but is invisible to this viewer:
            # only now pay for the unbounded scan (rare -- requires a filter
            # that matched an inaccessible facet).
        result = self.fetch()
        if isinstance(result, Facet):
            from repro.core.facets import facet_map

            return facet_map(lambda items: items[0] if items else None, result)
        return result[0] if result else None

    def count(self) -> Any:
        """The number of matching facet rows, per world.

        Compiles to one grouped statement -- ``SELECT jvars..., COUNT(*)
        ... GROUP BY jvars...`` -- instead of fetching the matching rows
        and reducing in Python.  Outside a viewer context the per-partition
        counts merge into a ``Facet`` of per-world counts (identical to
        what ``facet_map(len, fetch())`` would produce); inside one, only
        the partitions visible to the viewer are summed.

        Falls back to the fetching path only when the query set is bounded
        (``limited``) -- the bound counts records, which the grouped plan
        cannot see.  For a known viewer on a policied model the pruning
        predicate itself joins the statement (policy pushdown,
        :mod:`repro.form.pushdown`) whenever the model's policies classify
        as viewer-independent or equality-on-viewer, keeping the count a
        single SQL statement; only opaque policies (counted as
        ``plan.policy_pushdown.opaque_fallback``) fetch and prune in
        Python.
        """
        plan = self._aggregate_groups(("COUNT",))
        if plan is None:
            result = self.fetch()
            if isinstance(result, Facet):
                return facet_map(len, result)
            return len(result)
        form, groups, specs, pushed = plan
        key = specs[0].result_key()
        counts = [
            (branches, int(row.get(key) or 0)) for branches, row in groups
        ]
        viewer = current_viewer()
        if viewer is not None:
            if pushed:
                # Every partition the statement returned is fully visible
                # to the viewer (the pruning predicate saw to that).
                obs.add("plan.policy_pushdown")
                return sum(count for _branches, count in counts)
            resolve = self._label_resolver(form, viewer)
            return visible_value(counts, resolve, lambda a, b: a + b, 0)
        merged = merge_counts(counts)
        self._register_result_policies(form, merged)
        return merged

    def exists(self) -> Any:
        """Whether any record matches, per world (one grouped statement).

        Shares :meth:`count`'s jvars-partition plan rather than a bare
        ``SELECT EXISTS``: a row's existence in the database does not mean
        every world sees it, so existence is per label assignment.  (The
        relational layer's ``EXISTS`` pushdown serves the baseline ORM,
        where rows are world-independent.)
        """
        count = self.count()
        if isinstance(count, Facet):
            result = facet_map(bool, count)
            form = current_form()
            self._register_result_policies(form, result)
            return result
        return bool(count)

    def aggregate(self, field_name: str, function: str) -> Any:
        """Aggregate a field over the matching rows, per world.

        ``function`` is one of COUNT, SUM, AVG, MIN or MAX, with SQL's NULL
        rules (NULL field values are skipped; SUM/AVG/MIN/MAX of no values
        is ``None``, COUNT is 0).  Like :meth:`count`, this compiles to one
        grouped jvars-partition statement and merges per world: outside a
        viewer context the result is faceted exactly where the aggregate
        genuinely differs between worlds; inside one it is the plain
        aggregate over the facet rows the viewer would have seen.
        """
        function = function.upper()
        if function not in FACET_AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {function!r}")
        meta = self.model._meta
        column = self._aggregate_column(meta, field_name, function)
        plan = self._aggregate_groups(_STATS_SPECS[function], column)
        if plan is None:
            return self._aggregate_from_instances(column, function)
        form, groups, specs, pushed = plan
        stats = [
            (branches, self._stats_from_row(row, specs))
            for branches, row in groups
        ]
        viewer = current_viewer()
        if viewer is not None:
            if pushed:
                obs.add("plan.policy_pushdown")
                merged = ColumnStats()
                for _branches, partition in stats:
                    merged = ColumnStats.combine(merged, partition)
                return merged.finalise(function)
            resolve = self._label_resolver(form, viewer)
            merged = visible_value(
                stats, resolve, ColumnStats.combine, ColumnStats()
            )
            return merged.finalise(function)
        merged = finalise_stats(merge_stats(stats), function)
        self._register_result_policies(form, merged)
        return merged

    def sum(self, field_name: str) -> Any:
        """``SUM(field)`` per world (NULLs skipped; ``None`` if no values)."""
        return self.aggregate(field_name, "SUM")

    def avg(self, field_name: str) -> Any:
        """``AVG(field)`` per world (NULLs skipped; ``None`` if no values)."""
        return self.aggregate(field_name, "AVG")

    def min(self, field_name: str) -> Any:
        """``MIN(field)`` per world (``None`` if no values)."""
        return self.aggregate(field_name, "MIN")

    def max(self, field_name: str) -> Any:
        """``MAX(field)`` per world (``None`` if no values)."""
        return self.aggregate(field_name, "MAX")

    def update(self, **values: Any) -> int:
        """Set fields on every matching record, set-oriented.

        A record matches when *any* of its facet rows satisfies the filters
        (the same record-level matching as :meth:`delete` and the faceted
        read path); the write then covers **all** of the record's facet
        rows, so the faceted encoding stays consistent.  Matching is
        viewer-independent: writes are not pruned by ``viewer_context``.

        Decision procedure (see ``repro.form.writes``):

        * assigning concrete values to columns outside every policy group,
          with an empty path condition, compiles to **one** SQL statement --
          ``UPDATE t SET ... WHERE jid IN (SELECT DISTINCT jid ...)`` -- on
          both backends: no fetch, no unmarshal, bounds (``limited``) and
          join filters included in the subselect;
        * policied fields, faceted values, or a non-empty path condition
          fall back to the *batched* facet rewrite: one projected jid
          query, one row fetch, per-jid facet-row recomputation reusing
          ``JModel.save``'s expansion and pc-guard algebra, and one atomic
          ``replace_rows`` batch;
        * an otherwise-eligible assignment to a column some
          ``jacqueline_get_public_*`` method *reads* is **forced** onto the
          batched rewrite (counted as ``writes.forced_fallback.read_set``):
          the stored public snapshots depend on that column and only the
          rewrite recomputes them.  Read sets are inferred statically by
          :mod:`repro.analysis.readsets` and cached on the model meta.

        Returns the number of facet rows the write affected (records span
        several rows; use ``count()`` for record counts).  Either path
        publishes write-through invalidation on the cache bus via the
        backend's write event.
        """
        if not values:
            return 0
        form = current_form()
        meta = self.model._meta
        resolved = writes.resolve_update_fields(meta, values)
        column_values = writes.fast_path_values(meta, resolved)
        pc = form.runtime.current_pc()
        if column_values is not None and not pc:
            forced = writes.read_set_forced_columns(meta, column_values)
            if forced:
                obs.add("writes.forced_fallback.read_set")
                column_values = None
        if column_values is not None and not pc:
            obs.add("writes.fast_path")
            obs.add("plan.update_pushdown")
            query, _joined = self._ordered_query(meta)
            plan = plan_update(query, column_values, key_column="jid")
            with form._save_lock, obs.span("form.update.fast", model=meta.table_name):
                return form.database.execute_update(plan)
        # Batched facet rewrite: one jid projection, one chunked fetch, one
        # (chunked) replace.
        obs.add("writes.fallback")
        with form._save_lock, obs.span("form.update.rewrite", model=meta.table_name):
            jids = self._matching_jids(form)
            if not jids:
                return 0
            existing = self._rows_for_jids(form, meta, jids)
            replacement = writes.bulk_update_rows(
                self.model, form, jids, existing, resolved
            )
            _replace_rows_chunked(form, meta.table_name, jids, replacement)
            return len(existing)

    def delete(self) -> int:
        """Delete every facet row of every matching record, set-oriented.

        Outside any path condition this compiles to **one** SQL statement
        on both backends -- ``DELETE FROM t WHERE jid IN (SELECT DISTINCT
        jid ...)`` -- with the query set's filters, joins, ordering and
        bound pushed into the subselect: no fetch, no unmarshal, no
        per-record statement.  Under a non-empty path condition the delete
        is *guarded*: matching jids are collected with one projected
        ``SELECT DISTINCT jid`` query (no instance unmarshalling), their
        rows fetched once, and the complement-assignment survivors swapped
        in with one atomic ``replace_rows`` batch -- viewers outside the
        branch keep seeing the records.

        One guarded shape still compiles to a single statement: a
        single-branch pc on a model with no policy groups, over a table
        whose rows all carry empty jvars (served by the write-maintained
        per-table facet bit, so no probe statement runs -- pc labels are
        then *statically absent* from the stored encodings).  Every
        matching record's sole facet row
        survives confined to the negated branch, so the whole delete is
        ``UPDATE t SET jvars = '<negated>' WHERE jid IN (...) AND jvars =
        ''`` (counted as ``plan.delete_guarded_pushdown``); the per-row
        ``jvars = ''`` guard keeps rows created with facet structure after
        the probe untouched.

        Returns the number of facet rows removed (guarded: rewritten).
        Runs under the FORM save lock so deletions cannot interleave with a
        concurrent update's delete+reinsert and be silently undone.
        """
        form = current_form()
        meta = self.model._meta
        pc = form.runtime.current_pc()
        if not pc:
            obs.add("writes.fast_path")
            obs.add("plan.delete_pushdown")
            query, _joined = self._ordered_query(meta)
            plan = plan_delete(query, key_column="jid")
            with form._save_lock, obs.span("form.delete.fast", model=meta.table_name):
                return form.database.execute_delete(plan)
        guarded_values = writes.guarded_delete_values(meta, pc)
        if guarded_values is not None:
            with form._save_lock:
                if not form.database.may_have_facets(meta.table_name):
                    obs.add("writes.fast_path")
                    obs.add("plan.delete_guarded_pushdown")
                    plan = self._guarded_delete_plan(meta, guarded_values)
                    with obs.span(
                        "form.delete.guarded_pushdown", model=meta.table_name
                    ):
                        return form.database.execute_update(plan)
        obs.add("writes.fallback")
        with form._save_lock, obs.span("form.delete.guarded", model=meta.table_name):
            jids = self._matching_jids(form)
            if not jids:
                return 0
            existing = self._rows_for_jids(form, meta, jids)
            pc_branches = writes.pc_branch_list(pc)
            rows_by_jid = writes.group_rows_by_jid(existing)
            survivors: List[Dict[str, Any]] = []
            for jid in jids:
                rows = rows_by_jid.get(jid, [])
                survivors.extend(writes.guarded_survivors(jid, rows, pc_branches))
            _replace_rows_chunked(form, meta.table_name, jids, survivors)
            return len(existing)

    def explain(self, operation: str = "fetch", **values: Any) -> Dict[str, Any]:
        """The plan and SQL this query set would run, without executing it.

        ``operation`` selects which entry point to explain:

        * ``"fetch"`` -- the row-fetching statement behind :meth:`fetch`
          (``mode`` reports ``"pruned"`` inside a viewer context,
          ``"faceted"`` outside);
        * ``"count"`` / ``"aggregate"`` -- the grouped jvars-partition
          statement (pass ``field`` and ``function`` keywords for
          ``aggregate``); when the pushdown does not apply the report names
          the fetching fallback instead;
        * ``"update"`` -- pass the assignment as keywords, exactly as
          :meth:`update` takes them; ``path`` reports ``"fast"`` (one
          pushed-down statement, whose SQL is returned) or ``"fallback"``
          (the batched facet rewrite, whose jid-projection SQL is
          returned).  A fallback forced by read-set inference additionally
          reports ``forced_by: "read_set"`` and the assigned columns some
          public method reads (``forced_columns``);
        * ``"delete"`` -- like update, keyed on the current path condition;
          a guarded delete meeting the static pushdown shape reports
          ``plan: "guarded-delete-pushdown"`` with ``path: "fast"``.

        For every pushdown path the returned ``sql`` string is exactly the
        statement a statement observer (:class:`repro.db.StatementLog`)
        captures when the operation runs.
        """
        form = current_form()
        meta = self.model._meta
        if operation == "fetch":
            query, _joined, pushed = self._build_query(meta, populate=False)
            report = query.explain()
            # Backend plan detail: the memory engine's cost-model choice
            # (chosen_plan / considered_plans), SQLite's EXPLAIN QUERY PLAN.
            report.update(form.database.backend.explain_query(query))
            report["operation"] = "fetch"
            if pushed:
                report["mode"] = "policy-pushdown"
                report["tier"] = pushed.tiers.get(meta.table_name)
                report["tiers"] = dict(pushed.tiers)
            else:
                report["mode"] = (
                    "pruned" if current_viewer() is not None else "faceted"
                )
            return report
        if operation in ("count", "aggregate"):
            if operation == "count":
                functions: Tuple[str, ...] = ("COUNT",)
                column = None
            else:
                function = str(values.get("function", "COUNT")).upper()
                field_name = values.get("field")
                functions = _STATS_SPECS.get(function, (function,))
                column = (
                    self._aggregate_column(meta, field_name, function)
                    if field_name is not None
                    else None
                )
            bounded = self.limit is not None or self.offset
            agg_query = None
            pushed = False
            if not bounded:
                agg_query, _group_columns, _specs, pushed = self._aggregate_plan(
                    functions, column, populate=False
                )
            pruned_policied = (
                current_viewer() is not None
                and bool(meta.policy_groups)
                and not pushed
            )
            if bounded or pruned_policied:
                report = self.explain("fetch")
                report["operation"] = operation
                report["plan"] = "fetch-fallback"
                report["reason"] = (
                    "bounded query set" if bounded
                    else "pruned query on a policied model"
                )
                return report
            report = agg_query.explain()
            report["operation"] = operation
            if pushed:
                report["mode"] = "policy-pushdown"
                report["tier"] = pushed.tiers.get(meta.table_name)
                report["tiers"] = dict(pushed.tiers)
            return report
        if operation == "update":
            resolved = writes.resolve_update_fields(meta, values)
            column_values = writes.fast_path_values(meta, resolved)
            pc = form.runtime.current_pc()
            query, _joined = self._ordered_query(meta)
            forced: Tuple[str, ...] = ()
            if column_values is not None and not pc:
                forced = writes.read_set_forced_columns(meta, column_values)
            if column_values is not None and not pc and not forced:
                report = plan_update(query, column_values, key_column="jid").explain()
                report["path"] = "fast"
            else:
                report = plan_keys(query, "jid").explain()
                report["plan"] = "batched-facet-rewrite"
                report["path"] = "fallback"
                if forced:
                    report["forced_by"] = "read_set"
                    report["forced_columns"] = list(forced)
            report["operation"] = "update"
            return report
        if operation == "delete":
            pc = form.runtime.current_pc()
            query, _joined = self._ordered_query(meta)
            if not pc:
                report = plan_delete(query, key_column="jid").explain()
                report["path"] = "fast"
            else:
                guarded_values = writes.guarded_delete_values(meta, pc)
                if guarded_values is not None and not form.database.may_have_facets(
                    meta.table_name
                ):
                    report = self._guarded_delete_plan(meta, guarded_values).explain()
                    report["plan"] = "guarded-delete-pushdown"
                    report["path"] = "fast"
                else:
                    report = plan_keys(query, "jid").explain()
                    report["plan"] = "batched-facet-rewrite"
                    report["path"] = "fallback"
            report["operation"] = "delete"
            return report
        raise ValueError(f"unknown explain operation {operation!r}")

    # -- internals -----------------------------------------------------------------------

    def _guarded_delete_plan(self, meta, guarded_values: Dict[str, Any]):
        """The single-statement plan of a pushed-down guarded delete.

        ``plan_update`` supplies the jid subselect; the appended ``jvars =
        ''`` conjunct restricts the rewrite to unguarded rows (the only
        rows the static shape covers), row by row.
        """
        query, _joined = self._ordered_query(meta)
        base = plan_update(query, guarded_values, key_column="jid")
        guard = eq("jvars", "")
        where = and_all([w for w in (base.where, guard) if w is not None])
        return dataclasses.replace(base, where=where)

    def _matching_jids(self, form: FORM) -> List[int]:
        """The DISTINCT jids matching this query set, in one projected query.

        ``plan_keys`` keeps the filters and joins (and, for bounded sets,
        the ordering and bound), selecting only the jid column -- the slow
        write path's replacement for unmarshalling full instances just to
        read their jids.
        """
        meta = self.model._meta
        query, _joined = self._ordered_query(meta)
        subquery = plan_keys(query, "jid")
        obs.add("plan.keys")
        from repro.db.expr import subquery_values

        return [int(value) for value in
                subquery_values(form.database.execute(subquery), subquery)]

    @staticmethod
    def _rows_for_jids(form: FORM, meta, jids: List[int]) -> List[Dict[str, Any]]:
        """All facet rows of the given records, via ``jid IN (...)`` fetches.

        Chunked at :data:`repro.form.writes.MAX_BOUND_VARIABLES` jids per
        statement so a match set larger than SQLite's bound-variable limit
        (SQLITE_MAX_VARIABLE_NUMBER, 32766 by default) still compiles; the
        common case stays a single fetch.
        """
        rows: List[Dict[str, Any]] = []
        for chunk in writes.chunked(jids):
            rows.extend(form.database.execute(
                Query(table=meta.table_name).filter(InList(col("jid"), tuple(chunk)))
            ))
        return rows

    def _fetch_entries(
        self, form: FORM
    ) -> Tuple[List[Tuple[int, Tuple[JvarBranch, ...], Any]], bool]:
        """Run the relational query and unmarshal rows into
        ``(jid, branches, instance)`` entries (one per facet row).

        Results are served from the FORM's faceted query cache when enabled.
        The cache stores the raw ``(jid, branches, column values)`` rows --
        i.e. the pre-pruning result shared by every viewer -- and instances
        are rebuilt per fetch, so per-request state attached to instances
        (resolved foreign keys, application mutations) never crosses fetches
        or viewers.  Policy-pushdown statements embed the viewer key in
        their store subquery (and so in the cache key): their already-pruned
        entries cache per viewer, never shared, and a store repopulation
        invalidates them through ``tables_read()`` like any other write.

        Returns ``(entries, pushed)``; ``pushed`` means the statement's
        pruning predicate already did the viewer's pruning.
        """
        meta = self.model._meta
        query, joined_tables, pushed = self._build_query(meta)
        cache = form.caches.queries if form.caches.query_cache_enabled else None
        key = None
        raw_entries: Optional[
            List[Tuple[int, Tuple[JvarBranch, ...], Dict[str, Any]]]
        ] = None
        if cache is not None:
            key = cache.key_for(meta.table_name, query)
            raw_entries = cache.get(key)
        if raw_entries is None:
            rows = form.database.execute(query)
            raw_entries = []
            for row in rows:
                values = self._base_values(meta, row, joined_tables)
                branches = list(parse_jvars(values.get("jvars")))
                # Joins contribute the jvars of every joined table (Table 2).
                for table in joined_tables:
                    branches.extend(parse_jvars(row.get(f"{table}.jvars")))
                jid = int(values.get("jid"))
                raw_entries.append((jid, tuple(dict.fromkeys(branches)), values))
            if cache is not None:
                # Bounded queries carry their jid subselect in the query (and
                # so in the cache key): each (filters, ordering, limit,
                # offset) combination caches its own already-bounded result.
                # The registered tables come from tables_read(), so a write
                # to a table referenced only inside the subquery still
                # invalidates the entry.
                cache.put(key, list(query.tables_read()), raw_entries)
        entries = [
            (jid, branches, _instance_from_row(self.model, values))
            for jid, branches, values in self._limit_entries(raw_entries)
        ]
        obs.add("facet.rows.unmarshalled", len(entries))
        return entries, pushed

    def _limit_entries(
        self, entries: List[Tuple[int, Tuple[JvarBranch, ...], Any]]
    ) -> List[Tuple[int, Tuple[JvarBranch, ...], Any]]:
        """Apply ``self.limit`` per distinct record (jid), not per facet row.

        With the jid-subselect pushdown the database already bounds the
        result to ``limit`` distinct jids (offset included), making this a
        no-op safety net; it still guarantees -- independently of backend
        behaviour -- that a limited result can never undercount records or
        show a viewer the wrong facet of a record.  Record order follows
        first appearance, which matches the query's ORDER BY.
        """
        return limit_by_key(entries, lambda entry: entry[0], self.limit)

    def _filtered_query(self, meta) -> Tuple[Query, List[str]]:
        """The filter/join part of the query (no ordering, no bound).

        Shared by the row-fetching plan (which adds ORDER BY and the
        bounded jid subselect) and the aggregate plan (which adds the
        jvars GROUP BY instead).
        """
        query = Query(table=meta.table_name)
        joined: List[str] = []
        has_join = any("__" in lookup for lookup in self.filters)
        for lookup, value in self.filters.items():
            query = self._apply_filter(meta, query, joined, lookup, value, has_join)
        return query, joined

    def _ordered_query(self, meta) -> Tuple[Query, List[str]]:
        """Filters, joins, ordering and the raw record bound -- un-planned.

        The common input of the read planner (:meth:`_build_query`, which
        wraps the bound in the jid subselect) and the write planners
        (``plan_update``/``plan_delete``, which push the whole thing into
        their own jid subselect).  ``limit``/``offset`` ride on the query
        verbatim; no plan is applied here.
        """
        query, joined = self._filtered_query(meta)
        for field, ascending in self.order_fields:
            column = self._column_for(meta, field)
            if joined and "." not in column:
                # Under a join, both tables carry jid/jvars (and possibly
                # application columns with the same name); an unqualified
                # ORDER BY column is ambiguous on SQLite and resolved
                # arbitrarily by the in-memory engine.
                column = f"{meta.table_name}.{column}"
            query = query.ordered_by(column, ascending)
        if self.limit is not None or self.offset:
            query = query.limited(self.limit, self.offset)
        return query, joined

    def _build_query(
        self, meta, populate: bool = True
    ) -> Tuple[Query, List[str], Optional["pushdown_sql.PushdownPlan"]]:
        query, joined = self._ordered_query(meta)
        # Bounded queries compile to the jid-subselect pushdown: the LIMIT
        # counts DISTINCT jids inside a subquery, so the database prunes to
        # the first n records instead of this side scanning the full match
        # set and truncating (the ROADMAP LIMIT-pushdown item).
        if query.limit is not None or query.offset:
            query = plan_bounded(query, "jid", query.limit, query.offset)
            obs.add("plan.bounded")
            return query, joined, False
        # Unbounded pruned queries on eligible policied models additionally
        # compile the pruning predicate into the statement (policy
        # pushdown): the engine keeps exactly the viewer-visible facet
        # rows, so the Python side skips label resolution entirely.  The
        # bounded form stays on the Python path -- its record bound counts
        # *matching* records pre-pruning, and :meth:`first`'s
        # invisible-match fallback depends on seeing them.
        viewer = current_viewer()
        plan: Optional[pushdown_sql.PushdownPlan] = None
        if viewer is not None:
            plan = pushdown_sql.pruning_conjuncts(
                current_form(), self.model, joined, viewer, populate=populate
            )
            if plan is not None:
                for conjunct in plan.conjuncts:
                    query = query.filter(conjunct)
        return query, joined, plan

    # -- aggregate pushdown -------------------------------------------------------------

    def _aggregate_plan(
        self,
        functions: Tuple[str, ...],
        column: Optional[str] = None,
        populate: bool = True,
    ) -> Tuple[
        Query,
        List[str],
        Tuple[Aggregate, ...],
        Optional["pushdown_sql.PushdownPlan"],
    ]:
        """Compile this query set's grouped jvars-partition statement.

        The plan-construction half of :meth:`_aggregate_groups`, shared with
        :meth:`explain` so the reported SQL is the executed SQL by
        construction.  Returns ``(query, group_columns, specs, pushed)``;
        ``pushed`` is the :class:`~repro.form.pushdown.PushdownPlan` when
        the statement carries the viewer's pruning predicate (policy
        pushdown, ``None`` otherwise), so every returned partition is fully
        visible -- and the jvars GROUP BY is dropped entirely: with the
        engine pruning, partitioning by label assignment would only split
        one visible world across thousands of per-record groups to be
        re-summed in Python.  ``populate=False`` plans without refreshing
        the label-assignment store (``explain``) -- the predicate's SQL
        does not depend on the store's contents, so the two spellings
        agree.
        """
        meta = self.model._meta
        query, joined = self._filtered_query(meta)
        pushed: Optional[pushdown_sql.PushdownPlan] = None
        viewer = current_viewer()
        if viewer is not None and self.limit is None and not self.offset:
            pushed = pushdown_sql.pruning_conjuncts(
                current_form(), self.model, joined, viewer, populate=populate
            )
            if pushed is not None:
                for conjunct in pushed.conjuncts:
                    query = query.filter(conjunct)
        if column is not None and joined and "." not in column:
            column = f"{meta.table_name}.{column}"
        specs = tuple(
            Aggregate(function) if column is None else Aggregate(function, column)
            for function in functions
        )
        if pushed:
            group_columns: List[str] = []
        else:
            group_columns = [f"{meta.table_name}.jvars" if joined else "jvars"]
            group_columns.extend(f"{table}.jvars" for table in joined)
        return plan_aggregate(query, group_columns, specs), group_columns, specs, pushed

    def _aggregate_groups(self, functions: Tuple[str, ...], column: Optional[str] = None):
        """Fetch the jvars-partitioned aggregates behind count()/aggregate().

        Compiles the filter/join part of this query set to one grouped
        statement -- ``SELECT jvars..., AGG... GROUP BY jvars...`` (every
        joined table's jvars column joins the grouping, exactly as its
        branches would have joined each row's branch set) -- and returns
        ``(form, groups, specs, pushed)`` where ``groups`` pairs each
        partition's parsed branches with its aggregate row and ``pushed``
        means the statement carried the viewer's pruning predicate.

        Returns ``None`` when the grouped plan does not apply: bounded
        query sets (the bound counts records, which a grouped plan cannot
        see), and pruned queries on policied models whose pruning predicate
        could *not* be compiled into the statement (opaque policies,
        unknown viewer identity, store population failure) -- there Early
        Pruning must evaluate policies against the fetched secret facet,
        which a no-fetch plan cannot do.

        Results are cached in the faceted query cache under the aggregate
        plan's own key; ``tables_read()`` registers the base and joined
        tables (for pushed plans also the label-assignment store), so any
        write to them invalidates the cached partitions.
        """
        if self.limit is not None or self.offset:
            return None
        meta = self.model._meta
        form = current_form()
        agg_query, group_columns, specs, pushed = self._aggregate_plan(
            functions, column
        )
        if current_viewer() is not None and meta.policy_groups and not pushed:
            return None
        obs.add("plan.aggregate_pushdown")
        cache = form.caches.queries if form.caches.query_cache_enabled else None
        key = None
        groups = None
        if cache is not None:
            key = cache.key_for(meta.table_name, agg_query)
            groups = cache.get(key)
        if groups is None:
            rows = form.database.execute(agg_query)
            groups = []
            for row in rows:
                branches: List[JvarBranch] = []
                for group_column in group_columns:
                    branches.extend(parse_jvars(row.get(group_column)))
                groups.append((tuple(dict.fromkeys(branches)), dict(row)))
            if cache is not None:
                cache.put(key, list(agg_query.tables_read()), groups)
        return form, groups, specs, pushed

    @staticmethod
    def _stats_from_row(row: Dict[str, Any], specs: Sequence[Aggregate]) -> ColumnStats:
        """One partition's :class:`ColumnStats` from its aggregate row."""
        values = {spec.function.upper(): row.get(spec.result_key()) for spec in specs}
        return ColumnStats(
            count=int(values.get("COUNT") or 0),
            total=values.get("SUM"),
            minimum=values.get("MIN"),
            maximum=values.get("MAX"),
        )

    def _aggregate_from_instances(self, column: str, function: str) -> Any:
        """Python-side aggregate fallback (bounded or pruned-policied sets).

        Fetches through the normal (pruned or faceted) path and reduces the
        instances' field values with the same SQL NULL rules the pushdown
        uses, so both paths agree on every edge case.
        """
        result = self.fetch()

        def reduce(items: List[Any]) -> Any:
            values = [getattr(item, column, None) for item in items]
            return stats_of_values(values).finalise(function)

        if isinstance(result, Facet):
            return facet_map(reduce, result)
        return reduce(result)

    def _label_resolver(self, form: FORM, viewer: Any, resolve_label=None):
        """A memoised ``label name -> polarity`` resolver for one viewer.

        The one label-resolution pipeline shared by Early Pruning
        (``_pruned``, which passes its hint-based ``resolve_label``) and
        the aggregate pushdown's visibility filter: per-call memo, then the
        cross-request label cache, then full policy resolution.  Outcomes
        observed inside an in-flight resolution cycle are never written to
        the cross-request cache -- the re-entrancy guard reports the label
        being resolved as optimistically visible, which is only valid
        within that cycle -- and the pre-resolution generation/epoch
        snapshots make the put a no-op when a write raced the resolution.
        """
        label_cache = form.caches.labels if form.caches.label_cache_enabled else None
        viewer_key = viewer_cache_key(viewer) if label_cache is not None else None
        if resolve_label is None:
            def resolve_label(name: str) -> bool:
                return _resolve_label(form, name, viewer)
        memo: Dict[str, bool] = {}

        def resolve(label_name: str) -> bool:
            if label_name in memo:
                return memo[label_name]
            cached = None
            if label_cache is not None and viewer_key is not None:
                cached = label_cache.get(label_name, viewer_key)
            if cached is None:
                if label_cache is not None:
                    generation = label_cache.generation
                    epoch = policy_epoch()
                cached = resolve_label(label_name)
                obs.add("labels.resolved")
                if (
                    label_cache is not None
                    and viewer_key is not None
                    and not _resolving_labels(form)
                ):
                    label_cache.put(
                        label_name, viewer_key, cached,
                        generation=generation, epoch=epoch,
                    )
            memo[label_name] = cached
            return cached

        return resolve

    def _register_result_policies(self, form: FORM, value: Any) -> None:
        """Attach policies for this model's labels surfacing in a result.

        A merged aggregate only mentions the labels that genuinely
        discriminate between worlds; those must carry their policies before
        the value reaches ``runtime.concretize``, or the solver would treat
        them as unrestricted.  Labels that collapsed out of the result need
        no registration -- nothing can ever ask for them through this
        value.  (Joined models' labels resolve through the model registry
        at concretisation, matching the row-fetching path.)
        """
        if not isinstance(value, Facet):
            return
        meta = self.model._meta
        groups_by_key = {group.key: group for group in meta.policy_groups}
        prefix = f"{meta.table_name}."
        for label in collect_labels(value):
            name = label.name
            if not name.startswith(prefix) or name in form.registered_labels:
                continue
            parts = name.split(".")
            if len(parts) != 3:
                continue
            group = groups_by_key.get(parts[2])
            if group is None:
                continue
            try:
                jid = int(parts[1])
            except ValueError:
                continue
            _register_label_policy(form, self.model, jid, group, name)

    def _apply_filter(
        self, meta, query: Query, joined: List[str], lookup: str, value: Any, has_join: bool = False
    ) -> Query:
        from repro.form.model import JModel

        if "__" in lookup:
            fk_name, _, related = lookup.partition("__")
            field = meta.fields.get(fk_name)
            if not isinstance(field, ForeignKey):
                raise ValueError(f"{lookup!r}: {fk_name!r} is not a foreign key")
            target = field.target_model()
            target_meta = target._meta
            if target_meta.table_name not in joined:
                query = query.join(
                    target_meta.table_name, field.column_name, "jid"
                )
                joined.append(target_meta.table_name)
            column = (
                "jid"
                if related in ("jid", "pk")
                else target_meta.field_column(related)
            )
            if isinstance(value, JModel):
                value = value.jid
            return query.filter(eq_or_null(f"{target_meta.table_name}.{column}", value))

        if lookup in ("jid", "pk"):
            column = f"{meta.table_name}.jid" if has_join else "jid"
            return query.filter(eq_or_null(column, value))
        field = meta.fields.get(lookup)
        if field is None and lookup.endswith("_id"):
            # Allow filtering on the raw foreign-key column (``event_id=...``).
            field = meta.fields.get(lookup[:-3])
        if field is None:
            raise ValueError(f"unknown field {lookup!r} on {meta.table_name}")
        if isinstance(value, JModel):
            value = value.jid
        elif not isinstance(value, Facet):
            value = field.to_db(value)
        column = field.column_name
        if has_join:
            column = f"{meta.table_name}.{column}"
        return query.filter(eq_or_null(column, value))

    @staticmethod
    def _column_for(meta, field_name: str) -> str:
        if field_name in ("jid", "pk", "id"):
            return "jid"
        field = meta.fields.get(field_name)
        return field.column_name if field is not None else field_name

    @staticmethod
    def _aggregate_column(meta, field_name: str, function: str) -> str:
        """Resolve and validate the column behind an aggregated field
        (shared gate: :func:`repro.form.aggregates.check_aggregate_field`)."""
        if field_name in ("jid", "pk", "id"):
            return "jid"
        return check_aggregate_field(
            field_name, meta.fields.get(field_name), meta.table_name, function
        )

    @staticmethod
    def _base_values(meta, row: Dict[str, Any], joined_tables: List[str]) -> Dict[str, Any]:
        """Extract the base table's columns from a (possibly joined) row."""
        if not joined_tables:
            return dict(row)
        prefix = f"{meta.table_name}."
        return {
            name[len(prefix):]: value for name, value in row.items() if name.startswith(prefix)
        }

    # -- policy registration -----------------------------------------------------------------

    def _register_policies(
        self, form: FORM, entries: Sequence[Tuple[int, Tuple[JvarBranch, ...], Any]]
    ) -> None:
        """Attach each record's policies to its labels in the runtime.

        Policies are evaluated lazily against the *current* database state
        (the paper enforces policies "with respect to ... the state of the
        system at the time of output"), so the closure re-reads the secret
        facet of the row when invoked.
        """
        meta = self.model._meta
        for jid in {jid for jid, _branches, _instance in entries}:
            for group in meta.policy_groups:
                name = label_name_for(meta.table_name, jid, group.key)
                if name in form.registered_labels:
                    continue
                _register_label_policy(form, self.model, jid, group, name)

    def _pruned(
        self,
        form: FORM,
        entries: Sequence[Tuple[int, Tuple[JvarBranch, ...], Any]],
        viewer: Any,
    ) -> List[Any]:
        """Early Pruning: keep only the facet rows visible to ``viewer``.

        Policies of *this* model are evaluated against the secret facet
        instance already fetched by the query (when present), so a pruned
        page resolves each policy exactly once per record instead of
        re-reading the row -- the effect behind the paper's observation that
        Jacqueline can beat hand-coded checks on some pages.
        """
        meta = self.model._meta
        prefix = f"{meta.table_name}."
        secret_instances: Dict[int, Any] = {}
        for jid, branches, instance in entries:
            own = [polarity for name, polarity in branches if name.startswith(prefix)]
            if all(own):
                secret_instances.setdefault(jid, instance)

        groups_by_key = {group.key: group for group in meta.policy_groups}
        resolve = self._label_resolver(
            form,
            viewer,
            resolve_label=lambda name: self._resolve_with_hint(
                form, name, viewer, prefix, groups_by_key, secret_instances
            ),
        )
        result: List[Any] = []
        for _jid, branches, instance in entries:
            if all(resolve(name) == polarity for name, polarity in branches):
                result.append(instance)
        return result

    @staticmethod
    def _resolve_with_hint(
        form: FORM,
        label_name: str,
        viewer: Any,
        prefix: str,
        groups_by_key: Dict[str, Any],
        secret_instances: Dict[int, Any],
    ) -> bool:
        hint_group = None
        hint_instance = None
        if label_name.startswith(prefix):
            parts = label_name.split(".")
            if len(parts) == 3:
                hint_group = groups_by_key.get(parts[2])
                hint_instance = secret_instances.get(int(parts[1]))
        if hint_group is None or hint_instance is None:
            return _resolve_label(form, label_name, viewer)

        # Same re-entrancy guard as _resolve_label: a policy that queries the
        # data it guards sees its own label optimistically as visible.
        resolving = _resolving_labels(form)
        key = (label_name, id(viewer))
        if key in resolving:
            return True
        resolving.add(key)
        try:
            outcome = evaluate_policy(hint_group.method, hint_instance, viewer)
            if isinstance(outcome, Facet):
                outcome = form.runtime.concretize(outcome, viewer)
            return bool(outcome)
        finally:
            resolving.discard(key)


class Manager:
    """The per-model query entry point (``Model.objects``)."""

    def __init__(self, model: Type) -> None:
        self.model = model

    def __get__(self, instance: Any, owner: Type) -> "Manager":
        return self

    # -- creation ---------------------------------------------------------------------

    def create(self, **kwargs: Any) -> Any:
        instance = self.model(**kwargs)
        instance.save()
        return instance

    def get_or_create(
        self, defaults: Optional[Dict[str, Any]] = None, **filters: Any
    ) -> Tuple[Any, bool]:
        """The matching record, creating it when missing.

        Returns ``(instance, created)`` like Django.  ``defaults`` supplies
        extra field values used only on creation; join lookups
        (``fk__field``) cannot be turned into field values and are rejected
        when creation is required.

        The check-then-create section is transactional with respect to other
        ``get_or_create`` calls on the same FORM: concurrent callers with the
        same filters serialise on a (striped) per-key creation lock, so
        exactly one of them creates the record and the rest observe it --
        while creations for unrelated keys proceed in parallel.
        """
        found = self.get(**filters)
        if found is not None:
            return found, False
        joined = [lookup for lookup in filters if "__" in lookup]
        if joined:
            raise ValueError(
                f"get_or_create cannot build a record from join lookups {joined!r}"
            )
        form = current_form()
        with form.creation_lock(self._creation_key(filters)):
            # Re-check under the lock: another thread may have created the
            # record between the optimistic get above and lock acquisition.
            found = self.get(**filters)
            if found is not None:
                return found, False
            params = dict(filters)
            params.update(defaults or {})
            return self.create(**params), True

    def _creation_key(self, filters: Dict[str, Any]) -> Tuple:
        """A stable lock key for get_or_create's check-then-create section.

        Values are marshalled the way the query itself marshals them (jid
        for model instances, ``to_db`` for field values), so two callers
        racing on the same logical record always hash to the same lock --
        ``repr`` of live instances would not be stable across copies.
        """
        from repro.form.model import JModel

        meta = self.model._meta
        parts = []
        for name, value in filters.items():
            if isinstance(value, JModel):
                value = value.jid
            else:
                field = meta.fields.get(name)
                if field is None and name.endswith("_id"):
                    field = meta.fields.get(name[:-3])
                if field is not None and not isinstance(value, Facet):
                    value = field.to_db(value)
            parts.append((name, repr(value)))
        return (meta.table_name, tuple(sorted(parts)))

    def bulk_create(self, instances: Sequence[Any]) -> List[Any]:
        """Save many unsaved instances with one bulk database write.

        Facet-row expansion is identical to :meth:`JModel.save`; the rows of
        the whole batch are flushed through ``Database.insert_many`` (one
        backend write, one invalidation event) instead of one insert per
        facet row.  Instances that already have a jid, or saves under a
        non-empty path condition, fall back to the full ``save`` semantics.
        """
        form = current_form()
        meta = self.model._meta
        table = meta.table_name
        pending = list(instances)
        rows: List[Dict[str, Any]] = []
        deferred: List[Any] = []
        under_pc = bool(form.runtime.current_pc())
        for instance in pending:
            if instance.jid is not None or under_pc:
                deferred.append(instance)
                continue
            instance.jid = form.next_jid(table)
            for branches, values in instance._facet_rows(form):
                rows.append(instance._db_row(values, branches))
        if rows:
            form.database.insert_many(table, rows)
        for instance in deferred:
            instance.save(form)
        return pending

    def bulk_update(self, instances: Sequence[Any]) -> List[Any]:
        """Rewrite many saved records' facet rows in one batched write.

        The set-oriented form of heterogeneous per-instance edits: each
        instance's facet-row set is expanded exactly as :meth:`JModel.save`
        would (public facets recomputed), and the whole batch is flushed
        through a single atomic ``replace_rows`` -- one backend write, one
        invalidation event -- instead of one rewrite per record.  When the
        same record appears twice, the *last* instance wins (matching
        sequential saves).  Every instance must already have a jid; saves
        under a non-empty path condition fall back to per-instance
        ``save`` for the guarded-update semantics.
        """
        form = current_form()
        meta = self.model._meta
        table = meta.table_name
        pending = list(instances)
        by_jid: Dict[int, Any] = {}
        for instance in pending:
            if instance.jid is None:
                raise ValueError(
                    "bulk_update requires saved instances (use bulk_save "
                    "to mix creates and updates)"
                )
            by_jid[instance.jid] = instance
        if not by_jid:
            return pending
        if form.runtime.current_pc():
            for instance in by_jid.values():
                instance.save(form)
            return pending
        with form._save_lock:
            rows: List[Dict[str, Any]] = []
            for jid, instance in by_jid.items():
                form.note_jid(table, jid)
                rows.extend(writes.expanded_rows(instance, form))
            _replace_rows_chunked(form, table, list(by_jid), rows)
        return pending

    def bulk_save(self, instances: Sequence[Any]) -> List[Any]:
        """Persist a heterogeneous batch: creates and updates, both batched.

        Unsaved instances flush through :meth:`bulk_create` (one
        ``insert_many``), already-saved ones through :meth:`bulk_update`
        (one ``replace_rows``) -- at most two backend writes for the whole
        batch instead of one per record.  Order within the input is
        irrelevant to the result; path-condition saves keep full ``save``
        semantics via the two methods' own fallbacks.
        """
        pending = list(instances)
        # Split before creating: bulk_create assigns jids, and a freshly
        # created instance must not be rewritten again by the update half.
        created = [i for i in pending if i.jid is None]
        updated = [i for i in pending if i.jid is not None]
        self.bulk_create(created)
        self.bulk_update(updated)
        return pending

    # -- querying ----------------------------------------------------------------------

    def all(self) -> QuerySet:
        return QuerySet(self.model)

    def filter(self, **filters: Any) -> QuerySet:
        return QuerySet(self.model, filters)

    def get(self, **filters: Any) -> Any:
        """The matching record, or ``None`` (the Jacqueline API never raises
        for a missing row, unlike Django -- see Figure 7 vs Figure 8)."""
        return QuerySet(self.model, filters).first()

    def get_or_raise(self, **filters: Any) -> Any:
        found = self.get(**filters)
        if found is None:
            raise DoesNotExist(f"{self.model.__name__} matching {filters!r} does not exist")
        return found

    def get_by_jid(self, jid: Any) -> Any:
        if isinstance(jid, Facet):
            from repro.core.facets import facet_map

            return facet_map(lambda j: self.get(jid=j) if j is not None else None, jid)
        return self.get(jid=jid)

    def count(self) -> Any:
        return QuerySet(self.model).count()

    def exists(self) -> Any:
        return QuerySet(self.model).exists()

    def aggregate(self, field_name: str, function: str) -> Any:
        return QuerySet(self.model).aggregate(field_name, function)


def _replace_rows_chunked(
    form: FORM, table: str, jids: Sequence[int], rows: List[Dict[str, Any]]
) -> None:
    """Atomically swap the facet rows of the given records, chunking the
    ``jid IN (...)`` predicate at :data:`repro.form.writes.MAX_BOUND_VARIABLES`.

    The common case (fewer jids than SQLite's bound-variable limit) stays a
    single ``replace_rows`` batch.  Past the limit the swap proceeds one jid
    chunk at a time -- each chunk replacing exactly its own records' rows --
    which is safe because every caller holds ``form._save_lock`` for the
    whole loop, so no concurrent write can interleave between chunks.
    """
    jids = list(jids)
    if len(jids) <= writes.MAX_BOUND_VARIABLES:
        form.database.replace_rows(table, InList(col("jid"), tuple(jids)), rows)
        return
    by_jid = writes.group_rows_by_jid(rows)
    for chunk in writes.chunked(jids):
        chunk_rows = [row for jid in chunk for row in by_jid.get(jid, [])]
        form.database.replace_rows(
            table, InList(col("jid"), tuple(chunk)), chunk_rows
        )


def _resolving_labels(form: FORM) -> set:
    """This thread's set of labels currently being resolved on ``form``.

    Per-thread on purpose: the optimistic-visibility answer for a label mid-
    resolution is only sound inside the resolution cycle asking for it.  A
    concurrent request thread hitting the same (label, viewer) must block on
    nothing and evaluate the policy for real, or a denied viewer could be
    shown the secret facet whenever another request happens to be resolving
    the same label.
    """
    local = form._resolving_local
    labels = getattr(local, "labels", None)
    if labels is None:
        labels = set()
        local.labels = labels
    return labels


def _instance_from_row(model: Type, values: Dict[str, Any]) -> Any:
    """Build a model instance from one database row (already unqualified)."""
    meta = model._meta
    instance = model.__new__(model)
    instance.jid = values.get("jid")
    for name, field in meta.fields.items():
        column = field.column_name
        raw = values.get(column)
        setattr(instance, column, field.from_db(raw))
    return instance


def _secret_instance(model: Type, jid: int, form: FORM) -> Any:
    """The secret (all labels True) facet of a record, freshly read.

    Used when evaluating policies: the policy sees the actual field values of
    the row at the time of output.
    """
    meta = model._meta
    rows = form.database.find(meta.table_name, jid=jid)
    if not rows:
        return None
    return _instance_from_row(model, writes.secret_row(rows))


def _register_label_policy(form: FORM, model: Type, jid: int, group, name: str) -> None:
    """Declare one record's policy-group label and attach its closure.

    The single registration step shared by the row-fetching path
    (``_register_policies``) and the aggregate path
    (``_register_result_policies``); callers check
    ``form.registered_labels`` before calling.
    """
    form.registered_labels.add(name)
    label = Label(hint=name, name=name)
    form.runtime.policy_env.declare(label)
    form.runtime.policy_env.restrict(label, _policy_closure(model, jid, group, form))


def _policy_closure(model: Type, jid: int, group, form: FORM):
    """A policy callable bound to one record's policy group."""

    def policy(viewer: Any) -> Any:
        row = _secret_instance(model, jid, form)
        if row is None:
            return False
        return evaluate_policy(group.method, row, viewer)

    return policy


def _resolve_label(form: FORM, label_name: str, viewer: Any) -> bool:
    """Resolve one label for a known viewer (Early Pruning).

    Labels named by the FORM convention ``Table.jid.group`` are resolved by
    evaluating the model's policy directly; other labels (e.g. created by
    application code through the runtime) fall back to the runtime's policy
    environment.

    Policies may depend on the data they guard (the guest-list example of
    Section 2.3): evaluating such a policy issues a query whose pruning asks
    for the very label being resolved.  Mirroring the constraint semantics --
    which prefers the show-maximising consistent assignment -- a label that
    is already being resolved is optimistically treated as visible inside its
    own policy evaluation.
    """
    resolving = _resolving_labels(form)
    key = (label_name, id(viewer))
    if key in resolving:
        return True
    resolving.add(key)
    try:
        return _resolve_label_inner(form, label_name, viewer)
    finally:
        resolving.discard(key)


def _resolve_label_inner(form: FORM, label_name: str, viewer: Any) -> bool:
    parts = label_name.split(".")
    if len(parts) == 3:
        table, jid_text, group_key = parts
        from repro.form.model import ModelRegistry

        try:
            model = ModelRegistry.get(table)
        except LookupError:
            model = None
        if model is not None:
            meta = model._meta
            group = next((g for g in meta.policy_groups if g.key == group_key), None)
            if group is not None:
                row = _secret_instance(model, int(jid_text), form)
                if row is None:
                    return False
                outcome = evaluate_policy(group.method, row, viewer)
                if isinstance(outcome, Facet):
                    outcome = form.runtime.concretize(outcome, viewer)
                return bool(outcome)
    label = Label(hint=label_name, name=label_name)
    obs.add("policy.evaluations")
    outcome = form.runtime.policy_env.evaluate(label, viewer)
    if isinstance(outcome, Facet):
        outcome = form.runtime.concretize(outcome, viewer)
    return bool(outcome)
