"""Set-oriented FORM writes: plan selection + the facet-rewrite algebra.

The write half of the Jacqueline API mirrors its read planners.  A bulk
write (``QuerySet.update()`` / ``QuerySet.delete()`` / ``Manager.bulk_*``)
chooses between two paths:

* **In-place (fast) path** -- the write compiles to *one* SQL statement
  (``UPDATE``/``DELETE`` with the filters pushed through a ``jid IN
  (SELECT DISTINCT jid ...)`` subselect, see
  :func:`repro.db.query.plan_update` / :func:`plan_delete`).  Eligible when
  no facet row needs to be *recomputed*: the assigned columns are not
  guarded by any policy group, the assigned values are concrete (not
  faceted), and the write happens outside any path condition.  Setting a
  non-policied column to one concrete value on every facet row of a record
  is exactly what a record-at-a-time ``save`` would have stored, so no
  fetch or unmarshal is needed.

* **Batched facet rewrite (slow) path** -- policied columns, faceted
  values or a non-empty path condition change *which rows exist*, so the
  write falls back to: one projected jid query, one fetch of the affected
  facet rows, a per-jid recomputation reusing ``JModel.save``'s expansion
  and pc-guard algebra (below), and one atomic ``replace_rows`` batch.
  Secret/public facets and guarded-update semantics are preserved exactly
  -- and even the slow path is O(1) statements, never one per record.

This module holds the shared pieces: eligibility checks, the row marshal
(:func:`facet_db_row`) used by every write path, and the pc-guard algebra
(:func:`guarded_replacement` / :func:`guarded_survivors`) that
``JModel.save`` and the batched paths both call.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.facets import UNASSIGNED, Facet, facet_map
from repro.form.marshal import (
    JvarBranch,
    build_faceted_record,
    format_jvars,
    parse_jvars,
)

#: Column names that belong to the FORM, not the application row.
METADATA_COLUMNS = ("id", "jid", "jvars")

#: The most bound variables one statement may carry.  SQLite's default
#: SQLITE_MAX_VARIABLE_NUMBER is 32766; the batched rewrite paths chunk
#: their ``jid IN (?, ...)`` lists below it so a rewrite touching more
#: records than that cannot fail with "too many SQL variables".
MAX_BOUND_VARIABLES = 30_000


def chunked(items: Sequence[Any], size: Optional[int] = None) -> List[Sequence[Any]]:
    """Split a sequence into chunks of at most ``size`` items.

    ``size`` defaults to :data:`MAX_BOUND_VARIABLES`, read at call time so
    tests can lower the module attribute and exercise the chunked paths
    without materialising 32k records.

    >>> chunked([1, 2, 3, 4, 5], size=2)
    [[1, 2], [3, 4], [5]]
    """
    if size is None:
        size = MAX_BOUND_VARIABLES
    if len(items) <= size:
        return [items]
    return [items[start:start + size] for start in range(0, len(items), size)]


# -- update() argument resolution -------------------------------------------------------


def resolve_update_fields(meta, values: Dict[str, Any]) -> List[Tuple[str, Any, Any]]:
    """Validate ``update(**values)`` kwargs against a model's fields.

    Returns ``(name, field, value)`` triples.  Like filter lookups, a raw
    foreign-key column may be assigned via its ``<name>_id`` spelling --
    accepted only when ``<name>_id`` really is the field's backing column
    (a foreign key), so a typo like ``score_id`` on a plain ``score``
    field raises instead of silently overwriting a different column.

    >>> from repro.form import CharField, IntegerField, JModel
    >>> class _WDoc(JModel):
    ...     title = CharField()
    ...     score = IntegerField()
    >>> [(n, f.column_name) for n, f, _v in
    ...  resolve_update_fields(_WDoc._meta, {"title": "x"})]
    [('title', 'title')]
    >>> resolve_update_fields(_WDoc._meta, {"nope": 1})
    Traceback (most recent call last):
        ...
    ValueError: unknown field 'nope' on _WDoc
    >>> resolve_update_fields(_WDoc._meta, {"score_id": 0})
    Traceback (most recent call last):
        ...
    ValueError: unknown field 'score_id' on _WDoc
    """
    resolved = []
    for name, value in values.items():
        field = meta.fields.get(name)
        if field is None and name.endswith("_id"):
            candidate = meta.fields.get(name[:-3])
            if candidate is not None and candidate.column_name == name:
                field = candidate
        if field is None:
            raise ValueError(f"unknown field {name!r} on {meta.table_name}")
        resolved.append((name, field, value))
    return resolved


def fast_path_values(meta, resolved: Sequence[Tuple[str, Any, Any]]) -> Optional[Dict[str, Any]]:
    """The single-statement column assignment, or ``None`` to fall back.

    The decision procedure's per-column half: every assigned column must be
    outside all policy groups (its stored value is identical across the
    record's facet rows, so one ``SET col = ?`` preserves the encoding
    bit-for-bit) and every value concrete.  The caller separately requires
    an empty path condition.  Returns the marshalled ``{column: db value}``
    mapping on success.

    The eligibility check here is per *assigned column*; stored public
    facets of other (policied) fields are save-time snapshots the single
    statement does not recompute.  :func:`read_set_forced_columns` closes
    that gap: the caller forces the batched rewrite whenever an assigned
    column appears in some ``jacqueline_get_public_*`` method's statically
    inferred read set (see :mod:`repro.analysis.readsets`).
    """
    column_values: Dict[str, Any] = {}
    for _name, field, value in resolved:
        if isinstance(value, Facet):
            return None
        if meta.group_for_field(field.name) is not None:
            return None
        column_values[field.column_name] = field.to_db(value)
    return column_values


def read_set_forced_columns(meta, column_values: Dict[str, Any]) -> Tuple[str, ...]:
    """Assigned columns whose update must force the batched rewrite.

    A ``jacqueline_get_public_*`` method's stored result is a save-time
    snapshot; assigning a column such a method *reads* with one in-place
    ``UPDATE`` would leave that snapshot stale.  Read sets are inferred
    statically (:func:`repro.analysis.readsets.public_read_columns_for_model`,
    cached on the model meta); a TOP read set -- inference gave up -- forces
    conservatively, reported as the pseudo-column ``"*"``.

    Returns ``()`` when the fast path is safe: no public methods, or none
    of them reads any assigned column.
    """
    if not meta.public_methods:
        return ()
    reads = meta.public_read_columns()
    if reads is None:
        return ("*",)
    return tuple(sorted(set(column_values) & set(reads)))


def guarded_delete_values(meta, pc) -> Optional[Dict[str, Any]]:
    """The single-statement encoding of a pc-guarded delete, if one exists.

    A guarded delete keeps each record's previous contents for every label
    assignment falsifying the path condition.  When the model declares no
    policy groups and the pc is a single branch, a record stored as one
    unguarded row (``jvars = ''``) has exactly one surviving facet row: its
    old values confined to the negated branch.  That rewrite is expressible
    as ``SET jvars = '<negated branch>'`` -- no fetch, no per-record
    recomputation.  The caller must separately verify (under the save lock)
    that the table holds *only* empty-jvars rows and guard the statement
    with ``jvars = ''`` per row; any pre-existing facet structure falls
    back to the batched rewrite.

    Returns the ``{column: value}`` assignment, or ``None`` when the
    static shape does not apply (policied model, multi-branch pc).

    >>> class _GDMeta:
    ...     policy_groups = []
    >>> class _GDBranch:
    ...     class label: name = "Doc.3.owner"
    ...     positive = True
    >>> class _GDPc:
    ...     @staticmethod
    ...     def branches(): return [_GDBranch]
    >>> guarded_delete_values(_GDMeta, _GDPc)
    {'jvars': 'Doc.3.owner=False'}
    """
    if meta.policy_groups:
        return None
    branches = pc_branch_list(pc)
    if len(branches) != 1:
        return None
    (negated,) = complement_assignments(branches)
    return {"jvars": format_jvars(negated)}


# -- row marshalling --------------------------------------------------------------------


def facet_db_row(
    jid: Optional[int], values: Dict[str, Any], branches: Sequence[JvarBranch]
) -> Dict[str, Any]:
    """The concrete database row for one facet row of one record.

    The single marshal shared by ``JModel.save``, ``Manager.bulk_create``
    and every batched rewrite, so all write paths store identically:
    ``jid``/``jvars`` meta-data columns added, unresolved facets scrubbed
    to NULL.

    >>> facet_db_row(7, {"title": "t"}, [("S.7.title", True)])
    {'title': 't', 'jid': 7, 'jvars': 'S.7.title=True'}
    """
    row = dict(values)
    row["jid"] = jid
    row["jvars"] = format_jvars(branches)
    return {
        name: (value if not isinstance(value, Facet) else None)
        for name, value in row.items()
    }


def application_values(row: Dict[str, Any]) -> Dict[str, Any]:
    """A stored row's application columns (meta-data columns stripped).

    >>> application_values({"id": 3, "jid": 1, "jvars": "", "title": "t"})
    {'title': 't'}
    """
    return {
        name: value for name, value in row.items() if name not in METADATA_COLUMNS
    }


def expanded_rows(instance, form) -> List[Dict[str, Any]]:
    """Every database row of one instance: its full facet-row set.

    Expansion is ``JModel._facet_rows`` (value facets x policy groups with
    computed public facets), marshalled through :func:`facet_db_row`.
    """
    return [
        facet_db_row(instance.jid, values, branches)
        for branches, values in instance._facet_rows(form)
    ]


def secret_row(rows: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The stored row encoding a record's secret facet (all labels True).

    Prefers the row satisfied by the all-True assignment with the most
    explicit positive branches; falls back to the first row when every row
    mentions a negative branch (a record written under a path condition).

    >>> secret_row([{"jvars": "k=False", "v": 0}, {"jvars": "k=True", "v": 1}])
    {'jvars': 'k=True', 'v': 1}
    """
    best = None
    best_score = -1
    for row in rows:
        branches = parse_jvars(row.get("jvars"))
        score = sum(1 for _name, polarity in branches if polarity)
        if all(polarity for _name, polarity in branches) and score >= best_score:
            best, best_score = row, score
    if best is None and rows:
        best = rows[0]
    return best


# -- the pc-guard algebra ---------------------------------------------------------------


def pc_branch_list(pc) -> List[JvarBranch]:
    """A path condition's branches as jvars pairs (label name, polarity)."""
    return [(branch.label.name, branch.positive) for branch in pc.branches()]


def branches_contradictory(branches: Sequence[JvarBranch]) -> bool:
    """Whether a branch set assigns some label both polarities.

    >>> branches_contradictory([("k", True), ("k", False)])
    True
    >>> branches_contradictory([("k", True), ("m", False)])
    False
    """
    polarity: Dict[str, bool] = {}
    for name, value in branches:
        if name in polarity and polarity[name] != value:
            return True
        polarity[name] = value
    return False


def complement_assignments(
    pc_branches: Sequence[JvarBranch],
) -> List[Tuple[JvarBranch, ...]]:
    """All assignments of the pc labels that falsify the path condition.

    >>> complement_assignments([("k", True)])
    [(('k', False),)]
    """
    names = [name for name, _ in pc_branches]
    satisfied = tuple(pc_branches)
    result = []
    for assignment in itertools.product([True, False], repeat=len(names)):
        candidate = tuple(zip(names, assignment))
        if candidate != satisfied:
            result.append(candidate)
    return result


def freeze_values(values: Dict[str, Any]) -> Tuple:
    """A hashable identity for one row's values (dedupe key)."""
    return tuple(sorted((name, repr(value)) for name, value in values.items()))


def guarded_replacement(
    jid: int,
    new_rows: Sequence[Tuple[Sequence[JvarBranch], Dict[str, Any]]],
    existing_rows: Sequence[Dict[str, Any]],
    pc_branches: Sequence[JvarBranch],
) -> List[Dict[str, Any]]:
    """The facet rows implementing a pc-guarded rewrite of one record.

    New rows apply where the path condition holds; the previously stored
    rows remain for every assignment falsifying it -- the Dagstuhl
    description example of the paper's Section 2.2.  Contradictory branch
    combinations are dropped, duplicates merged.  This is the algebra
    behind ``JModel.save`` under a non-empty pc, shared verbatim with the
    batched ``QuerySet.update`` fallback.
    """
    obs.add("pc.guard.rewrites")
    replacement: List[Dict[str, Any]] = []
    seen = set()
    for branches, values in new_rows:
        combined = tuple(sorted(set(branches) | set(pc_branches)))
        if branches_contradictory(combined):
            continue
        key = (combined, freeze_values(values))
        if key not in seen:
            seen.add(key)
            replacement.append(facet_db_row(jid, values, combined))
    for old_row in existing_rows:
        old_branches = parse_jvars(old_row.get("jvars"))
        old_values = application_values(old_row)
        for negated in complement_assignments(pc_branches):
            combined = tuple(sorted(set(old_branches) | set(negated)))
            if branches_contradictory(combined):
                continue
            key = (combined, freeze_values(old_values))
            if key not in seen:
                seen.add(key)
                replacement.append(facet_db_row(jid, old_values, combined))
    return replacement


def guarded_survivors(
    jid: int,
    existing_rows: Sequence[Dict[str, Any]],
    pc_branches: Sequence[JvarBranch],
) -> List[Dict[str, Any]]:
    """The facet rows surviving a pc-guarded *delete* of one record.

    A delete under a path condition removes the record only in the worlds
    satisfying the pc: the record's previous contents survive for every
    complement assignment.  Equivalent to a guarded rewrite with no new
    rows.
    """
    return guarded_replacement(jid, [], existing_rows, pc_branches)


# -- batched rewrites -------------------------------------------------------------------


def group_rows_by_jid(rows: Sequence[Dict[str, Any]]) -> Dict[int, List[Dict[str, Any]]]:
    """Partition fetched facet rows by record, one pass.

    >>> grouped = group_rows_by_jid([{"jid": 1, "v": "a"}, {"jid": 1, "v": "b"}])
    >>> sorted(grouped), len(grouped[1])
    ([1], 2)
    """
    grouped: Dict[int, List[Dict[str, Any]]] = {}
    for row in rows:
        grouped.setdefault(int(row["jid"]), []).append(row)
    return grouped


def reconstruct_instance(model, jid: int, rows: Sequence[Dict[str, Any]]):
    """Rebuild the faceted instance a record's rows encode, for re-saving.

    The model's *own* policy-group labels (``Table.jid.group``) are
    stripped -- ``JModel._facet_rows`` re-generates them, recomputing the
    public facets -- but every **foreign** label (value facets stored on
    the columns, pc labels from earlier guarded saves) is rebuilt into a
    faceted field value, so a batched rewrite preserves facet structure
    the secret row alone cannot see.  Field values come from the rows on
    the record's secret side (own labels all True); a foreign assignment
    no stored secret row covers resolves to ``None``.
    """
    from repro.form.manager import _instance_from_row

    meta = model._meta
    own_prefix = f"{meta.table_name}.{jid}."
    secret_entries: List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]] = []
    for row in rows:
        branches = parse_jvars(row.get("jvars"))
        own = [(name, pol) for name, pol in branches if name.startswith(own_prefix)]
        if all(polarity for _name, polarity in own):
            foreign = tuple(
                (name, pol) for name, pol in branches if not name.startswith(own_prefix)
            )
            secret_entries.append((foreign, row))
    if not secret_entries:
        # Every row mentions a negative own label (should not happen for
        # records written by save/bulk_create): best-effort secret row.
        secret_entries = [((), secret_row(rows))]
    instance = _instance_from_row(model, secret_entries[0][1])
    for field in meta.fields.values():
        column = field.column_name
        if all(not foreign for foreign, _row in secret_entries):
            value = field.from_db(secret_entries[0][1].get(column))
        else:
            faceted = build_faceted_record(
                [(foreign, row.get(column)) for foreign, row in secret_entries]
            )
            value = facet_map(
                lambda raw, field=field: field.from_db(
                    None if raw is UNASSIGNED else raw
                ),
                faceted,
            )
        setattr(instance, column, value)
    return instance


def bulk_update_rows(
    model,
    form,
    jids: Sequence[int],
    existing_rows: Sequence[Dict[str, Any]],
    field_updates: Sequence[Tuple[str, Any, Any]],
) -> List[Dict[str, Any]]:
    """Replacement rows for a batched faceted update of many records.

    For each jid: rebuild the record's faceted instance from the
    already-fetched rows (:func:`reconstruct_instance` -- value facets on
    unassigned columns are preserved, not collapsed to their secret
    projection), assign the new field values, and re-expand its facet-row
    set exactly as ``JModel.save`` would (public facets of policied
    fields recomputed via the model's ``jacqueline_get_public_*``
    methods).  Under a non-empty path condition each record merges
    through :func:`guarded_replacement` instead, so complement
    assignments keep the previous contents.

    The caller flushes the result in one ``replace_rows`` batch -- a
    single atomic backend write with one invalidation event, regardless of
    how many records the update touched.
    """
    pc = form.runtime.current_pc()
    pc_branches = pc_branch_list(pc)
    rows_by_jid = group_rows_by_jid(existing_rows)
    replacement: List[Dict[str, Any]] = []
    for jid in jids:
        rows = rows_by_jid.get(jid)
        if not rows:
            continue
        instance = reconstruct_instance(model, jid, rows)
        for _name, field, value in field_updates:
            if isinstance(value, Facet):
                setattr(instance, field.column_name, value)
            else:
                setattr(instance, field.column_name, field.to_db(value))
        new_rows = instance._facet_rows(form)
        if pc_branches:
            replacement.extend(guarded_replacement(jid, new_rows, rows, pc_branches))
        else:
            replacement.extend(
                facet_db_row(jid, values, branches) for branches, values in new_rows
            )
    return replacement
