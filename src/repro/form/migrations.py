"""Migrating legacy (non-faceted) data into the FORM representation.

Section 3.1.2: "Adding policies to legacy data involves adding meta-data
columns."  These helpers take an existing application table without
``jid``/``jvars`` and produce the augmented layout, seeding ``jid`` from the
primary key and ``jvars`` with the empty string (visible to everyone) so
that policies added afterwards apply uniformly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from repro.db.engine import Database
from repro.db.schema import Column, ColumnType, TableSchema


def add_metadata_columns(schema: TableSchema) -> TableSchema:
    """Return the schema augmented with the FORM's ``jid``/``jvars`` columns."""
    extra = (
        Column("jid", ColumnType.INTEGER, indexed=True),
        Column("jvars", ColumnType.TEXT, default=""),
    )
    return schema.with_extra_columns(extra)


def migrate_legacy_rows(
    database: Database,
    legacy_table: str,
    target_schema: TableSchema,
    jid_from: str = "id",
) -> int:
    """Copy rows from a legacy table into an augmented table.

    Each legacy row becomes a single facet row visible in every context
    (``jvars = ""``) whose ``jid`` is taken from ``jid_from`` (normally the
    old primary key).  Returns the number of rows migrated.  The target table
    is created if missing; when the target *is* the legacy table (in-place
    augmentation), the table is rebuilt with the extra meta-data columns --
    the equivalent of the ``ALTER TABLE ... ADD COLUMN`` a production
    migration would run.
    """
    rows = database.rows(legacy_table)
    if legacy_table == target_schema.name:
        existing = database.backend.schema(legacy_table)
        if not existing.has_column("jid"):
            database.drop_table(legacy_table)
        database.create_table(target_schema)
        migrated = 0
        for row in rows:
            values = {
                name: value
                for name, value in row.items()
                if target_schema.has_column(name) and name != "id"
            }
            values["jid"] = row.get(jid_from)
            values["jvars"] = ""
            database.insert_row(target_schema.name, values)
            migrated += 1
        return migrated
    database.create_table(target_schema)
    migrated = 0
    for row in rows:
        values: Dict[str, Any] = {
            name: value
            for name, value in row.items()
            if target_schema.has_column(name) and name != "id"
        }
        values["jid"] = row.get(jid_from)
        values["jvars"] = ""
        database.insert_row(target_schema.name, values)
        migrated += 1
    return migrated


def register_legacy_model(form, model: Type, legacy_table: str, jid_from: str = "id") -> int:
    """Register ``model`` with ``form`` and pull its data from a legacy table.

    Afterwards the legacy data is queryable through the Jacqueline API and
    new policies added to the model apply to it; updating policies later only
    requires changing policy code (Section 3.1.2).
    """
    form.register(model)
    count = migrate_legacy_rows(
        form.database, legacy_table, model._meta.table_schema(), jid_from=jid_from
    )
    max_jid = 0
    for row in form.database.rows(model._meta.table_name):
        if row.get("jid"):
            max_jid = max(max_jid, int(row["jid"]))
    form.note_jid(model._meta.table_name, max_jid)
    return count
