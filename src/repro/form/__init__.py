"""The Faceted Object-Relational Mapping (FORM).

The FORM stores faceted values in ordinary relational tables by augmenting
every model's table with two meta-data columns (Section 3.1):

* ``jid``   -- a facet identifier shared by all database rows that encode the
  facets of one logical record;
* ``jvars`` -- a comma-separated description of which facet a row belongs to,
  e.g. ``"k1=True,k2=False"`` (the empty string means the row is visible in
  every context).

Programmers declare models exactly as with Django, plus:

* ``@label_for("field", ...)`` marks a static method as the policy guarding
  one or more fields;
* ``jacqueline_get_public_<field>`` static methods compute the public facet
  of a sensitive field.

Queries issue ordinary relational operations over the augmented tables and
reconstruct facets from the meta-data on the way out; foreign keys reference
the target's ``jid``.  The Early Pruning optimisation keeps only the facet
rows visible to a known viewer (Section 3.2).

Writes are set-oriented too: ``QuerySet.update()``/``delete()`` compile to
single faceted-aware SQL statements where the facet encoding allows it, and
fall back to a batched facet rewrite where it does not -- the decision
procedure and the pc-guard algebra live in :mod:`repro.form.writes`.
"""

from repro.cache import CacheConfig
from repro.form.aggregates import (
    ColumnStats,
    finalise_stats,
    merge_counts,
    merge_stats,
    visible_value,
)
from repro.form.fields import (
    BooleanField,
    CharField,
    DateTimeField,
    Field,
    FloatField,
    ForeignKey,
    IntegerField,
    TextField,
)
from repro.form.policies import jacqueline, label_for
from repro.form.model import JModel, ModelOptions
from repro.form.manager import DoesNotExist, Manager, QuerySet
from repro.form.context import (
    FORM,
    current_form,
    current_viewer,
    set_default_form,
    set_form,
    use_form,
    viewer_context,
)
from repro.form.marshal import format_jvars, parse_jvars
from repro.form.migrations import add_metadata_columns, migrate_legacy_rows

__all__ = [
    "CacheConfig",
    "ColumnStats",
    "merge_counts",
    "merge_stats",
    "finalise_stats",
    "visible_value",
    "Field",
    "CharField",
    "TextField",
    "IntegerField",
    "FloatField",
    "BooleanField",
    "DateTimeField",
    "ForeignKey",
    "label_for",
    "jacqueline",
    "JModel",
    "ModelOptions",
    "Manager",
    "QuerySet",
    "DoesNotExist",
    "FORM",
    "use_form",
    "set_form",
    "set_default_form",
    "current_form",
    "viewer_context",
    "current_viewer",
    "parse_jvars",
    "format_jvars",
    "add_metadata_columns",
    "migrate_legacy_rows",
]
