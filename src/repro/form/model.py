"""Jacqueline model classes (the ``JModel`` base and its metaclass).

A model declares fields, optional ``jacqueline_get_public_<field>`` methods
computing public facets, and ``@label_for`` policies.  The metaclass collects
these into :class:`ModelOptions`; instances carry (possibly faceted) field
values; ``save`` expands them into jid/jvars-annotated rows.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro import obs
from repro.core.facets import Facet
from repro.db.expr import eq
from repro.db.schema import Column, ColumnType, IndexSpec, TableSchema
from repro.form.context import FORM, current_form
from repro.form.fields import Field, ForeignKey
from repro.form.marshal import (
    JvarBranch,
    expand_value_facets,
    label_name_for,
)
from repro.form.policies import POLICY_ATTRIBUTE, PUBLIC_METHOD_PREFIX
from repro.form.writes import (
    facet_db_row,
    freeze_values as _freeze_values,
    guarded_replacement,
    guarded_survivors,
    pc_branch_list,
)


class PolicyGroup:
    """One ``@label_for`` declaration: a set of fields guarded by one label."""

    def __init__(self, fields: Tuple[str, ...], method: Callable[[Any, Any], Any]) -> None:
        self.fields = fields
        self.method = method
        #: stable key used in label names; the first guarded field.
        self.key = fields[0]

    def __repr__(self) -> str:
        return f"PolicyGroup(fields={self.fields!r})"


class ModelRegistry:
    """Global name → model class registry (resolves string foreign keys)."""

    _models: Dict[str, Type["JModel"]] = {}

    @classmethod
    def register(cls, model: Type["JModel"]) -> None:
        cls._models[model.__name__] = model

    @classmethod
    def get(cls, name: str) -> Type["JModel"]:
        try:
            return cls._models[name]
        except KeyError as exc:
            raise LookupError(f"unknown model {name!r}") from exc


class ModelOptions:
    """Per-model metadata: fields, policies, public-value methods, schema."""

    #: Names of the FORM meta-data columns added to every table.
    METADATA_COLUMNS = ("jid", "jvars")

    def __init__(self, model: Type["JModel"], fields: Dict[str, Field]) -> None:
        self.model = model
        self.table_name = model.__name__
        self.fields = fields
        self.policy_groups: List[PolicyGroup] = []
        self.public_methods: Dict[str, Callable[[Any], Any]] = {}

    # -- schema -------------------------------------------------------------------

    def table_schema(self) -> TableSchema:
        """The augmented schema: application columns plus ``jid``/``jvars``.

        An ``ordered=True`` field additionally declares a composite
        ``(column, jid)`` index: bounded and keyset-style scans ordered by
        that field walk the index straight to whole faceted records
        (``WHERE (col, jid) > (:last_col, :last_jid)``) instead of sorting.
        """
        columns: List[Column] = [Column("id", ColumnType.INTEGER, primary_key=True)]
        composites: List[IndexSpec] = []
        for field in self.fields.values():
            columns.append(field.to_column())
            if field.ordered:
                composites.append(IndexSpec((field.column_name, "jid")))
        columns.append(Column("jid", ColumnType.INTEGER, indexed=True))
        columns.append(Column("jvars", ColumnType.TEXT, default=""))
        return TableSchema(self.table_name, tuple(columns), indexes=tuple(composites))

    # -- policies ------------------------------------------------------------------

    def group_for_field(self, field_name: str) -> Optional[PolicyGroup]:
        for group in self.policy_groups:
            if field_name in group.fields:
                return group
        return None

    def public_value(self, field_name: str, instance: "JModel") -> Any:
        """The public facet of a field, computed by the declared method.

        Falls back to ``None`` when no ``jacqueline_get_public_<field>``
        method exists (the field is simply hidden).
        """
        method = self.public_methods.get(field_name)
        if method is None:
            return None
        return method(instance)

    def public_read_columns(self) -> Optional[frozenset]:
        """Columns the model's public-facet methods read, or ``None`` (TOP).

        Statically inferred once per model class
        (:func:`repro.analysis.readsets.public_read_columns_for_model`) and
        cached; the write decision procedure consults it to force the
        batched rewrite when a fast-path update would stale a stored
        public snapshot.  ``None`` means "may read anything" -- inference
        gave up or the method source is unavailable -- and forces
        conservatively.  Imported lazily: the analysis package depends on
        nothing in the form, but the form only needs it once models with
        public methods are actually updated.
        """
        try:
            return self._public_read_columns
        except AttributeError:
            from repro.analysis.readsets import public_read_columns_for_model

            self._public_read_columns = public_read_columns_for_model(self.model)
        return self._public_read_columns

    def field_column(self, field_name: str) -> str:
        return self.fields[field_name].column_name

    def __repr__(self) -> str:
        return f"ModelOptions({self.table_name!r})"


class ModelMeta(type):
    """Collects fields and policy declarations into ``cls._meta``."""

    def __new__(mcls, name: str, bases: Tuple[type, ...], namespace: Dict[str, Any]):
        cls = super().__new__(mcls, name, bases, dict(namespace))
        if name in {"JModel"} and not bases:
            return cls

        fields: Dict[str, Field] = {}
        for base in bases:
            base_meta = getattr(base, "_meta", None)
            if base_meta is not None:
                fields.update(base_meta.fields)
        for attr_name, attr_value in list(namespace.items()):
            if isinstance(attr_value, Field):
                attr_value.name = attr_name
                attr_value.model = cls
                fields[attr_name] = attr_value
                delattr(cls, attr_name)

        options = ModelOptions(cls, fields)

        for attr_name, attr_value in namespace.items():
            target = attr_value.__func__ if isinstance(attr_value, staticmethod) else attr_value
            guarded = getattr(target, POLICY_ATTRIBUTE, None)
            if guarded:
                options.policy_groups.append(PolicyGroup(tuple(guarded), target))
            if attr_name.startswith(PUBLIC_METHOD_PREFIX) and callable(target):
                field_name = attr_name[len(PUBLIC_METHOD_PREFIX):]
                options.public_methods[field_name] = target

        cls._meta = options
        ModelRegistry.register(cls)

        from repro.form.manager import Manager  # deferred to break the import cycle

        cls.objects = Manager(cls)
        return cls


class JModel(metaclass=ModelMeta):
    """Base class for Jacqueline models.

    Instances are plain attribute bags; field values may be faceted.  The
    ``jid`` attribute identifies the logical record across its facet rows
    (``None`` until the instance is saved).
    """

    _meta: ModelOptions

    def __init__(self, **kwargs: Any) -> None:
        self.jid: Optional[int] = kwargs.pop("jid", None)
        meta = type(self)._meta
        for name, field in meta.fields.items():
            if name in kwargs:
                self._set_field(name, field, kwargs.pop(name))
            elif isinstance(field, ForeignKey) and f"{name}_id" in kwargs:
                setattr(self, f"{name}_id", kwargs.pop(f"{name}_id"))
            else:
                setattr(self, field.column_name, field.default)
        if kwargs:
            raise TypeError(f"unexpected field(s) {sorted(kwargs)} for {type(self).__name__}")

    def _set_field(self, name: str, field: Field, value: Any) -> None:
        if isinstance(field, ForeignKey):
            if isinstance(value, JModel) or isinstance(value, Facet):
                object.__setattr__(self, f"_fk_cache_{name}", value)
                setattr(self, field.column_name, field.to_db(value) if not isinstance(value, Facet) else value)
            else:
                setattr(self, field.column_name, value)
        else:
            setattr(self, name, value)

    # -- identity -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JModel):
            return NotImplemented
        if type(self) is not type(other):
            return False
        if self.jid is None or other.jid is None:
            return self is other
        return self.jid == other.jid

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.jid if self.jid is not None else id(self)))

    def __repr__(self) -> str:
        meta = type(self)._meta
        parts = [f"jid={self.jid}"]
        for name, field in list(meta.fields.items())[:4]:
            parts.append(f"{name}={getattr(self, field.column_name, None)!r}")
        return f"{type(self).__name__}({', '.join(parts)})"

    # -- foreign key resolution ----------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        meta = type(self).__dict__.get("_meta") or type(self)._meta
        field = meta.fields.get(name)
        if isinstance(field, ForeignKey):
            cache_name = f"_fk_cache_{name}"
            if cache_name in self.__dict__:
                return self.__dict__[cache_name]
            target_jid = self.__dict__.get(field.column_name)
            if target_jid is None:
                return None
            target = field.target_model()
            resolved = target.objects.get_by_jid(target_jid)
            self.__dict__[cache_name] = resolved
            return resolved
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {name!r}")

    # -- persistence -------------------------------------------------------------------------

    def field_values(self) -> Dict[str, Any]:
        """Current column values of this instance (possibly faceted)."""
        meta = type(self)._meta
        values: Dict[str, Any] = {}
        for name, field in meta.fields.items():
            raw = self.__dict__.get(field.column_name)
            values[field.column_name] = raw if isinstance(raw, Facet) else field.to_db(raw)
        return values

    def save(self, form: Optional[FORM] = None) -> "JModel":
        """Write this instance to the database as jid/jvars-annotated facet rows.

        Saving under a non-empty path condition (inside ``runtime.jif`` on a
        sensitive condition) guards the update: viewers outside the branch
        keep seeing the previous contents, as in the Dagstuhl-description
        example of Section 2.2.
        """
        form = form or current_form()
        meta = type(self)._meta
        table = meta.table_name
        created = self.jid is None
        if created:
            self.jid = form.next_jid(table)
        else:
            form.note_jid(table, self.jid)

        rows = self._facet_rows(form)
        pc = form.runtime.current_pc()

        if created and not pc:
            # One bulk write: all facet rows of the record land in a single
            # backend transaction/lock hold with one invalidation event, so
            # a concurrent reader can never observe a partially-created
            # record (some facets present, others missing).
            form.database.insert_many(
                table, [self._db_row(values, branches) for branches, values in rows]
            )
            return self

        # Updates rewrite the record's whole facet-row set.  The FORM save
        # lock serialises concurrent read-modify-writes of the same record;
        # the backend's replace_rows swaps the rows atomically, so readers
        # observe the record before or after the update, never mid-rewrite.
        with form._save_lock:
            if not pc:
                form.database.replace_rows(
                    table,
                    eq("jid", self.jid),
                    [self._db_row(values, branches) for branches, values in rows],
                )
                return self

            # Guarded update: new rows apply where the path condition holds;
            # the previously stored rows remain for every assignment
            # falsifying it (the pc-guard algebra in repro.form.writes,
            # shared with the batched QuerySet.update fallback).
            existing = form.database.find(table, jid=self.jid)
            replacement = guarded_replacement(
                self.jid, rows, existing, pc_branch_list(pc)
            )
            form.database.replace_rows(table, eq("jid", self.jid), replacement)
            return self

    def delete(self, form: Optional[FORM] = None) -> None:
        """Remove every facet row of this record.

        Takes the FORM save lock so a delete cannot interleave with a
        concurrent update's read-modify-write and be undone by its reinsert.

        ``jid`` is cleared afterwards, so a later :meth:`save` re-creates
        the record as a fresh one instead of silently resurrecting the old
        jid through the update path.  Under a non-empty path condition the
        delete is *guarded*: rows survive for every assignment falsifying
        the pc (viewers outside the branch keep seeing the record), and
        ``jid`` stays set because the record still exists in those worlds.
        """
        if self.jid is None:
            return
        form = form or current_form()
        table = type(self)._meta.table_name
        pc = form.runtime.current_pc()
        with form._save_lock:
            if not pc:
                form.database.delete(table, eq("jid", self.jid))
                self.jid = None
                return
            existing = form.database.find(table, jid=self.jid)
            survivors = guarded_survivors(self.jid, existing, pc_branch_list(pc))
            form.database.replace_rows(table, eq("jid", self.jid), survivors)
            if not survivors:
                # Every stored row was already confined to the pc branch, so
                # no complement assignment survives: the record is gone in
                # every world and a stale jid must not resurrect it.
                self.jid = None

    # -- row expansion ----------------------------------------------------------------------------

    def _facet_rows(self, form: FORM) -> List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]]:
        """Expand this instance into (branches, concrete column values) rows.

        Two sources of facets are combined: facets already present in the
        field values (data derived from other sensitive data) and the policy
        groups declared on the model (each contributing one fresh label whose
        False side holds the computed public values).
        """
        meta = type(self)._meta
        base_rows = expand_value_facets(self.field_values())

        group_labels: List[Tuple[str, PolicyGroup]] = []
        for group in meta.policy_groups:
            group_labels.append((label_name_for(meta.table_name, self.jid, group.key), group))

        if not group_labels:
            obs.add("facet.rows.expanded", len(base_rows))
            return base_rows

        expanded: List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]] = []
        for branches, values in base_rows:
            for assignment in itertools.product([True, False], repeat=len(group_labels)):
                row_values = dict(values)
                row_branches = list(branches)
                for (label_name, group), visible in zip(group_labels, assignment):
                    row_branches.append((label_name, visible))
                    if not visible:
                        for field_name in group.fields:
                            column = meta.field_column(field_name)
                            field = meta.fields[field_name]
                            public = meta.public_value(field_name, self)
                            row_values[column] = (
                                field.to_db(public) if not isinstance(public, Facet) else public
                            )
                expanded.append((tuple(row_branches), row_values))
        result = _merge_rows(expanded)
        obs.add("facet.rows.expanded", len(result))
        return result

    def _db_row(
        self, values: Dict[str, Any], branches: Sequence[JvarBranch]
    ) -> Dict[str, Any]:
        """The concrete database row for one facet row of this instance.

        Delegates to :func:`repro.form.writes.facet_db_row` -- the single
        marshal shared by :meth:`save`, ``Manager.bulk_create`` and the
        batched set-oriented write paths, so every writer stores
        identically.
        """
        return facet_db_row(self.jid, values, branches)


def _merge_rows(
    rows: List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]]
) -> List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]]:
    """Collapse facet rows whose values do not depend on some label (sharing)."""
    if not rows:
        return rows
    label_names = sorted({name for branches, _ in rows for name, _pol in branches})
    significant: List[str] = []
    for name in label_names:
        groups: Dict[Tuple, set] = {}
        for branches, values in rows:
            mapping = dict(branches)
            if name not in mapping:
                continue
            other = tuple(sorted((n, p) for n, p in branches if n != name))
            groups.setdefault(other, set()).add((mapping[name], _freeze_values(values)))
        if any(len({frozen for _p, frozen in group}) > 1 for group in groups.values()):
            significant.append(name)
    merged: Dict[Tuple, Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]] = {}
    for branches, values in rows:
        kept = tuple(sorted((n, p) for n, p in branches if n in significant))
        merged.setdefault((kept, _freeze_values(values)), (kept, values))
    return list(merged.values())
