"""Faceted merging of grouped aggregates (the jvars-partition algebra).

The FORM's aggregate pushdown runs ``SELECT jvars..., AGG... GROUP BY
jvars...`` -- one statement partitioning the matching facet rows by label
assignment -- and this module merges those per-partition aggregates back
into one (possibly faceted) value.

The invariant that makes this sound: a viewer in world *W* (a label
assignment) sees exactly the rows whose ``jvars`` branches are consistent
with *W*, so any aggregate over the viewer's rows is a combination of the
per-partition aggregates of the consistent partitions.  COUNT and SUM
combine by addition, MIN/MAX by comparison, and AVG by summing ``(SUM,
COUNT)`` pairs -- which is why :class:`ColumnStats` carries the raw
ingredients rather than a finished average.

Merging walks the partitions in sorted branch order and combines them with
``facet_apply``, so the sharing optimisation of ``mk_facet`` collapses
facets whose sides agree: a record whose facet rows all matched the filter
contributes the same count to every world and the merge stays a plain
number.  Only partitions that genuinely discriminate (a filter matching
one facet of a record but not another) surface a label in the result.

SQL's NULL discipline carries through end to end: per partition, SQL skips
NULLs (``COUNT(col)`` counts non-NULL values; SUM/AVG/MIN/MAX of none is
NULL), and the merge preserves that -- a world whose partitions hold no
non-NULL values aggregates to ``None`` (0 for COUNT).

>>> merge_counts([((("k", True),), 2), ((("k", False),), 1)])
<k ? 2 : 1>
>>> merge_counts([((("k", True),), 2), ((("k", False),), 2)])
2
>>> merge_counts([])
0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Sequence, Tuple

from repro.core.facets import facet_apply, facet_map, mk_facet_branches
from repro.core.labels import Branch, Label
from repro.db.schema import ColumnType
from repro.form.marshal import JvarBranch

#: One jvars partition of a grouped aggregate result: the branch set that
#: selects the partition, plus its per-partition payload (a count, a
#: :class:`ColumnStats`, ...).
AggregateGroup = Tuple[Tuple[JvarBranch, ...], Any]

#: Aggregate functions the FORM understands (EXISTS rides on COUNT).
FACET_AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

#: Column types SUM/AVG accept.  SQL coerces text to 0 while Python would
#: concatenate or raise, so both ORMs reject the divergence at the API.
NUMERIC_COLUMN_TYPES = (ColumnType.INTEGER, ColumnType.REAL, ColumnType.BOOLEAN)


def check_aggregate_field(field_name: str, field: Any, table_name: str, function: str) -> str:
    """Validate an ORM aggregate target field; returns its column name.

    The one validation gate shared by the FORM and baseline query sets:
    unknown fields are an error (a typo would otherwise yield a silent NULL
    -- or, on SQLite, a double-quoted string literal), and SUM/AVG require
    a numeric column.

    >>> from repro.form.fields import IntegerField, CharField
    >>> pages = IntegerField(); pages.name = "pages"
    >>> check_aggregate_field("pages", pages, "Book", "SUM")
    'pages'
    >>> check_aggregate_field("title", CharField(), "Book", "AVG")
    Traceback (most recent call last):
        ...
    ValueError: AVG requires a numeric field; 'title' is TEXT
    """
    if field is None:
        raise ValueError(f"unknown field {field_name!r} on {table_name}")
    if function in ("SUM", "AVG") and field.column_type not in NUMERIC_COLUMN_TYPES:
        raise ValueError(
            f"{function} requires a numeric field; "
            f"{field_name!r} is {field.column_type.name}"
        )
    return field.column_name


class _Absent:
    """Sentinel leaf for "this partition contributes nothing in this world"."""

    _instance = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ABSENT"


ABSENT = _Absent()


@dataclass(frozen=True)
class ColumnStats:
    """The mergeable ingredients of one partition's column aggregates.

    ``count`` counts non-NULL values (SQL ``COUNT(col)``); ``total``,
    ``minimum`` and ``maximum`` are ``None`` when the partition holds no
    non-NULL value, mirroring SQL's SUM/MIN/MAX.  Unlike a finished AVG,
    these combine associatively across partitions.

    >>> a = ColumnStats(count=2, total=10, minimum=3, maximum=7)
    >>> b = ColumnStats()          # an all-NULL partition
    >>> a.combine(b) == a
    True
    >>> a.finalise("AVG")
    5.0
    >>> b.finalise("SUM") is None and b.finalise("COUNT") == 0
    True
    """

    count: int = 0
    total: Any = None
    minimum: Any = None
    maximum: Any = None

    def combine(self, other: "ColumnStats") -> "ColumnStats":
        """Merge two partitions' stats (NULL-aware, associative)."""
        return ColumnStats(
            count=self.count + other.count,
            total=_merge(self.total, other.total, lambda a, b: a + b),
            minimum=_merge(self.minimum, other.minimum, min),
            maximum=_merge(self.maximum, other.maximum, max),
        )

    def finalise(self, function: str) -> Any:
        """The SQL value of one aggregate function over the merged stats."""
        function = function.upper()
        if function == "COUNT":
            return self.count
        if function == "SUM":
            return self.total
        if function == "AVG":
            return None if self.count == 0 else self.total / self.count
        if function == "MIN":
            return self.minimum
        if function == "MAX":
            return self.maximum
        raise ValueError(f"unknown aggregate function {function!r}")


def _merge(a: Any, b: Any, combine: Callable[[Any, Any], Any]) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    return combine(a, b)


def merge_groups(
    groups: Iterable[AggregateGroup], combine: Callable[[Any, Any], Any], initial: Any
) -> Any:
    """Fold jvars partitions into one (possibly faceted) value.

    Each partition contributes its payload exactly in the worlds consistent
    with its branches and nothing (:data:`ABSENT`) elsewhere; ``combine``
    folds contributing payloads onto ``initial`` pointwise per world.
    Partitions are processed in sorted branch order so the facet tree nests
    labels alphabetically -- the same order ``build_faceted_collection``
    uses -- and opposite-polarity partitions of one label sit adjacent,
    letting ``mk_facet`` collapse records whose partitions agree.

    >>> merge_groups([((), 5), ((("k", True),), 1)], lambda a, b: a + b, 0)
    <k ? 6 : 5>
    """
    acc = initial
    for branches, payload in sorted(groups, key=lambda group: tuple(group[0])):
        if not branches:
            acc = facet_apply(combine, acc, payload)
            continue
        contribution = mk_facet_branches(
            [
                Branch(Label(hint=name, name=name), polarity)
                for name, polarity in branches
            ],
            payload,
            ABSENT,
        )
        acc = facet_apply(
            lambda left, right: left if right is ABSENT else combine(left, right),
            acc,
            contribution,
        )
    return acc


def merge_counts(groups: Iterable[AggregateGroup]) -> Any:
    """Per-world row counts from per-partition ``COUNT(*)`` values.

    The faceted form of ``QuerySet.count()``: each world counts exactly the
    facet rows its label assignment selects.  A record whose facet rows all
    matched contributes 1 everywhere and leaves no facet behind.

    >>> merge_counts([((), 3)])
    3
    >>> merge_counts([((("k", True),), 1)])
    <k ? 1 : 0>
    """
    from repro import obs

    groups = list(groups)
    obs.add("worlds.merged", len(groups))
    return merge_groups(groups, lambda a, b: a + b, 0)


def merge_stats(groups: Iterable[AggregateGroup]) -> Any:
    """Per-world :class:`ColumnStats` from per-partition stats.

    >>> merged = merge_stats([
    ...     ((), ColumnStats(count=1, total=4, minimum=4, maximum=4)),
    ...     ((("k", True),), ColumnStats(count=1, total=6, minimum=6, maximum=6)),
    ... ])
    >>> facet_map(lambda stats: stats.finalise("SUM"), merged)
    <k ? 10 : 4>
    """
    from repro import obs

    groups = list(groups)
    obs.add("worlds.merged", len(groups))
    return merge_groups(groups, ColumnStats.combine, ColumnStats())


def finalise_stats(merged: Any, function: str) -> Any:
    """Apply :meth:`ColumnStats.finalise` across a (faceted) merge result.

    >>> finalise_stats(ColumnStats(count=2, total=8), "AVG")
    4.0
    """
    return facet_map(lambda stats: stats.finalise(function), merged)


def visible_value(
    groups: Iterable[AggregateGroup],
    resolve: Callable[[str], bool],
    combine: Callable[[Any, Any], Any],
    initial: Any,
) -> Any:
    """The one-world merge for a known viewer (Early Pruning for aggregates).

    ``resolve`` maps a label name to the viewer's polarity; only partitions
    whose branches all agree contribute -- exactly the facet rows
    ``QuerySet._pruned`` would have kept.

    >>> groups = [((("k", True),), 2), ((("k", False),), 1)]
    >>> visible_value(groups, lambda name: True, lambda a, b: a + b, 0)
    2
    """
    acc = initial
    for branches, payload in groups:
        if all(resolve(name) == polarity for name, polarity in branches):
            acc = combine(acc, payload)
    return acc


def stats_of_values(values: Sequence[Any]) -> ColumnStats:
    """:class:`ColumnStats` of in-memory values (NULLs skipped, SQL-style).

    The Python-side fallback used when a bounded query set cannot push its
    aggregate down: compute the same stats the database would have.

    >>> stats_of_values([3, None, 7]).finalise("AVG")
    5.0
    >>> stats_of_values([None]).finalise("MIN") is None
    True
    """
    present: List[Any] = [value for value in values if value is not None]
    if not present:
        return ColumnStats()
    try:  # non-summable values (datetimes, strings): MIN/MAX/COUNT only
        total = present[0]
        for value in present[1:]:
            total = total + value
    except TypeError:
        total = None
    return ColumnStats(
        count=len(present),
        total=total,
        minimum=min(present),
        maximum=max(present),
    )
