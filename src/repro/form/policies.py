"""Policy declaration decorators.

``@label_for("field", ...)`` marks a (static) method on a model as the
information-flow policy guarding one or more fields.  A policy receives the
row object and the viewing context and returns a boolean (it may issue
further ORM queries; the FORM evaluates it at output time).

``@jacqueline`` is the marker the paper places on policy methods to indicate
they run under the Jeeves runtime.  In this reproduction it is a transparent
marker kept for source compatibility with the paper's listings.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Tuple

POLICY_ATTRIBUTE = "_jacqueline_label_for"
JACQUELINE_ATTRIBUTE = "_jacqueline_policy"

#: The naming convention used to find public-facet computations.
PUBLIC_METHOD_PREFIX = "jacqueline_get_public_"


def label_for(*field_names: str) -> Callable[[Callable], Callable]:
    """Mark a method as the policy for the given fields.

    Fields named in one ``label_for`` share a single label per record: they
    are revealed or hidden together, exactly as ``name`` and ``location``
    share a label in the paper's calendar example (Figure 2).
    """
    if not field_names:
        raise ValueError("label_for requires at least one field name")

    def decorate(fn: Callable) -> Callable:
        target = fn.__func__ if isinstance(fn, staticmethod) else fn
        setattr(target, POLICY_ATTRIBUTE, tuple(field_names))
        return fn

    return decorate


def jacqueline(fn: Callable) -> Callable:
    """Mark a policy method as running under the Jeeves runtime (a no-op marker)."""
    target = fn.__func__ if isinstance(fn, staticmethod) else fn
    setattr(target, JACQUELINE_ATTRIBUTE, True)
    return fn


def policy_fields(fn: Callable) -> Tuple[str, ...]:
    """The fields guarded by a policy method (empty if it is not a policy)."""
    target = fn.__func__ if isinstance(fn, staticmethod) else fn
    return tuple(getattr(target, POLICY_ATTRIBUTE, ()))


def evaluate_policy(method: Callable, row: Any, viewer: Any) -> Any:
    """Invoke one policy method, counting it as a policy evaluation.

    The single choke point every FORM policy invocation goes through
    (Early Pruning hints, lazy policy closures, direct label resolution),
    so the ``policy.evaluations`` observability counter measures exactly
    the paper's per-record policy-check cost.
    """
    from repro import obs

    obs.add("policy.evaluations")
    return method(row, viewer)


def public_method_field(name: str) -> str:
    """The field a ``jacqueline_get_public_<field>`` method computes, or ``""``."""
    if name.startswith(PUBLIC_METHOD_PREFIX):
        return name[len(PUBLIC_METHOD_PREFIX):]
    return ""
