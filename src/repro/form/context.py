"""FORM context: which database/runtime is active, and who the viewer is.

A :class:`FORM` bundles a relational :class:`~repro.db.engine.Database` with
a :class:`~repro.core.runtime.JeevesRuntime`.  Model managers resolve the
active FORM through a thread-local stack so the same model classes can be
re-pointed at fresh databases between tests and benchmark iterations.

The viewer context implements the Early Pruning hook: inside
``with viewer_context(user):`` queries resolve policies immediately for
``user`` and fetch only the visible facet rows (Section 3.2).  Outside a
viewer context, queries build full faceted results and policies are resolved
only at concretisation.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.cache.config import CacheConfig
from repro.cache.integration import FormCaches
from repro.core.runtime import JeevesRuntime
from repro.db.engine import Database
from repro.db.query import Query
from repro.form.pushdown import LabelAssignmentStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.form.model import JModel


class FORM:
    """A faceted ORM instance: database + runtime + registered models.

    ``cache_config`` selects the policy-aware cache layers (on by default;
    pass ``CacheConfig.disabled()`` for paper-faithful uncached behaviour).
    The caches subscribe to the database's invalidation bus, so every write
    through this FORM -- or directly through the backend -- invalidates the
    affected entries.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        runtime: Optional[JeevesRuntime] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> None:
        self.database = database if database is not None else Database()
        self.runtime = runtime if runtime is not None else JeevesRuntime()
        self._models: Dict[str, type] = {}
        self._jid_counters: Dict[str, int] = {}
        #: serialises jid allocation across request worker threads
        self._jid_lock = threading.Lock()
        #: striped locks for check-then-create sections (get_or_create):
        #: same-key callers serialise, disjoint keys mostly proceed in
        #: parallel instead of funnelling through one FORM-wide lock
        self._creation_locks = tuple(threading.RLock() for _ in range(16))
        #: serialises the delete+reinsert of a record's facet rows on update
        self._save_lock = threading.RLock()
        #: per-thread state for the policy re-entrancy guard: a label being
        #: resolved is optimistically visible only within the thread (and
        #: hence the resolution cycle) doing the resolving -- a second
        #: request thread must evaluate the policy for real.
        self._resolving_local = threading.local()
        #: label names whose policies have already been attached to the runtime
        self.registered_labels: set = set()
        self.cache_config = cache_config if cache_config is not None else CacheConfig()
        self.caches = FormCaches(self.cache_config)
        if self.cache_config.enabled:
            self.caches.bind(self.database.invalidation)
        #: compile Early Pruning into SQL where the policy shapes allow it
        #: (:mod:`repro.form.pushdown`); flip off to force the Python
        #: pruning path -- the differential-testing oracle.
        self.policy_pushdown_enabled = True
        #: cap the pushdown tier: ``"store"`` demotes direct/indexable
        #: rendering to the label-store tier (a fuzzing knob; ``None`` =
        #: uncapped).
        self.policy_pushdown_tier_cap: Optional[str] = None
        self.pushdown_store = LabelAssignmentStore()
        self.pushdown_store.bind(self.database.invalidation)

    # -- model registration -------------------------------------------------------

    def register(self, model: type) -> None:
        """Create the model's augmented table in this FORM's database.

        When the table already holds rows (a persistent database reopened by
        a fresh process), the jid counter resumes past the stored maximum so
        new records can never collide with existing ones.
        """
        options = model._meta
        self.database.create_table(options.table_schema())
        self._models[options.table_name] = model
        with self._jid_lock:
            self._jid_counters.setdefault(options.table_name, 0)
        try:
            stored_max = self.database.aggregate(
                Query(table=options.table_name).with_aggregate("MAX", "jid")
            )
        except Exception:
            # The table pre-exists without the jid meta-data column (legacy
            # schema awaiting migration): SQLITE_DQS=0 builds raise here.
            stored_max = None
        # Non-numeric results cover the same legacy case on permissive
        # SQLite builds, which resolve the unknown quoted identifier to the
        # string 'jid' instead of raising.
        if isinstance(stored_max, (int, float)) and not isinstance(stored_max, bool):
            self.note_jid(options.table_name, int(stored_max))

    def register_all(self, models: List[type]) -> None:
        for model in models:
            self.register(model)

    def registered_models(self) -> List[type]:
        return list(self._models.values())

    # -- jid allocation --------------------------------------------------------------

    def next_jid(self, table_name: str) -> int:
        """Allocate the next facet identifier for a table (thread-safe)."""
        with self._jid_lock:
            current = self._jid_counters.get(table_name, 0) + 1
            self._jid_counters[table_name] = current
            return current

    def creation_lock(self, key: Any) -> Any:
        """The lock serialising get_or_create for one filter key (striped)."""
        return self._creation_locks[hash(key) % len(self._creation_locks)]

    def note_jid(self, table_name: str, jid: int) -> None:
        """Record an externally chosen jid so future allocations stay unique."""
        with self._jid_lock:
            if jid > self._jid_counters.get(table_name, 0):
                self._jid_counters[table_name] = jid

    # -- convenience -----------------------------------------------------------------

    def clear(self) -> None:
        """Delete all rows and reset jid counters (schemas are kept)."""
        self.database.clear()
        self.runtime.reset()
        self.registered_labels.clear()
        self.caches.clear()
        self.pushdown_store.reset()
        with self._jid_lock:
            for name in self._jid_counters:
                self._jid_counters[name] = 0


_state = threading.local()

#: The process-wide default FORM.  The bottom of every thread's form stack is
#: this shared instance, so a worker thread spawned by a WSGI server (or any
#: ``threading.Thread``) sees the same database as the main thread instead of
#: silently minting a private empty FORM.  Created lazily; replaced with
#: :func:`set_default_form`.
_default_form: Optional[FORM] = None
_default_form_lock = threading.Lock()


def _get_default_form() -> FORM:
    global _default_form
    with _default_form_lock:
        if _default_form is None:
            _default_form = FORM()
        return _default_form


def set_default_form(form: FORM) -> FORM:
    """Install ``form`` as the process-wide default FORM.

    Threads that have not pushed their own FORM (via :func:`use_form` or
    :func:`set_form`) resolve :func:`current_form` to this instance.  Threads
    whose stack was already initialised keep their current binding; serving
    layers should therefore install the default before spawning workers (or
    rely on the per-request ``use_form`` the applications perform anyway).
    """
    global _default_form
    with _default_form_lock:
        _default_form = form
    return form


def _form_stack() -> List[FORM]:
    stack = getattr(_state, "form_stack", None)
    if stack is None:
        stack = [_get_default_form()]
        _state.form_stack = stack
    return stack


def current_form() -> FORM:
    """The FORM model managers are currently bound to."""
    return _form_stack()[-1]


@contextlib.contextmanager
def use_form(form: FORM) -> Iterator[FORM]:
    """Temporarily make ``form`` the active FORM (thread-local)."""
    stack = _form_stack()
    stack.append(form)
    try:
        yield form
    finally:
        stack.pop()


def set_form(form: FORM) -> None:
    """Install ``form`` as the active FORM for this thread (not scoped)."""
    _state.form_stack = [form]


def _viewer_stack() -> List[Any]:
    stack = getattr(_state, "viewer_stack", None)
    if stack is None:
        stack = []
        _state.viewer_stack = stack
    return stack


def current_viewer() -> Any:
    """The speculated viewer for Early Pruning, or ``None``."""
    stack = _viewer_stack()
    return stack[-1] if stack else None


@contextlib.contextmanager
def viewer_context(viewer: Any) -> Iterator[Any]:
    """Speculate on the viewer (the session user) for the enclosed queries.

    ``viewer_context(None)`` can be used to explicitly disable pruning inside
    an outer viewer context (e.g. for "post" handlers that write shared
    state).
    """
    stack = _viewer_stack()
    stack.append(viewer)
    try:
        yield viewer
    finally:
        stack.pop()
