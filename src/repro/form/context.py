"""FORM context: which database/runtime is active, and who the viewer is.

A :class:`FORM` bundles a relational :class:`~repro.db.engine.Database` with
a :class:`~repro.core.runtime.JeevesRuntime`.  Model managers resolve the
active FORM through a thread-local stack so the same model classes can be
re-pointed at fresh databases between tests and benchmark iterations.

The viewer context implements the Early Pruning hook: inside
``with viewer_context(user):`` queries resolve policies immediately for
``user`` and fetch only the visible facet rows (Section 3.2).  Outside a
viewer context, queries build full faceted results and policies are resolved
only at concretisation.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.cache.config import CacheConfig
from repro.cache.integration import FormCaches
from repro.core.runtime import JeevesRuntime
from repro.db.engine import Database

if TYPE_CHECKING:  # pragma: no cover
    from repro.form.model import JModel


class FORM:
    """A faceted ORM instance: database + runtime + registered models.

    ``cache_config`` selects the policy-aware cache layers (on by default;
    pass ``CacheConfig.disabled()`` for paper-faithful uncached behaviour).
    The caches subscribe to the database's invalidation bus, so every write
    through this FORM -- or directly through the backend -- invalidates the
    affected entries.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        runtime: Optional[JeevesRuntime] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> None:
        self.database = database if database is not None else Database()
        self.runtime = runtime if runtime is not None else JeevesRuntime()
        self._models: Dict[str, type] = {}
        self._jid_counters: Dict[str, int] = {}
        #: label names whose policies have already been attached to the runtime
        self.registered_labels: set = set()
        self.cache_config = cache_config if cache_config is not None else CacheConfig()
        self.caches = FormCaches(self.cache_config)
        if self.cache_config.enabled:
            self.caches.bind(self.database.invalidation)

    # -- model registration -------------------------------------------------------

    def register(self, model: type) -> None:
        """Create the model's augmented table in this FORM's database."""
        options = model._meta
        self.database.create_table(options.table_schema())
        self._models[options.table_name] = model
        self._jid_counters.setdefault(options.table_name, 0)

    def register_all(self, models: List[type]) -> None:
        for model in models:
            self.register(model)

    def registered_models(self) -> List[type]:
        return list(self._models.values())

    # -- jid allocation --------------------------------------------------------------

    def next_jid(self, table_name: str) -> int:
        """Allocate the next facet identifier for a table."""
        current = self._jid_counters.get(table_name, 0) + 1
        self._jid_counters[table_name] = current
        return current

    def note_jid(self, table_name: str, jid: int) -> None:
        """Record an externally chosen jid so future allocations stay unique."""
        if jid > self._jid_counters.get(table_name, 0):
            self._jid_counters[table_name] = jid

    # -- convenience -----------------------------------------------------------------

    def clear(self) -> None:
        """Delete all rows and reset jid counters (schemas are kept)."""
        self.database.clear()
        self.runtime.reset()
        self.registered_labels.clear()
        self.caches.clear()
        for name in self._jid_counters:
            self._jid_counters[name] = 0


_state = threading.local()


def _form_stack() -> List[FORM]:
    stack = getattr(_state, "form_stack", None)
    if stack is None:
        stack = [FORM()]
        _state.form_stack = stack
    return stack


def current_form() -> FORM:
    """The FORM model managers are currently bound to."""
    return _form_stack()[-1]


@contextlib.contextmanager
def use_form(form: FORM) -> Iterator[FORM]:
    """Temporarily make ``form`` the active FORM (thread-local)."""
    stack = _form_stack()
    stack.append(form)
    try:
        yield form
    finally:
        stack.pop()


def set_form(form: FORM) -> None:
    """Install ``form`` as the active FORM for this thread (not scoped)."""
    _state.form_stack = [form]


def _viewer_stack() -> List[Any]:
    stack = getattr(_state, "viewer_stack", None)
    if stack is None:
        stack = []
        _state.viewer_stack = stack
    return stack


def current_viewer() -> Any:
    """The speculated viewer for Early Pruning, or ``None``."""
    stack = _viewer_stack()
    return stack[-1] if stack else None


@contextlib.contextmanager
def viewer_context(viewer: Any) -> Iterator[Any]:
    """Speculate on the viewer (the session user) for the enclosed queries.

    ``viewer_context(None)`` can be used to explicitly disable pruning inside
    an outer viewer context (e.g. for "post" handlers that write shared
    state).
    """
    stack = _viewer_stack()
    stack.append(viewer)
    try:
        yield viewer
    finally:
        stack.pop()
