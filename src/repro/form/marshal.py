"""Marshalling between faceted values and jid/jvars-augmented rows.

One logical record maps to several database rows sharing a ``jid``; the
``jvars`` column records which label assignment each row belongs to
(``"k1=True,k2=False"``; the empty string means "all assignments").  These
helpers parse and format ``jvars`` and rebuild faceted values from groups of
annotated rows -- the unmarshalling step that makes plain relational queries
faceted-correct (Section 3.1.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.facets import UNASSIGNED, mk_facet

#: A branch assignment as stored in jvars: (label name, polarity).
JvarBranch = Tuple[str, bool]


def format_jvars(branches: Iterable[JvarBranch]) -> str:
    """Render branches as the canonical jvars string (sorted by label name)."""
    parts = [f"{name}={'True' if polarity else 'False'}" for name, polarity in sorted(branches)]
    return ",".join(parts)


def parse_jvars(text: Optional[str]) -> Tuple[JvarBranch, ...]:
    """Parse a jvars string back into branches (empty string → no branches)."""
    if not text:
        return ()
    branches: List[JvarBranch] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"malformed jvars entry {part!r}")
        name, _, value = part.partition("=")
        branches.append((name.strip(), value.strip() == "True"))
    return tuple(branches)


def label_name_for(table: str, jid: int, group_key: str) -> str:
    """The deterministic label name guarding one policy group of one record.

    Determinism lets the FORM re-create the same label (and re-attach its
    policy) every time the record is unmarshalled, regardless of which query
    produced it.
    """
    return f"{table}.{jid}.{group_key}"


def branches_consistent_with(
    branches: Sequence[JvarBranch], fixed: Dict[str, bool]
) -> bool:
    """True if no branch contradicts the partial assignment ``fixed``."""
    for name, polarity in branches:
        if name in fixed and fixed[name] != polarity:
            return False
    return True


def build_faceted_record(entries: Sequence[Tuple[Tuple[JvarBranch, ...], Any]]) -> Any:
    """Rebuild one logical record from its facet rows.

    ``entries`` holds ``(branches, payload)`` pairs for a single jid.  The
    result is a faceted value selecting the payload whose branches match the
    viewer's label assignment; assignments not covered by any row resolve to
    :data:`UNASSIGNED`.
    """
    return _build(list(entries), {}, collection=False)


def build_faceted_collection(entries: Sequence[Tuple[Tuple[JvarBranch, ...], Any]]) -> Any:
    """Rebuild a query result list from facet rows of many records.

    The result is a faceted value whose leaves are plain lists: each label
    assignment sees exactly the payloads whose branches it satisfies.  This
    is the faceted list ``<m ? [carolParty] : []>`` of Section 2.2.
    """
    return _build(list(entries), {}, collection=True)


def _build(
    entries: List[Tuple[Tuple[JvarBranch, ...], Any]],
    fixed: Dict[str, bool],
    collection: bool,
) -> Any:
    live = [
        (branches, payload)
        for branches, payload in entries
        if branches_consistent_with(branches, fixed)
    ]
    remaining = sorted(
        {name for branches, _ in live for name, _pol in branches if name not in fixed}
    )
    if not remaining:
        payloads = [payload for _branches, payload in live]
        if collection:
            return payloads
        if not payloads:
            return UNASSIGNED
        return payloads[0]
    label_name = remaining[0]
    from repro.core.facets import Facet
    from repro.core.labels import Label  # local import to avoid cycles

    label = Label(hint=label_name, name=label_name)
    high = _build(live, {**fixed, label_name: True}, collection)
    low = _build(live, {**fixed, label_name: False}, collection)
    # Build the facet node explicitly rather than through mk_facet: model
    # instances compare equal by jid across facets, which would wrongly
    # collapse the secret and public sides.
    return Facet(label, high, low)


def expand_value_facets(
    values: Dict[str, Any]
) -> List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]]:
    """Expand a dict whose values may be faceted into concrete facet rows.

    Returns ``(branches, concrete_values)`` pairs covering every label
    assignment mentioned by the faceted values.  Used when saving an instance
    whose fields were themselves derived from sensitive data.
    """
    from repro.core.facets import Facet

    label_names: List[str] = []
    seen = set()

    def collect(value: Any) -> None:
        if isinstance(value, Facet):
            if value.label.name not in seen:
                seen.add(value.label.name)
                label_names.append(value.label.name)
            collect(value.high)
            collect(value.low)

    for value in values.values():
        collect(value)

    if not label_names:
        return [((), dict(values))]

    results: List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]] = []

    def assign(index: int, fixed: Dict[str, bool]) -> None:
        if index == len(label_names):
            concrete = {name: _project(value, fixed) for name, value in values.items()}
            branches = tuple((name, fixed[name]) for name in label_names)
            results.append((branches, concrete))
            return
        name = label_names[index]
        assign(index + 1, {**fixed, name: True})
        assign(index + 1, {**fixed, name: False})

    assign(0, {})
    return _merge_identical(results)


def _project(value: Any, fixed: Dict[str, bool]) -> Any:
    from repro.core.facets import Facet

    if isinstance(value, Facet):
        chosen = value.high if fixed.get(value.label.name, False) else value.low
        return _project(chosen, fixed)
    return value


def _merge_identical(
    rows: List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]]
) -> List[Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]]:
    """Drop labels that do not influence the concrete values (sharing).

    If flipping a label never changes the projected row, the label is removed
    from the branch annotations, keeping the number of stored rows small --
    the row-sharing optimisation described alongside the faceted-table join.
    """
    if not rows:
        return rows
    label_names = [name for name, _ in rows[0][0]]
    significant: List[str] = []
    for name in label_names:
        groups: Dict[Tuple, set] = {}
        for branches, values in rows:
            other = tuple((n, p) for n, p in branches if n != name)
            groups.setdefault(other, set()).add(
                (branches_dict(branches)[name], _freeze(values))
            )
        if any(len({frozen for _pol, frozen in group}) > 1 for group in groups.values()):
            significant.append(name)
    merged: Dict[Tuple, Tuple[Tuple[JvarBranch, ...], Dict[str, Any]]] = {}
    for branches, values in rows:
        kept = tuple((n, p) for n, p in branches if n in significant)
        merged.setdefault(kept, (kept, values))
    return list(merged.values())


def branches_dict(branches: Sequence[JvarBranch]) -> Dict[str, bool]:
    return {name: polarity for name, polarity in branches}


def _freeze(values: Dict[str, Any]) -> Tuple:
    return tuple(sorted((k, repr(v)) for k, v in values.items()))
