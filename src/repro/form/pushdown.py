"""Policy pushdown: compile Early Pruning into the SQL statement itself.

Every policied read used to fetch facet rows and resolve each guarding
label in Python -- O(labels) policy evaluations per request.  This module
materialises policy *outcomes* instead: a label-assignment store table
(:data:`STORE_TABLE`) holds, per ``(model table, viewer)``, every non-empty
``jvars`` encoding whose branches are all consistent with the viewer's
resolved label assignment.  A pruned query then appends one predicate per
involved table::

    (jvars = '' OR jvars IN (SELECT jvars FROM "__jacq_labels__"
                             WHERE table_name = ? AND viewer_key = ?))

and the *database engine* prunes -- one SQL statement for
``filter().fetch()``, ``count()`` and ``aggregate()`` on both backends.

Correctness is by construction, not by re-deriving policies in SQL: the
store is populated by the same :func:`repro.form.manager._resolve_label`
pipeline the Python path uses (the Python path stays both the fallback and
the differential-testing oracle, see ``tests/fuzz/``).  Because label names
embed the record (``Table.jid.group``) and :func:`repro.form.marshal.format_jvars`
canonicalises branch order, a non-empty ``jvars`` string identifies its
label assignment exactly, so membership of the *string* decides visibility
of the *row*.

The decision procedure consumes :mod:`repro.analysis.classify` shapes:

* ``viewer-independent`` / ``equality-on-viewer`` models are eligible;
* any ``opaque`` group keeps the model on the Python path and counts
  ``plan.policy_pushdown.opaque_fallback`` -- no silent third state.

Invalidation (epoch coherence):

* every store entry is stamped with the global policy epoch, the schema
  generation and a write mark taken *before* the population read;
* models whose policies provably read only their own row (shape checks
  pass, inferred read set is not TOP, no cross-record reads, no ORM query
  in the policy body) invalidate *narrowly* on their own table's write
  generation; everything else invalidates on any write (a broad counter
  fed by the invalidation bus);
* out-of-band policy inputs (e.g. the conference phase) must call
  :func:`repro.cache.epoch.bump_policy_epoch` -- the same contract the
  label cache already imposes.

>>> _is_model_label("not a label")
False
>>> _viewer_key_text(("User", 3))
"('User', 3)"
"""

from __future__ import annotations

import ast
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro import obs
from repro.analysis import symbolic as sym
from repro.cache.bus import InvalidationBus, subscribe_weak
from repro.cache.epoch import policy_epoch
from repro.cache.label_cache import viewer_cache_key
from repro.db.expr import (
    AndExpr,
    ColumnRef,
    Comparison,
    Expression,
    FacetBranch,
    InSubquery,
    IsNull,
    Literal,
    NotExpr,
    NullSafeEq,
    OrExpr,
    and_all,
    eq,
    ne,
    prefix_range,
)
from repro.db.query import Query
from repro.db.schema import Column, ColumnType, IndexSpec, TableSchema
from repro.form.marshal import parse_jvars

#: The label-assignment store: per (model table, viewer), the jvars
#: encodings visible to that viewer.  The double-underscore name keeps it
#: out of the application namespace, like Django's own meta tables.
STORE_TABLE = "__jacq_labels__"


def _store_schema() -> TableSchema:
    # The composite (table_name, viewer_key) index backs the store-slice
    # subselect every pushed-down statement joins against -- one probe per
    # (model table, viewer) slice instead of two single-column narrowings.
    return TableSchema(
        STORE_TABLE,
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("table_name", ColumnType.TEXT, indexed=True),
            Column("viewer_key", ColumnType.TEXT, indexed=True),
            Column("jvars", ColumnType.TEXT, default=""),
        ),
        indexes=(IndexSpec(("table_name", "viewer_key")),),
    )


def _viewer_key_text(viewer_key: Hashable) -> str:
    """The stored spelling of a viewer identity (stable across requests)."""
    return repr(viewer_key)


def _is_model_label(name: str) -> bool:
    """Whether a label follows the FORM convention and resolves to a
    registered model's policy group.

    Anything else (pc labels pushed by application code, ad-hoc value-facet
    labels) has no write/epoch invalidation hook the store could subscribe
    to, so tables carrying such labels stay on the Python path.
    """
    parts = name.split(".")
    if len(parts) != 3:
        return False
    table, jid_text, group_key = parts
    try:
        int(jid_text)
    except ValueError:
        return False
    from repro.form.model import ModelRegistry

    try:
        model = ModelRegistry.get(table)
    except LookupError:
        return False
    return any(g.key == group_key for g in model._meta.policy_groups)


def _has_orm_query(node: Optional[ast.AST]) -> bool:
    """Whether a policy body mentions ``.objects`` anywhere.

    Read-set inference only flags cross-record reads it can prove; an ORM
    query whose argument is an attribute chain escapes it.  For *narrow*
    invalidation we must be certain the policy reads nothing but its own
    row, so any ``.objects`` mention forces broad invalidation.
    """
    if node is None:
        return True
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "objects"
        for sub in ast.walk(node)
    )


@dataclass(frozen=True)
class PushdownProfile:
    """The per-model decision record of the pushdown planner.

    ``eligible`` -- every policy group is viewer-independent or
    equality-on-viewer (classifier shapes), so the store can serve this
    model.  ``opaque`` -- at least one group is opaque; queries touching the
    model fall back and count ``plan.policy_pushdown.opaque_fallback``.
    ``narrow`` -- outcomes provably depend only on the model's own rows
    (plus epoch-guarded globals): invalidate on the own-table write
    generation instead of every write.

    ``tier`` is the *static* ceiling the symbolic predicate IR admits:

    * ``"direct"`` -- single policy group whose compiled predicate renders
      inline with two-valued atoms (equality on viewer values, membership,
      null tests), skipping the label store entirely;
    * ``"indexable"`` -- like direct but with prefix/range atoms that
      compile through ``Like``/``Between``-family expressions over
      non-nullable columns (servable from ordered indexes);
    * ``"store"`` -- eligible, served by the label-assignment store;
    * ``"opaque"`` -- Python fallback; ``"none"`` -- no policy groups.

    Runtime conditions (viewer bind success, canonical facet-branch state)
    can still demote direct/indexable to store per query; demotion never
    skips to the Python path while the model stays eligible.
    """

    eligible: bool
    narrow: bool
    opaque: bool
    shapes: Dict[str, str] = field(default_factory=dict)
    tier: str = "store"
    predicate: Optional[sym.Pred] = None

    @property
    def inline(self) -> bool:
        return self.tier in ("direct", "indexable")


#: Atom ops renderable as two-valued equality-family SQL (direct tier).
_DIRECT_OPS = frozenset(
    {"eq", "ne", "in", "not-in", "is-null", "not-null", "truthy"}
)
#: Atom ops renderable as range/prefix probes (indexable tier).
_RANGE_OPS = frozenset({"lt", "le", "gt", "ge", "prefix"})


def _atom_tier(atom: sym.Atom) -> Optional[str]:
    """``"direct"`` / ``"indexable"`` when the atom is renderable, else
    ``None`` (store fallback).

    Atoms not reading an own-row column fold to booleans at bind time with
    Python semantics, so any op is fine.  Own-column atoms must render with
    *two-valued* SQL: equality-family ops use ``IS``-style comparisons;
    range and prefix ops are only exact on non-nullable columns (a NULL
    would be UNKNOWN in SQL where Python raises).
    """
    lhs, rhs = atom.lhs, atom.rhs
    lhs_own = isinstance(lhs, sym.OwnColumn)
    rhs_own = isinstance(rhs, sym.OwnColumn)
    if not lhs_own and not rhs_own:
        if {type(lhs), type(rhs)} == {sym.RowSelf, sym.ViewerSelf}:
            return "direct" if atom.op in ("eq", "ne") else None
        if isinstance(lhs, sym.RowSelf) or isinstance(rhs, sym.RowSelf):
            return None
        return "direct"  # viewer/constant only: folds at bind time
    if not lhs_own:
        return None  # own column in a non-canonical position (e.g. prefix rhs)
    value_ok = isinstance(rhs, (sym.ConstVal, sym.ViewerAttr, sym.OwnColumn))
    if atom.op in ("eq", "ne"):
        return "direct" if value_ok else None
    if atom.op in ("in", "not-in"):
        return (
            "direct"
            if isinstance(rhs, sym.ConstVal) and isinstance(rhs.value, tuple)
            else None
        )
    if atom.op in ("is-null", "not-null"):
        return "direct"
    if atom.op == "truthy":
        return "direct" if lhs.kind == "bool" else None
    if atom.op in ("lt", "le", "gt", "ge"):
        if lhs.nullable or not value_ok:
            return None
        if rhs_own and rhs.nullable:
            return None
        return "indexable"
    if atom.op == "prefix":
        if lhs.kind != "text" or lhs.nullable or rhs_own:
            return None
        return "indexable" if value_ok else None
    return None


def _predicate_tier(pred: sym.Pred, guarded_columns: frozenset) -> str:
    """The static tier a compiled single-group predicate admits."""
    if sym.contains_top(pred):
        return "store"
    if sym.own_columns(pred) & guarded_columns:
        # The predicate reads a column its own group guards: the negative
        # facet row carries the public value, so inline evaluation would
        # diverge from the oracle.
        return "store"
    tier = "direct"
    for atom in sym.iter_atoms(pred):
        atom_tier = _atom_tier(atom)
        if atom_tier is None:
            return "store"
        if atom_tier == "indexable":
            tier = "indexable"
    return tier


def _compute_profile(model: type) -> PushdownProfile:
    meta = model._meta
    if not meta.policy_groups:
        return PushdownProfile(
            eligible=True, narrow=True, opaque=False, tier="none"
        )
    try:
        from repro.analysis.classify import classify_policy
        from repro.analysis.facts import facts_for_model

        facts = facts_for_model(model)
        records = [classify_policy(group, facts) for group in facts.groups]
    except Exception:
        # Classification itself failing (lost source, exotic bodies) is the
        # opaque case: the Python evaluator stays the oracle.
        return PushdownProfile(
            eligible=False, narrow=False, opaque=True, tier="opaque"
        )
    shapes = {record["group"]: record["shape"] for record in records}
    opaque = any(record["shape"] == "opaque" for record in records)
    eligible = not opaque and len(records) == len(meta.policy_groups)
    narrow = eligible and all(
        record["reads"] != "TOP" and not record["cross_record"]
        for record in records
    ) and not any(_has_orm_query(group.node) for group in facts.groups)
    tier = "store" if eligible else "opaque"
    predicate: Optional[sym.Pred] = None
    if eligible and len(facts.groups) == 1:
        # Inline rendering covers exactly one policy group: a record's
        # facet rows split on that group's single branch, so visibility is
        # one two-way decision the WHERE clause can encode.
        group = facts.groups[0]
        guarded = frozenset(
            meta.fields[name].column_name
            for name in group.fields
            if name in meta.fields
        )
        try:
            compiled = sym.compile_policy(group, facts)
            candidate = _predicate_tier(compiled, guarded)
        except Exception:
            candidate = "store"
        else:
            if candidate in ("direct", "indexable"):
                predicate = compiled
        tier = candidate
    return PushdownProfile(
        eligible=eligible, narrow=narrow, opaque=opaque or not eligible,
        shapes=shapes, tier=tier, predicate=predicate,
    )


def profile_for(model: type) -> PushdownProfile:
    """The (cached) pushdown profile of a model class."""
    meta = model._meta
    try:
        return meta._pushdown_profile
    except AttributeError:
        meta._pushdown_profile = _compute_profile(model)
    return meta._pushdown_profile


class LabelAssignmentStore:
    """Maintains :data:`STORE_TABLE` write-through and tracks its validity.

    One instance per FORM, subscribed (weakly) to the database's
    invalidation bus.  ``ensure()`` is the only populater: it snapshots the
    validity stamps *before* reading, resolves every distinct non-empty
    jvars encoding through the Python resolver, and swaps the viewer's
    slice of the store atomically with ``replace_rows`` -- so a write
    racing the population can only make the recorded stamps stale, never
    leave a stale store looking valid.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        #: (table, viewer_key) -> (narrow, epoch, schema_gen, mark, ok)
        self._valid: Dict[Tuple[str, Hashable], Tuple[bool, int, int, int, bool]] = {}
        #: bumped on every non-store write (the broad invalidation mark)
        self._any_write = 0
        self._count_lock = threading.Lock()
        self._local = threading.local()
        self._subscription = None

    # -- bus wiring -----------------------------------------------------------------

    def bind(self, bus: InvalidationBus) -> None:
        self._subscription = subscribe_weak(
            bus, self, LabelAssignmentStore._on_write
        )

    def _on_write(self, table: str) -> None:
        # The store's own repopulation writes must not invalidate the store.
        if table == STORE_TABLE:
            return
        with self._count_lock:
            self._any_write += 1

    # -- re-entrancy ------------------------------------------------------------------

    @property
    def populating(self) -> bool:
        """Whether *this thread* is inside a population resolution cycle.

        Policies evaluated during population may issue queries of their
        own; those nested queries must take the Python path (the store
        being filled is not yet trustworthy, and recursing into ensure()
        could loop).
        """
        return getattr(self._local, "active", False)

    # -- validity ---------------------------------------------------------------------

    def _entry_current(
        self, bus: InvalidationBus, table: str,
        entry: Tuple[bool, int, int, int, bool],
    ) -> bool:
        narrow, epoch, schema, mark, _ok = entry
        if epoch != policy_epoch() or schema != bus.schema_generation:
            return False
        current = bus.write_generation(table) if narrow else self._any_write
        return mark == current

    def predicts(self, model: type, viewer_key: Hashable) -> bool:
        """Whether planning (``explain``) should assume the store serves
        this (table, viewer) -- without populating it.

        Optimistic for never-attempted pairs (profiles were already
        checked); pessimistic after a recorded population failure, which
        only unknown (non-model) labels cause and which writes rarely cure.
        """
        entry = self._valid.get((model._meta.table_name, viewer_key))
        return True if entry is None else entry[4]

    # -- population --------------------------------------------------------------------

    def ensure(self, form: Any, model: type, viewer: Any, viewer_key: Hashable) -> bool:
        """Make the store current for ``(model's table, viewer)``.

        Returns ``True`` when the store can serve the pruning predicate;
        ``False`` when population failed (some stored label does not follow
        the model convention) and the caller must fall back.
        """
        meta = model._meta
        table = meta.table_name
        bus = form.database.invalidation
        with self._lock:
            entry = self._valid.get((table, viewer_key))
            if entry is not None and self._entry_current(bus, table, entry):
                return entry[4]
            if not form.database.has_table(STORE_TABLE):
                form.database.create_table(_store_schema())
            # Stamp snapshots come BEFORE the read they guard (the label
            # cache's fill-vs-write pattern): a racing write makes the
            # recorded entry stale, forcing repopulation on the next query.
            epoch = policy_epoch()
            schema = bus.schema_generation
            narrow_mark = bus.write_generation(table)
            broad_mark = self._any_write
            self._local.active = True
            try:
                outcome = self._visible_jvars(form, meta, viewer)
            finally:
                self._local.active = False
            profile = profile_for(model)
            if outcome is None:
                ok, narrow = False, profile.narrow
            else:
                visible, only_own = outcome
                ok = True
                narrow = profile.narrow and only_own
                key_text = _viewer_key_text(viewer_key)
                where = and_all(
                    [eq("table_name", table), eq("viewer_key", key_text)]
                )
                rows = [
                    {"table_name": table, "viewer_key": key_text, "jvars": encoded}
                    for encoded in visible
                ]
                form.database.replace_rows(STORE_TABLE, where, rows)
                obs.add("pushdown.store.refresh")
            mark = narrow_mark if narrow else broad_mark
            self._valid[(table, viewer_key)] = (narrow, epoch, schema, mark, ok)
            return ok

    def _visible_jvars(
        self, form: Any, meta: Any, viewer: Any
    ) -> Optional[Tuple[List[str], bool]]:
        """Resolve every distinct non-empty jvars encoding of a table.

        Returns ``(visible encodings, only own-table labels seen)``, or
        ``None`` when an encoding mentions a label the store cannot keep
        coherent (population failure -> Python fallback).  Resolution goes
        through the exact oracle pipeline (:func:`_resolve_label`), memoised
        per label for the scan.
        """
        from repro.form.manager import _resolve_label

        query = (
            Query(table=meta.table_name)
            .select("jvars")
            .filter(ne("jvars", ""))
            .distinct_rows()
        )
        rows = form.database.execute(query)
        prefix = f"{meta.table_name}."
        memo: Dict[str, bool] = {}
        visible: List[str] = []
        only_own = True
        for row in rows:
            encoded = row.get("jvars")
            keep = True
            for name, polarity in parse_jvars(encoded):
                if not name.startswith(prefix):
                    only_own = False
                outcome = memo.get(name)
                if outcome is None:
                    if not _is_model_label(name):
                        return None
                    outcome = bool(_resolve_label(form, name, viewer))
                    memo[name] = outcome
                if outcome != polarity:
                    keep = False
                    break
            if keep:
                visible.append(encoded)
        return visible, only_own

    # -- lifecycle ---------------------------------------------------------------------

    def reset(self) -> None:
        """Forget all validity stamps (``FORM.clear()``)."""
        with self._lock:
            self._valid.clear()


# -- inline predicate rendering (direct / indexable tiers) -----------------------


class _Demote(Exception):
    """Raised during binding when inline rendering must fall back to the
    label store for this (model, viewer) -- never past it to Python."""


def _viewer_value(source: sym.ViewerAttr, viewer: Any) -> Any:
    """Resolve a ``viewer.a.b`` chain against the live viewer object."""
    value = viewer
    for index, attr in enumerate(source.path):
        last = index == len(source.path) - 1
        try:
            if last and source.has_default:
                value = getattr(value, attr, source.default)
            else:
                value = getattr(value, attr)
        except AttributeError:
            # The oracle would raise here too; the store tier reproduces
            # that (population evaluates the policy in Python).
            raise _Demote(f"viewer has no attribute {attr!r}")
    return value


def _bind_value(source: sym.Source, viewer: Any) -> Any:
    if isinstance(source, sym.ConstVal):
        return source.value
    if isinstance(source, sym.ViewerAttr):
        return _viewer_value(source, viewer)
    if isinstance(source, sym.ViewerSelf):
        return viewer
    raise _Demote(f"unbindable source {type(source).__name__}")


def _bound_literal(column: sym.OwnColumn, value: Any) -> Any:
    """Validate a bound value against the column's kind; demote on doubt.

    Values bind *raw* (no ``to_db`` coercion): Python ``==`` inside the
    oracle compares the unconverted viewer value, so coercing here would
    make e.g. ``5 == "5"`` true in SQL but false in Python.  For the same
    reason the value's type must match the column's kind -- SQLite applies
    column affinity to comparison operands (``owner_id IS '5'`` matches
    ``5``), which Python equality never does.  Model instances demote:
    their equality semantics live in ``JModel.__eq__``, not in the stored
    foreign-key integer.
    """
    import datetime

    from repro.form.model import JModel

    if isinstance(value, JModel):
        raise _Demote("model-instance operand binds through JModel.__eq__")
    if value is None:
        return None
    kind = column.kind
    if kind == "text":
        ok = isinstance(value, str)
    elif kind in ("int", "float"):
        ok = isinstance(value, (int, float))
    elif kind == "bool":
        ok = isinstance(value, (bool, int))
    elif kind == "datetime":
        ok = isinstance(value, datetime.datetime)
    else:
        ok = False
    if not ok:
        raise _Demote(f"value {value!r} does not match column kind {kind!r}")
    return value


_PY_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
    "not-in": lambda a, b: a not in b,
    "prefix": lambda a, b: a.startswith(b),
}

_RANGE_SQL = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}


def _fold_viewer_atom(atom: sym.Atom, viewer: Any) -> bool:
    """Evaluate an atom with no own-column operand to a plain boolean."""
    lhs = _bind_value(atom.lhs, viewer)
    try:
        if atom.op == "is-null":
            return lhs is None
        if atom.op == "not-null":
            return lhs is not None
        if atom.op == "truthy":
            return bool(lhs)
        rhs = _bind_value(atom.rhs, viewer)
        return bool(_PY_OPS[atom.op](lhs, rhs))
    except _Demote:
        raise
    except Exception as error:
        # The oracle would raise evaluating this; let the store tier (same
        # Python evaluation) reproduce the behaviour faithfully.
        raise _Demote(f"viewer-side evaluation failed: {error}")


def _bind_atom(
    atom: sym.Atom, model: type, viewer: Any, colname
) -> "bool | Expression":
    lhs, rhs = atom.lhs, atom.rhs
    if {type(lhs), type(rhs)} == {sym.RowSelf, sym.ViewerSelf}:
        # ``viewer == row``: JModel.__eq__ is type-strict and compares
        # jids; an unsaved viewer (jid None) falls back to object identity,
        # which no fetched record satisfies.
        if type(viewer) is model and viewer.jid is not None:
            return NullSafeEq(
                ColumnRef(colname("jid")), Literal(viewer.jid), atom.op == "ne"
            )
        return atom.op == "ne"
    if not isinstance(lhs, sym.OwnColumn):
        return _fold_viewer_atom(atom, viewer)
    column = ColumnRef(colname(lhs.column))
    if atom.op in ("is-null", "not-null"):
        return IsNull(column, negated=atom.op == "not-null")
    if atom.op == "truthy":
        return NullSafeEq(column, Literal(True))
    if isinstance(rhs, sym.OwnColumn):
        other = ColumnRef(colname(rhs.column))
        if atom.op in ("eq", "ne"):
            return NullSafeEq(column, other, atom.op == "ne")
        if atom.op in _RANGE_SQL and not lhs.nullable and not rhs.nullable:
            return Comparison(_RANGE_SQL[atom.op], column, other)
        raise _Demote(f"column/column op {atom.op!r} not renderable")
    if atom.op in ("in", "not-in"):
        values = _bind_value(rhs, viewer)
        members = [
            NullSafeEq(column, Literal(_bound_literal(lhs, item)))
            for item in values
        ]
        if not members:
            return atom.op == "not-in"
        matched: Expression = members[0]
        for member in members[1:]:
            matched = OrExpr(matched, member)
        return NotExpr(matched) if atom.op == "not-in" else matched
    value = _bound_literal(lhs, _bind_value(rhs, viewer))
    if atom.op in ("eq", "ne"):
        return NullSafeEq(column, Literal(value), atom.op == "ne")
    if atom.op == "prefix":
        if not isinstance(value, str):
            raise _Demote("prefix bound to a non-string value")
        return prefix_range(colname(lhs.column), value)
    if atom.op in _RANGE_SQL:
        if value is None:
            raise _Demote("range bound to None")
        return Comparison(_RANGE_SQL[atom.op], column, Literal(value))
    raise _Demote(f"op {atom.op!r} not renderable")


def _bind_predicate(
    pred: sym.Pred, model: type, viewer: Any, colname
) -> "bool | Expression":
    """Render IR to a two-valued expression, folding viewer-only parts.

    Returns a plain bool when the whole predicate folds.  Raises
    :class:`_Demote` when some part cannot be rendered for this viewer.
    """
    if isinstance(pred, sym.Const):
        return pred.value
    if isinstance(pred, (sym.And, sym.Or)):
        is_and = isinstance(pred, sym.And)
        absorbing = not is_and
        parts: List[Expression] = []
        for item in pred.items:
            bound = _bind_predicate(item, model, viewer, colname)
            if isinstance(bound, bool):
                if bound == absorbing:
                    return absorbing
                continue
            parts.append(bound)
        if not parts:
            return not absorbing
        combined = parts[0]
        for part in parts[1:]:
            combined = AndExpr(combined, part) if is_and else OrExpr(combined, part)
        return combined
    if isinstance(pred, sym.Not):
        bound = _bind_predicate(pred.item, model, viewer, colname)
        if isinstance(bound, bool):
            return not bound
        # Sound because every rendered atom is two-valued (IS-family,
        # IS NULL, or ranges over non-nullable columns).
        return NotExpr(bound)
    if isinstance(pred, sym.Atom):
        return _bind_atom(pred, model, viewer, colname)
    raise _Demote(f"unrenderable node {type(pred).__name__}")


def _inline_conjunct(
    form: Any, model: type, viewer: Any, qualify: bool, probe: bool = True
) -> Optional[Expression]:
    """The direct/indexable-tier conjunct for one model, or ``None`` when a
    runtime condition demotes this (model, viewer) to the store tier.

    Soundness gates checked here, per query:

    * the table's facet rows are all canonical single-group branches of
      this model's one policy group (:meth:`facet_branch_keys`), so the
      positive/negative branch of every record is selected by one
      :class:`~repro.db.expr.FacetBranch` match;
    * the predicate binds against this viewer (attribute chains resolve,
      values convert, viewer-only atoms fold without error).

    ``probe=False`` (``explain``) skips the facet-row gate optimistically
    instead of running its probe statement -- the same stance the store's
    :meth:`LabelAssignmentStore.predicts` takes for never-attempted pairs.

    The conjunct admits: unguarded rows (``jvars = ''``), positive-branch
    rows where the bound predicate holds, and negative-branch rows where
    its (two-valued) negation holds.  The predicate provably reads no
    guarded column, so evaluating it on either facet row of a record gives
    the record's policy outcome.
    """
    meta = model._meta
    table = meta.table_name
    profile = profile_for(model)
    group = meta.policy_groups[0]
    if probe:
        try:
            branch_keys = form.database.facet_branch_keys(table)
        except Exception:
            return None
        if branch_keys is None or not branch_keys <= {group.key}:
            return None  # exotic labels: only the store understands them
    colname = (lambda name: f"{table}.{name}") if qualify else (lambda name: name)
    try:
        bound = _bind_predicate(profile.predicate, model, viewer, colname)
    except _Demote:
        return None
    unguarded = eq(colname("jvars"), "")
    positive = FacetBranch(table, group.key, True, qualify)
    negative = FacetBranch(table, group.key, False, qualify)
    if bound is True:
        return OrExpr(unguarded, positive)
    if bound is False:
        return OrExpr(unguarded, negative)
    return OrExpr(
        unguarded,
        OrExpr(AndExpr(positive, bound), AndExpr(negative, NotExpr(bound))),
    )


# -- the planning entry point ----------------------------------------------------


@dataclass(frozen=True)
class PushdownPlan:
    """What ``pruning_conjuncts`` decided: the per-table predicates plus
    the tier each policied table is served at (``explain()`` reports it)."""

    conjuncts: List[Expression]
    tiers: Dict[str, str]


def pruning_conjuncts(
    form: Any,
    model: type,
    joined_tables: List[str],
    viewer: Any,
    populate: bool = True,
) -> Optional[PushdownPlan]:
    """The per-table pruning predicates of a viewer-context query, or
    ``None`` when the Python path must prune.

    One conjunct per involved table (base plus joins).  Per table, the
    profile's static tier is tried first: direct/indexable render the
    compiled predicate inline (no store round-trip); runtime demotion or a
    ``policy_pushdown_tier_cap`` of ``"store"`` falls back to
    ``jvars = '' OR jvars IN (store slice)``.  ``populate=False`` builds
    the same predicates without touching the store (``explain``); no
    predicate's SQL depends on the store's *contents*, so the reported
    statement string-equals the executed one.
    """
    if not getattr(form, "policy_pushdown_enabled", True):
        return None
    store = getattr(form, "pushdown_store", None)
    if store is None or store.populating:
        return None
    key = viewer_cache_key(viewer)
    if key is None:
        return None
    from repro.form.model import ModelRegistry

    models = [model]
    for table in joined_tables:
        try:
            models.append(ModelRegistry.get(table))
        except LookupError:
            return None
    if not any(m._meta.policy_groups for m in models):
        # Nothing policied anywhere in the query: the existing paths are
        # already optimal (and unpolicied pc-label rows stay on the
        # resolver path, whose semantics they were written against).
        return None
    for m in models:
        profile = profile_for(m)
        if not profile.eligible:
            if profile.opaque:
                obs.add("plan.policy_pushdown.opaque_fallback")
            return None
    qualify = bool(joined_tables)
    cap = getattr(form, "policy_pushdown_tier_cap", None)
    tiers: Dict[str, str] = {}
    inline: Dict[str, Expression] = {}
    for m in models:
        table = m._meta.table_name
        profile = profile_for(m)
        tier = profile.tier
        if tier in ("direct", "indexable") and cap != "store":
            conjunct = _inline_conjunct(form, m, viewer, qualify, probe=populate)
            if conjunct is not None:
                inline[table] = conjunct
                tiers[table] = tier
                continue
        # Unpolicied tables ("none") take the store path too: population
        # walks their stored encodings, so a pc/ad-hoc label on such a
        # table still forces the Python fallback instead of being hidden.
        tiers[table] = "store"
    for m in models:
        if tiers[m._meta.table_name] in ("direct", "indexable"):
            continue
        if populate:
            if not store.ensure(form, m, viewer, key):
                return None
        elif not store.predicts(m, key):
            return None
    key_text = _viewer_key_text(key)
    conjuncts: List[Expression] = []
    for m in models:
        table = m._meta.table_name
        tier = tiers[table]
        if tier in ("direct", "indexable"):
            obs.add(f"plan.policy_pushdown.{tier}")
            conjuncts.append(inline[table])
            continue
        column = f"{table}.jvars" if qualify else "jvars"
        store_slice = (
            Query(table=STORE_TABLE)
            .select("jvars")
            .filter(eq("table_name", table))
            .filter(eq("viewer_key", key_text))
        )
        conjuncts.append(
            OrExpr(eq(column, ""), InSubquery(ColumnRef(column), store_slice))
        )
    return PushdownPlan(conjuncts, tiers)
