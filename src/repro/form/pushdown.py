"""Policy pushdown: compile Early Pruning into the SQL statement itself.

Every policied read used to fetch facet rows and resolve each guarding
label in Python -- O(labels) policy evaluations per request.  This module
materialises policy *outcomes* instead: a label-assignment store table
(:data:`STORE_TABLE`) holds, per ``(model table, viewer)``, every non-empty
``jvars`` encoding whose branches are all consistent with the viewer's
resolved label assignment.  A pruned query then appends one predicate per
involved table::

    (jvars = '' OR jvars IN (SELECT jvars FROM "__jacq_labels__"
                             WHERE table_name = ? AND viewer_key = ?))

and the *database engine* prunes -- one SQL statement for
``filter().fetch()``, ``count()`` and ``aggregate()`` on both backends.

Correctness is by construction, not by re-deriving policies in SQL: the
store is populated by the same :func:`repro.form.manager._resolve_label`
pipeline the Python path uses (the Python path stays both the fallback and
the differential-testing oracle, see ``tests/fuzz/``).  Because label names
embed the record (``Table.jid.group``) and :func:`repro.form.marshal.format_jvars`
canonicalises branch order, a non-empty ``jvars`` string identifies its
label assignment exactly, so membership of the *string* decides visibility
of the *row*.

The decision procedure consumes :mod:`repro.analysis.classify` shapes:

* ``viewer-independent`` / ``equality-on-viewer`` models are eligible;
* any ``opaque`` group keeps the model on the Python path and counts
  ``plan.policy_pushdown.opaque_fallback`` -- no silent third state.

Invalidation (epoch coherence):

* every store entry is stamped with the global policy epoch, the schema
  generation and a write mark taken *before* the population read;
* models whose policies provably read only their own row (shape checks
  pass, inferred read set is not TOP, no cross-record reads, no ORM query
  in the policy body) invalidate *narrowly* on their own table's write
  generation; everything else invalidates on any write (a broad counter
  fed by the invalidation bus);
* out-of-band policy inputs (e.g. the conference phase) must call
  :func:`repro.cache.epoch.bump_policy_epoch` -- the same contract the
  label cache already imposes.

>>> _is_model_label("not a label")
False
>>> _viewer_key_text(("User", 3))
"('User', 3)"
"""

from __future__ import annotations

import ast
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro import obs
from repro.cache.bus import InvalidationBus, subscribe_weak
from repro.cache.epoch import policy_epoch
from repro.cache.label_cache import viewer_cache_key
from repro.db.expr import ColumnRef, Expression, InSubquery, OrExpr, and_all, eq, ne
from repro.db.query import Query
from repro.db.schema import Column, ColumnType, IndexSpec, TableSchema
from repro.form.marshal import parse_jvars

#: The label-assignment store: per (model table, viewer), the jvars
#: encodings visible to that viewer.  The double-underscore name keeps it
#: out of the application namespace, like Django's own meta tables.
STORE_TABLE = "__jacq_labels__"


def _store_schema() -> TableSchema:
    # The composite (table_name, viewer_key) index backs the store-slice
    # subselect every pushed-down statement joins against -- one probe per
    # (model table, viewer) slice instead of two single-column narrowings.
    return TableSchema(
        STORE_TABLE,
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("table_name", ColumnType.TEXT, indexed=True),
            Column("viewer_key", ColumnType.TEXT, indexed=True),
            Column("jvars", ColumnType.TEXT, default=""),
        ),
        indexes=(IndexSpec(("table_name", "viewer_key")),),
    )


def _viewer_key_text(viewer_key: Hashable) -> str:
    """The stored spelling of a viewer identity (stable across requests)."""
    return repr(viewer_key)


def _is_model_label(name: str) -> bool:
    """Whether a label follows the FORM convention and resolves to a
    registered model's policy group.

    Anything else (pc labels pushed by application code, ad-hoc value-facet
    labels) has no write/epoch invalidation hook the store could subscribe
    to, so tables carrying such labels stay on the Python path.
    """
    parts = name.split(".")
    if len(parts) != 3:
        return False
    table, jid_text, group_key = parts
    try:
        int(jid_text)
    except ValueError:
        return False
    from repro.form.model import ModelRegistry

    try:
        model = ModelRegistry.get(table)
    except LookupError:
        return False
    return any(g.key == group_key for g in model._meta.policy_groups)


def _has_orm_query(node: Optional[ast.AST]) -> bool:
    """Whether a policy body mentions ``.objects`` anywhere.

    Read-set inference only flags cross-record reads it can prove; an ORM
    query whose argument is an attribute chain escapes it.  For *narrow*
    invalidation we must be certain the policy reads nothing but its own
    row, so any ``.objects`` mention forces broad invalidation.
    """
    if node is None:
        return True
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "objects"
        for sub in ast.walk(node)
    )


@dataclass(frozen=True)
class PushdownProfile:
    """The per-model decision record of the pushdown planner.

    ``eligible`` -- every policy group is viewer-independent or
    equality-on-viewer (classifier shapes), so the store can serve this
    model.  ``opaque`` -- at least one group is opaque; queries touching the
    model fall back and count ``plan.policy_pushdown.opaque_fallback``.
    ``narrow`` -- outcomes provably depend only on the model's own rows
    (plus epoch-guarded globals): invalidate on the own-table write
    generation instead of every write.
    """

    eligible: bool
    narrow: bool
    opaque: bool
    shapes: Dict[str, str] = field(default_factory=dict)


def _compute_profile(model: type) -> PushdownProfile:
    meta = model._meta
    if not meta.policy_groups:
        return PushdownProfile(eligible=True, narrow=True, opaque=False)
    try:
        from repro.analysis.classify import classify_policy
        from repro.analysis.facts import facts_for_model

        facts = facts_for_model(model)
        records = [classify_policy(group, facts) for group in facts.groups]
    except Exception:
        # Classification itself failing (lost source, exotic bodies) is the
        # opaque case: the Python evaluator stays the oracle.
        return PushdownProfile(eligible=False, narrow=False, opaque=True)
    shapes = {record["group"]: record["shape"] for record in records}
    opaque = any(record["shape"] == "opaque" for record in records)
    eligible = not opaque and len(records) == len(meta.policy_groups)
    narrow = eligible and all(
        record["reads"] != "TOP" and not record["cross_record"]
        for record in records
    ) and not any(_has_orm_query(group.node) for group in facts.groups)
    return PushdownProfile(
        eligible=eligible, narrow=narrow, opaque=opaque or not eligible,
        shapes=shapes,
    )


def profile_for(model: type) -> PushdownProfile:
    """The (cached) pushdown profile of a model class."""
    meta = model._meta
    try:
        return meta._pushdown_profile
    except AttributeError:
        meta._pushdown_profile = _compute_profile(model)
    return meta._pushdown_profile


class LabelAssignmentStore:
    """Maintains :data:`STORE_TABLE` write-through and tracks its validity.

    One instance per FORM, subscribed (weakly) to the database's
    invalidation bus.  ``ensure()`` is the only populater: it snapshots the
    validity stamps *before* reading, resolves every distinct non-empty
    jvars encoding through the Python resolver, and swaps the viewer's
    slice of the store atomically with ``replace_rows`` -- so a write
    racing the population can only make the recorded stamps stale, never
    leave a stale store looking valid.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        #: (table, viewer_key) -> (narrow, epoch, schema_gen, mark, ok)
        self._valid: Dict[Tuple[str, Hashable], Tuple[bool, int, int, int, bool]] = {}
        #: bumped on every non-store write (the broad invalidation mark)
        self._any_write = 0
        self._count_lock = threading.Lock()
        self._local = threading.local()
        self._subscription = None

    # -- bus wiring -----------------------------------------------------------------

    def bind(self, bus: InvalidationBus) -> None:
        self._subscription = subscribe_weak(
            bus, self, LabelAssignmentStore._on_write
        )

    def _on_write(self, table: str) -> None:
        # The store's own repopulation writes must not invalidate the store.
        if table == STORE_TABLE:
            return
        with self._count_lock:
            self._any_write += 1

    # -- re-entrancy ------------------------------------------------------------------

    @property
    def populating(self) -> bool:
        """Whether *this thread* is inside a population resolution cycle.

        Policies evaluated during population may issue queries of their
        own; those nested queries must take the Python path (the store
        being filled is not yet trustworthy, and recursing into ensure()
        could loop).
        """
        return getattr(self._local, "active", False)

    # -- validity ---------------------------------------------------------------------

    def _entry_current(
        self, bus: InvalidationBus, table: str,
        entry: Tuple[bool, int, int, int, bool],
    ) -> bool:
        narrow, epoch, schema, mark, _ok = entry
        if epoch != policy_epoch() or schema != bus.schema_generation:
            return False
        current = bus.write_generation(table) if narrow else self._any_write
        return mark == current

    def predicts(self, model: type, viewer_key: Hashable) -> bool:
        """Whether planning (``explain``) should assume the store serves
        this (table, viewer) -- without populating it.

        Optimistic for never-attempted pairs (profiles were already
        checked); pessimistic after a recorded population failure, which
        only unknown (non-model) labels cause and which writes rarely cure.
        """
        entry = self._valid.get((model._meta.table_name, viewer_key))
        return True if entry is None else entry[4]

    # -- population --------------------------------------------------------------------

    def ensure(self, form: Any, model: type, viewer: Any, viewer_key: Hashable) -> bool:
        """Make the store current for ``(model's table, viewer)``.

        Returns ``True`` when the store can serve the pruning predicate;
        ``False`` when population failed (some stored label does not follow
        the model convention) and the caller must fall back.
        """
        meta = model._meta
        table = meta.table_name
        bus = form.database.invalidation
        with self._lock:
            entry = self._valid.get((table, viewer_key))
            if entry is not None and self._entry_current(bus, table, entry):
                return entry[4]
            if not form.database.has_table(STORE_TABLE):
                form.database.create_table(_store_schema())
            # Stamp snapshots come BEFORE the read they guard (the label
            # cache's fill-vs-write pattern): a racing write makes the
            # recorded entry stale, forcing repopulation on the next query.
            epoch = policy_epoch()
            schema = bus.schema_generation
            narrow_mark = bus.write_generation(table)
            broad_mark = self._any_write
            self._local.active = True
            try:
                outcome = self._visible_jvars(form, meta, viewer)
            finally:
                self._local.active = False
            profile = profile_for(model)
            if outcome is None:
                ok, narrow = False, profile.narrow
            else:
                visible, only_own = outcome
                ok = True
                narrow = profile.narrow and only_own
                key_text = _viewer_key_text(viewer_key)
                where = and_all(
                    [eq("table_name", table), eq("viewer_key", key_text)]
                )
                rows = [
                    {"table_name": table, "viewer_key": key_text, "jvars": encoded}
                    for encoded in visible
                ]
                form.database.replace_rows(STORE_TABLE, where, rows)
                obs.add("pushdown.store.refresh")
            mark = narrow_mark if narrow else broad_mark
            self._valid[(table, viewer_key)] = (narrow, epoch, schema, mark, ok)
            return ok

    def _visible_jvars(
        self, form: Any, meta: Any, viewer: Any
    ) -> Optional[Tuple[List[str], bool]]:
        """Resolve every distinct non-empty jvars encoding of a table.

        Returns ``(visible encodings, only own-table labels seen)``, or
        ``None`` when an encoding mentions a label the store cannot keep
        coherent (population failure -> Python fallback).  Resolution goes
        through the exact oracle pipeline (:func:`_resolve_label`), memoised
        per label for the scan.
        """
        from repro.form.manager import _resolve_label

        query = (
            Query(table=meta.table_name)
            .select("jvars")
            .filter(ne("jvars", ""))
            .distinct_rows()
        )
        rows = form.database.execute(query)
        prefix = f"{meta.table_name}."
        memo: Dict[str, bool] = {}
        visible: List[str] = []
        only_own = True
        for row in rows:
            encoded = row.get("jvars")
            keep = True
            for name, polarity in parse_jvars(encoded):
                if not name.startswith(prefix):
                    only_own = False
                outcome = memo.get(name)
                if outcome is None:
                    if not _is_model_label(name):
                        return None
                    outcome = bool(_resolve_label(form, name, viewer))
                    memo[name] = outcome
                if outcome != polarity:
                    keep = False
                    break
            if keep:
                visible.append(encoded)
        return visible, only_own

    # -- lifecycle ---------------------------------------------------------------------

    def reset(self) -> None:
        """Forget all validity stamps (``FORM.clear()``)."""
        with self._lock:
            self._valid.clear()


def pruning_conjuncts(
    form: Any,
    model: type,
    joined_tables: List[str],
    viewer: Any,
    populate: bool = True,
) -> Optional[List[Expression]]:
    """The per-table pruning predicates of a viewer-context query, or
    ``None`` when the Python path must prune.

    One conjunct per involved table (base plus joins), each
    ``jvars = '' OR jvars IN (store slice)``.  ``populate=False`` builds
    the same predicate without touching the store (``explain``); the
    predicate SQL does not depend on the store's *contents*, so the
    reported statement string-equals the executed one.
    """
    if not getattr(form, "policy_pushdown_enabled", True):
        return None
    store = getattr(form, "pushdown_store", None)
    if store is None or store.populating:
        return None
    key = viewer_cache_key(viewer)
    if key is None:
        return None
    from repro.form.model import ModelRegistry

    models = [model]
    for table in joined_tables:
        try:
            models.append(ModelRegistry.get(table))
        except LookupError:
            return None
    if not any(m._meta.policy_groups for m in models):
        # Nothing policied anywhere in the query: the existing paths are
        # already optimal (and unpolicied pc-label rows stay on the
        # resolver path, whose semantics they were written against).
        return None
    for m in models:
        profile = profile_for(m)
        if not profile.eligible:
            if profile.opaque:
                obs.add("plan.policy_pushdown.opaque_fallback")
            return None
    for m in models:
        if populate:
            if not store.ensure(form, m, viewer, key):
                return None
        elif not store.predicts(m, key):
            return None
    qualify = bool(joined_tables)
    key_text = _viewer_key_text(key)
    conjuncts: List[Expression] = []
    for m in models:
        table = m._meta.table_name
        column = f"{table}.jvars" if qualify else "jvars"
        store_slice = (
            Query(table=STORE_TABLE)
            .select("jvars")
            .filter(eq("table_name", table))
            .filter(eq("viewer_key", key_text))
        )
        conjuncts.append(
            OrExpr(eq(column, ""), InSubquery(ColumnRef(column), store_slice))
        )
    return conjuncts
