"""Model field declarations (the Django-like schema vocabulary)."""

from __future__ import annotations

import datetime
from typing import Any, Optional, TYPE_CHECKING, Type

from repro.db.schema import Column, ColumnType

if TYPE_CHECKING:  # pragma: no cover
    from repro.form.model import JModel


class Field:
    """Base class for model fields.

    The metaclass assigns ``name`` and ``model`` when the model class is
    created.  ``column_name`` is the database column backing the field
    (foreign keys use ``<name>_id``).
    """

    column_type: ColumnType = ColumnType.TEXT

    def __init__(
        self,
        nullable: bool = True,
        default: Any = None,
        indexed: bool = False,
        ordered: bool = False,
    ) -> None:
        self.nullable = nullable
        self.default = default
        self.indexed = indexed
        #: ``ordered=True`` requests an *ordered* secondary index: range
        #: predicates, prefix matches and ORDER BY on this field become
        #: index probes (plus a composite ``(column, jid)`` index for
        #: keyset-style bounded scans over whole faceted records).
        self.ordered = ordered
        self.name: str = ""
        self.model: Optional[type] = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    @property
    def column_name(self) -> str:
        return self.name

    def to_column(self) -> Column:
        """The database column definition for this field."""
        return Column(
            self.column_name,
            self.column_type,
            nullable=self.nullable,
            default=self.default,
            indexed=self.indexed,
            ordered=self.ordered,
        )

    def to_db(self, value: Any) -> Any:
        """Convert a Python value to its database representation."""
        return value

    def from_db(self, value: Any) -> Any:
        """Convert a database value back to its Python representation."""
        return value


class CharField(Field):
    """A bounded text field (``max_length`` is advisory, as in SQLite)."""

    column_type = ColumnType.TEXT

    def __init__(self, max_length: int = 255, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.max_length = max_length

    def to_db(self, value: Any) -> Any:
        if value is None:
            return None
        return str(value)[: self.max_length]


class TextField(Field):
    """Unbounded text."""

    column_type = ColumnType.TEXT

    def to_db(self, value: Any) -> Any:
        return None if value is None else str(value)


class IntegerField(Field):
    column_type = ColumnType.INTEGER

    def to_db(self, value: Any) -> Any:
        return None if value is None else int(value)


class FloatField(Field):
    column_type = ColumnType.REAL

    def to_db(self, value: Any) -> Any:
        return None if value is None else float(value)


class BooleanField(Field):
    column_type = ColumnType.BOOLEAN

    def to_db(self, value: Any) -> Any:
        return None if value is None else bool(value)

    def from_db(self, value: Any) -> Any:
        return None if value is None else bool(value)


class DateTimeField(Field):
    column_type = ColumnType.DATETIME

    def to_db(self, value: Any) -> Any:
        if value is None or isinstance(value, datetime.datetime):
            return value
        if isinstance(value, str):
            return datetime.datetime.fromisoformat(value)
        raise TypeError(f"cannot store {value!r} in a DateTimeField")


class ForeignKey(Field):
    """A reference to another model.

    The backing column is ``<name>_id`` and stores the *jid* of the target
    record (not its primary key), as required for faceted joins (Section
    3.1.1).  Attribute access resolves the reference through the target's
    manager, so the result respects the current viewer context.
    """

    column_type = ColumnType.INTEGER

    def __init__(self, to: Any, **kwargs: Any) -> None:
        kwargs.setdefault("indexed", True)
        super().__init__(**kwargs)
        self._to = to

    @property
    def column_name(self) -> str:
        return f"{self.name}_id"

    def target_model(self) -> Type["JModel"]:
        """Resolve the referenced model (supports string forward references)."""
        if isinstance(self._to, str):
            from repro.form.model import ModelRegistry

            return ModelRegistry.get(self._to)
        return self._to

    def to_db(self, value: Any) -> Any:
        from repro.form.model import JModel

        if value is None:
            return None
        if isinstance(value, JModel):
            return value.jid
        return int(value)
