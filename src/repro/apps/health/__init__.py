"""The HIPAA-inspired health record manager case study (Section 6.1)."""

from repro.apps.health.models import (
    HEALTH_MODELS,
    HealthRecord,
    HealthUser,
    TreatmentRelationship,
    Waiver,
)
from repro.apps.health.app import build_health_app, seed_health, setup_health

__all__ = [
    "HealthUser",
    "HealthRecord",
    "TreatmentRelationship",
    "Waiver",
    "HEALTH_MODELS",
    "setup_health",
    "seed_health",
    "build_health_app",
]
