"""Jacqueline models for the health record manager.

The policies capture a representative fragment of the HIPAA privacy rule the
paper describes: an individual may always see their own record; the treating
provider may see records of their patients; an insurance company may see a
record only when the patient has signed a permission waiver.  Visibility thus
depends on roles *and* on stateful information (the waiver table), which is
exactly the combination the paper highlights.
"""

from __future__ import annotations

from repro.form import (
    BooleanField,
    CharField,
    DateTimeField,
    ForeignKey,
    JModel,
    TextField,
    jacqueline,
    label_for,
)


class HealthUser(JModel):
    """A person in the system: patient, doctor or insurer."""

    name = CharField(max_length=128)
    role = CharField(max_length=16, default="patient")  # patient | doctor | insurer
    email = CharField(max_length=128)

    @staticmethod
    def jacqueline_get_public_email(user):
        return "[hidden]"

    @staticmethod
    @label_for("email")
    @jacqueline
    def jacqueline_restrict_email(user, ctxt):
        """Contact details are visible to the person themselves and to their
        treating doctors."""
        if ctxt is None:
            return False
        if ctxt == user:
            return True
        return (
            getattr(ctxt, "role", None) == "doctor"
            and TreatmentRelationship.objects.get(patient=user, doctor=ctxt) is not None
        )


class TreatmentRelationship(JModel):
    """Doctor X treats patient Y."""

    patient = ForeignKey(HealthUser)
    doctor = ForeignKey(HealthUser)


class Waiver(JModel):
    """A patient's permission waiver allowing an insurer to read their records."""

    patient = ForeignKey(HealthUser)
    insurer = ForeignKey(HealthUser)


class HealthRecord(JModel):
    """One entry in a patient's medical history."""

    patient = ForeignKey(HealthUser)
    doctor = ForeignKey(HealthUser)
    diagnosis = CharField(max_length=256)
    notes = TextField()
    date = DateTimeField()

    @staticmethod
    def jacqueline_get_public_diagnosis(record):
        return "[protected health information]"

    @staticmethod
    def jacqueline_get_public_notes(record):
        return ""

    @staticmethod
    @label_for("diagnosis", "notes")
    @jacqueline
    def jacqueline_restrict_record(record, ctxt):
        """HIPAA fragment: the patient, the treating doctor, or an insurer
        holding a waiver from the patient."""
        if ctxt is None:
            return False
        if record.patient_id is not None and ctxt.jid == record.patient_id:
            return True
        role = getattr(ctxt, "role", None)
        if role == "doctor":
            return (
                TreatmentRelationship.objects.get(patient_id=record.patient_id, doctor=ctxt)
                is not None
            )
        if role == "insurer":
            return Waiver.objects.get(patient_id=record.patient_id, insurer=ctxt) is not None
        return False


HEALTH_MODELS = [HealthUser, TreatmentRelationship, Waiver, HealthRecord]
