"""Views, wiring and workload seeding for the health record manager."""

from __future__ import annotations

import datetime
from typing import Dict, Optional

from repro.db.engine import Database
from repro.form import FORM, use_form
from repro.web import JacquelineApp, Response

from repro.apps.health.models import (
    HEALTH_MODELS,
    HealthRecord,
    HealthUser,
    TreatmentRelationship,
    Waiver,
)

RECORD_LIST_TEMPLATE = """
<h1>Medical records</h1>
<ul>
{% for record in records %}
  <li>{{ record.date }} — patient {{ record.patient.name }}: {{ record.diagnosis }}</li>
{% endfor %}
</ul>
"""

USER_LIST_TEMPLATE = """
<h1>Directory</h1>
<ul>
{% for person in people %}
  <li>{{ person.name }} ({{ person.role }}) — {{ person.email }}</li>
{% endfor %}
</ul>
"""

RECORD_DETAIL_TEMPLATE = """
<h1>Record {{ record.jid }}</h1>
<p>Patient: {{ record.patient.name }}</p>
<p>Diagnosis: {{ record.diagnosis }}</p>
<p>Notes: {{ record.notes }}</p>
"""


def setup_health(database: Optional[Database] = None, cache_config=None) -> FORM:
    """Create a FORM with the health schema registered.

    ``cache_config`` is forwarded to the FORM; pass
    ``CacheConfig.disabled()`` for paper-faithful uncached benchmarks.
    """
    form = FORM(database or Database(), cache_config=cache_config)
    form.register_all(HEALTH_MODELS)
    return form


def seed_health(
    form: FORM,
    patients: int = 8,
    doctors: int = 4,
    insurers: int = 2,
    records_per_patient: int = 1,
) -> Dict[str, list]:
    """Populate the health record manager for the Figure 9(b) stress test."""
    created: Dict[str, list] = {"patients": [], "doctors": [], "insurers": [], "records": []}
    with use_form(form):
        for index in range(doctors):
            created["doctors"].append(
                HealthUser.objects.create(
                    name=f"doctor{index}", role="doctor", email=f"doc{index}@hospital.org"
                )
            )
        for index in range(insurers):
            created["insurers"].append(
                HealthUser.objects.create(
                    name=f"insurer{index}", role="insurer", email=f"claims{index}@insurer.com"
                )
            )
        for index in range(patients):
            patient = HealthUser.objects.create(
                name=f"patient{index}", role="patient", email=f"patient{index}@mail.org"
            )
            created["patients"].append(patient)
            doctor = created["doctors"][index % doctors] if doctors else None
            if doctor is not None:
                TreatmentRelationship.objects.create(patient=patient, doctor=doctor)
            if insurers and index % 2 == 0:
                Waiver.objects.create(
                    patient=patient, insurer=created["insurers"][index % insurers]
                )
            for record_index in range(records_per_patient):
                created["records"].append(
                    HealthRecord.objects.create(
                        patient=patient,
                        doctor=doctor,
                        diagnosis=f"Diagnosis {record_index} for patient {index}",
                        notes=f"Notes {record_index}",
                        date=datetime.datetime(2026, 1, 1) + datetime.timedelta(days=index),
                    )
                )
    return created


def build_health_app(form: FORM, early_pruning: bool = True) -> JacquelineApp:
    """Assemble the health record application."""
    app = JacquelineApp(form, name="health", early_pruning=early_pruning)
    app.add_template("records", RECORD_LIST_TEMPLATE)
    app.add_template("record", RECORD_DETAIL_TEMPLATE)
    app.add_template("people", USER_LIST_TEMPLATE)

    def load_user(user_id):
        with use_form(form):
            return HealthUser.objects.get(jid=user_id)

    app.auth.set_user_loader(load_user)

    @app.route("/login", methods=("POST",))
    def login(request):
        user = HealthUser.objects.get(name=request.form("username"))
        if user is None:
            return Response.forbidden("unknown user")
        app.auth.force_login(request.session, user.jid, request.form("username"))
        return Response.redirect("/records")

    @app.route("/records", methods=("GET",), template="records")
    def all_records(request):
        """The stress-test page of Figure 9(b): every record in the system."""
        return {"records": HealthRecord.objects.all().fetch()}

    @app.route("/record/<jid>", methods=("GET",), template="record")
    def record_detail(request):
        return {"record": HealthRecord.objects.get(jid=int(request.param("jid")))}

    @app.route("/people", methods=("GET",), template="people")
    def directory(request):
        return {"people": HealthUser.objects.all().fetch()}

    @app.route("/record", methods=("POST",))
    def add_record(request):
        if request.user is None or getattr(request.user, "role", "") != "doctor":
            return Response.forbidden("doctors only")
        HealthRecord.objects.create(
            patient_id=int(request.form("patient")),
            doctor=request.user,
            diagnosis=request.form("diagnosis", ""),
            notes=request.form("notes", ""),
            date=datetime.datetime(2026, 6, 14),
        )
        return Response.redirect("/records")

    @app.route("/waiver", methods=("POST",))
    def add_waiver(request):
        if request.user is None or getattr(request.user, "role", "") != "patient":
            return Response.forbidden("patients only")
        Waiver.objects.create(patient=request.user, insurer_id=int(request.form("insurer")))
        return Response.redirect("/records")

    return app
