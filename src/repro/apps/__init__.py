"""Case-study applications from the paper's evaluation (Section 6).

* :mod:`repro.apps.calendar` -- the Section 2 introductory example (events
  with guest-list policies);
* :mod:`repro.apps.conf` -- the conference management system, implemented
  both with Jacqueline (policies in the schema) and in the Django style
  (hand-coded policy checks in views);
* :mod:`repro.apps.health` -- the HIPAA-inspired health record manager;
* :mod:`repro.apps.course` -- the course manager whose all-courses page
  drives the Early Pruning experiment (Table 5).
"""
