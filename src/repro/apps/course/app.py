"""Views, wiring and workload seeding for the course manager.

The all-courses page resolves the instructor of every course; each of those
lookups is guarded by a policy that itself queries the enrollment table.
Without Early Pruning the framework must carry every facet combination
through the page, which blows up combinatorially -- reproducing Table 5.
"""

from __future__ import annotations

import datetime
from typing import Dict, Optional

from repro.db.engine import Database
from repro.form import FORM, use_form
from repro.web import JacquelineApp, Response

from repro.apps.course.models import (
    COURSE_MODELS,
    Assignment,
    Course,
    CourseUser,
    Enrollment,
    Submission,
)

COURSE_LIST_TEMPLATE = """
<h1>All courses</h1>
<ul>
{% for entry in courses %}
  <li>{{ entry.course.title }} — instructor:
      {% if entry.instructor %}{{ entry.instructor.name }}{% else %}[not listed]{% endif %}</li>
{% endfor %}
</ul>
"""

COURSE_DETAIL_TEMPLATE = """
<h1>{{ course.title }}</h1>
<p>Instructor: {% if course.instructor %}{{ course.instructor.name }}{% else %}[not listed]{% endif %}</p>
<h2>Assignments</h2>
<ul>
{% for assignment in assignments %}
  <li>{{ assignment.title }} (due {{ assignment.due }})</li>
{% endfor %}
</ul>
"""

SUBMISSION_LIST_TEMPLATE = """
<h1>Submissions for {{ assignment.title }}</h1>
<ul>
{% for submission in submissions %}
  <li>{{ submission.student.name }}: {{ submission.contents }} (grade {{ submission.grade }})</li>
{% endfor %}
</ul>
"""


def setup_courses(database: Optional[Database] = None, cache_config=None) -> FORM:
    """Create a FORM with the course schema registered.

    ``cache_config`` is forwarded to the FORM; pass
    ``CacheConfig.disabled()`` for paper-faithful uncached benchmarks.
    """
    form = FORM(database or Database(), cache_config=cache_config)
    form.register_all(COURSE_MODELS)
    return form


def seed_courses(
    form: FORM,
    courses: int = 8,
    students_per_course: int = 2,
    assignments_per_course: int = 1,
) -> Dict[str, list]:
    """Populate the course manager for the Figure 9(c) / Table 5 stress tests."""
    created: Dict[str, list] = {
        "instructors": [],
        "students": [],
        "courses": [],
        "assignments": [],
        "submissions": [],
    }
    with use_form(form):
        for index in range(courses):
            instructor = CourseUser.objects.create(name=f"instructor{index}", role="instructor")
            created["instructors"].append(instructor)
            course = Course.objects.create(title=f"Course {index}", instructor=instructor)
            created["courses"].append(course)
            for student_index in range(students_per_course):
                student = CourseUser.objects.create(
                    name=f"student{index}_{student_index}", role="student"
                )
                created["students"].append(student)
                Enrollment.objects.create(course=course, student=student)
            for assignment_index in range(assignments_per_course):
                assignment = Assignment.objects.create(
                    course=course,
                    title=f"Assignment {assignment_index} of course {index}",
                    due=datetime.datetime(2026, 7, 1) + datetime.timedelta(days=assignment_index),
                )
                created["assignments"].append(assignment)
                if created["students"]:
                    submitter = created["students"][-1]
                    created["submissions"].append(
                        Submission.objects.create(
                            assignment=assignment,
                            student=submitter,
                            contents=f"Answer by {submitter.name}",
                            grade=90,
                        )
                    )
    return created


def build_course_app(form: FORM, early_pruning: bool = True) -> JacquelineApp:
    """Assemble the course manager application.

    ``early_pruning=False`` reproduces the "without pruning" column of
    Table 5: the all-courses page then builds the full faceted result.
    """
    app = JacquelineApp(form, name="courses", early_pruning=early_pruning)
    app.add_template("courses", COURSE_LIST_TEMPLATE)
    app.add_template("course", COURSE_DETAIL_TEMPLATE)
    app.add_template("submissions", SUBMISSION_LIST_TEMPLATE)

    def load_user(user_id):
        with use_form(form):
            return CourseUser.objects.get(jid=user_id)

    app.auth.set_user_loader(load_user)

    @app.route("/login", methods=("POST",))
    def login(request):
        user = CourseUser.objects.get(name=request.form("username"))
        if user is None:
            return Response.forbidden("unknown user")
        app.auth.force_login(request.session, user.jid, request.form("username"))
        return Response.redirect("/courses")

    @app.route("/courses", methods=("GET",), template="courses")
    def all_courses(request):
        """The Table 5 stress page: every course plus its instructor.

        With Early Pruning the query returns a plain list for the session
        user.  Without it the query result is faceted and the instructor of
        every course must be resolved in every facet, which is the blowup
        Table 5 documents.
        """
        from repro.core.facets import facet_map

        def expand(course_list):
            return [
                {"course": course, "instructor": course.instructor} for course in course_list
            ]

        courses = Course.objects.all().fetch()
        if isinstance(courses, list):
            return {"courses": expand(courses)}
        return {"courses": facet_map(expand, courses)}

    @app.route("/course/<jid>", methods=("GET",), template="course")
    def course_detail(request):
        jid = int(request.param("jid"))
        return {
            "course": Course.objects.get(jid=jid),
            "assignments": Assignment.objects.filter(course_id=jid).fetch(),
        }

    @app.route("/assignment/<jid>/submissions", methods=("GET",), template="submissions")
    def assignment_submissions(request):
        jid = int(request.param("jid"))
        return {
            "assignment": Assignment.objects.get(jid=jid),
            "submissions": Submission.objects.filter(assignment_id=jid).fetch(),
        }

    @app.route("/submit", methods=("POST",))
    def submit(request):
        if request.user is None:
            return Response.forbidden("login required")
        Submission.objects.create(
            assignment_id=int(request.form("assignment")),
            student=request.user,
            contents=request.form("contents", ""),
        )
        return Response.redirect("/courses")

    @app.route("/grade", methods=("POST",))
    def grade(request):
        if request.user is None or getattr(request.user, "role", "") != "instructor":
            return Response.forbidden("instructors only")
        submission = Submission.objects.get(jid=int(request.form("submission")))
        if submission is None:
            return Response.not_found("no such submission")
        submission.grade = int(request.form("grade", 0))
        submission.save()
        assignment = Assignment.objects.get(jid=submission.assignment_id)
        if assignment is not None:
            assignment.graded = True
            assignment.save()
        return Response.redirect("/courses")

    return app
