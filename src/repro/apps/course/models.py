"""Jacqueline models for the course manager.

Policies depend on the viewer's role and on stateful information such as
whether an assignment has been submitted or graded:

* a course's **instructor** is visible to people associated with the course
  (the instructor and enrolled students) -- resolving it requires a lookup
  per course, which is what makes the all-courses page explode without Early
  Pruning (Table 5);
* a submission's **contents** are visible to the submitting student and the
  course's instructor;
* a submission's **grade** is additionally withheld from the student until
  the instructor marks it graded.
"""

from __future__ import annotations

from repro.form import (
    BooleanField,
    CharField,
    DateTimeField,
    ForeignKey,
    IntegerField,
    JModel,
    TextField,
    jacqueline,
    label_for,
)


class CourseUser(JModel):
    """A user of the course manager: instructor or student."""

    name = CharField(max_length=128)
    role = CharField(max_length=16, default="student")  # student | instructor


class Course(JModel):
    """A course taught by an instructor."""

    title = CharField(max_length=256)
    instructor = ForeignKey(CourseUser)

    @staticmethod
    def jacqueline_get_public_instructor(course):
        return None

    @staticmethod
    @label_for("instructor")
    @jacqueline
    def jacqueline_restrict_instructor(course, ctxt):
        """Course staffing is visible to people associated with the course."""
        if ctxt is None:
            return False
        if course.instructor_id is not None and ctxt.jid == course.instructor_id:
            return True
        return Enrollment.objects.get(course=course, student=ctxt) is not None


class Enrollment(JModel):
    """Student membership in a course."""

    course = ForeignKey(Course)
    student = ForeignKey(CourseUser)


class Assignment(JModel):
    """An assignment within a course."""

    course = ForeignKey(Course)
    title = CharField(max_length=256)
    due = DateTimeField()
    graded = BooleanField(default=False)


class Submission(JModel):
    """A student's submission for an assignment."""

    assignment = ForeignKey(Assignment)
    student = ForeignKey(CourseUser)
    contents = TextField()
    grade = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_contents(submission):
        return "[not visible]"

    @staticmethod
    @label_for("contents")
    @jacqueline
    def jacqueline_restrict_contents(submission, ctxt):
        """Submissions are visible to their author and the course instructor."""
        if ctxt is None:
            return False
        if submission.student_id is not None and ctxt.jid == submission.student_id:
            return True
        assignment = Assignment.objects.get(jid=submission.assignment_id)
        if assignment is None:
            return False
        course = Course.objects.get(jid=assignment.course_id)
        return course is not None and course.instructor_id == ctxt.jid

    @staticmethod
    def jacqueline_get_public_grade(submission):
        return 0

    @staticmethod
    @label_for("grade")
    @jacqueline
    def jacqueline_restrict_grade(submission, ctxt):
        """Grades are visible to the instructor always, and to the student
        once the assignment has been graded."""
        if ctxt is None:
            return False
        assignment = Assignment.objects.get(jid=submission.assignment_id)
        if assignment is None:
            return False
        course = Course.objects.get(jid=assignment.course_id)
        if course is not None and course.instructor_id == ctxt.jid:
            return True
        if submission.student_id is not None and ctxt.jid == submission.student_id:
            return bool(assignment.graded)
        return False


COURSE_MODELS = [CourseUser, Course, Enrollment, Assignment, Submission]
