"""The course manager case study (Section 6.1, Table 5)."""

from repro.apps.course.models import (
    COURSE_MODELS,
    Assignment,
    Course,
    CourseUser,
    Enrollment,
    Submission,
)
from repro.apps.course.app import build_course_app, seed_courses, setup_courses

__all__ = [
    "CourseUser",
    "Course",
    "Enrollment",
    "Assignment",
    "Submission",
    "COURSE_MODELS",
    "setup_courses",
    "seed_courses",
    "build_course_app",
]
