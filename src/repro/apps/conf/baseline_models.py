"""Django-style models for the conference system (hand-coded policies).

The schema itself carries no enforcement: each model exposes ``policy_*``
methods (Figure 8) that *views must remember to call* before displaying a
field.  Nothing stops a view from forgetting -- that is precisely the class
of bug the policy-agnostic approach removes.
"""

from __future__ import annotations

from repro.baseline import (
    BooleanField,
    CharField,
    ForeignKey,
    IntegerField,
    Model,
    TextField,
)
from repro.baseline.model import DoesNotExist


class BaselineConfPhase:
    """The conference phase for the baseline implementation."""

    SUBMISSION = "submission"
    REVIEW = "review"
    FINAL = "final"

    current = SUBMISSION

    @classmethod
    def set(cls, phase: str) -> None:
        if phase not in (cls.SUBMISSION, cls.REVIEW, cls.FINAL):
            raise ValueError(f"unknown conference phase {phase!r}")
        cls.current = phase

    @classmethod
    def reset(cls) -> None:
        cls.current = cls.SUBMISSION


def _is_committee(user) -> bool:
    return user is not None and getattr(user, "level", None) in ("pc", "chair")


def _is_chair(user) -> bool:
    return user is not None and getattr(user, "level", None) == "chair"


class DjangoConfUser(Model):
    """A conference user (baseline)."""

    name = CharField(max_length=128)
    affiliation = CharField(max_length=256)
    email = CharField(max_length=128)
    level = CharField(max_length=16, default="normal")

    def policy_email(self, ctxt) -> bool:
        """Hand-coded check: emails visible to the user and the chair."""
        return (ctxt is not None and ctxt == self) or _is_chair(ctxt)


class DjangoPaper(Model):
    """A submitted paper (baseline)."""

    title = CharField(max_length=256)
    author = ForeignKey(DjangoConfUser)
    accepted = BooleanField(default=False)

    def policy_author(self, ctxt) -> bool:
        """Hand-coded version of the Figure 7/8 author policy."""
        if BaselineConfPhase.current == BaselineConfPhase.FINAL:
            return True
        try:
            DjangoPaperPCConflict.objects.get(paper_id=self.pk, pc_id=getattr(ctxt, "pk", None))
            return False
        except DoesNotExist:
            pass
        return (
            ctxt is not None and self.author_id == ctxt.pk
        ) or _is_committee(ctxt)

    def policy_accepted(self, ctxt) -> bool:
        return BaselineConfPhase.current == BaselineConfPhase.FINAL or _is_chair(ctxt)


class DjangoPaperPCConflict(Model):
    paper = ForeignKey(DjangoPaper)
    pc = ForeignKey(DjangoConfUser)


class DjangoReviewAssignment(Model):
    paper = ForeignKey(DjangoPaper)
    pc = ForeignKey(DjangoConfUser)


class DjangoReview(Model):
    paper = ForeignKey(DjangoPaper)
    reviewer = ForeignKey(DjangoConfUser)
    contents = TextField()
    score = IntegerField(default=0)

    def policy_reviewer(self, ctxt) -> bool:
        return _is_committee(ctxt)

    def policy_contents(self, ctxt) -> bool:
        if _is_committee(ctxt):
            return True
        if BaselineConfPhase.current != BaselineConfPhase.FINAL:
            return False
        try:
            paper = DjangoPaper.objects.get(pk=self.paper_id)
        except DoesNotExist:
            return False
        return ctxt is not None and paper.author_id == ctxt.pk


BASELINE_CONF_MODELS = [
    DjangoConfUser,
    DjangoPaper,
    DjangoPaperPCConflict,
    DjangoReviewAssignment,
    DjangoReview,
]
