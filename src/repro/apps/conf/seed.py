"""Workload seeding for the conference management system stress tests.

The paper's stress tests scale the number of papers or users from 8 to 1024
(Figure 9a, Tables 3 and 4).  These helpers populate either stack with a
deterministic synthetic workload: one chair, a block of PC members, authors,
one paper per author (unless overridden), one review and one PC conflict per
paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.form import FORM, use_form
from repro.baseline import BaselineDB, use_baseline_db

from repro.apps.conf.models import (
    ConfUser,
    Paper,
    PaperPCConflict,
    Review,
    ReviewAssignment,
)
from repro.apps.conf.baseline_models import (
    DjangoConfUser,
    DjangoPaper,
    DjangoPaperPCConflict,
    DjangoReview,
    DjangoReviewAssignment,
)


def seed_conference(
    form: FORM,
    papers: int = 8,
    users: Optional[int] = None,
    pc_members: int = 4,
    reviews_per_paper: int = 1,
) -> Dict[str, list]:
    """Populate a Jacqueline conference database.

    Returns the created objects keyed by kind, so callers (benchmarks, tests)
    can log in as specific users.
    """
    users = users if users is not None else papers
    created: Dict[str, list] = {"users": [], "pc": [], "papers": [], "reviews": []}
    with use_form(form):
        # Each kind is flushed with one bulk write instead of one insert per
        # facet row; bulk_create assigns jids up front, so later batches can
        # reference earlier ones through foreign keys.
        chair = ConfUser.objects.create(
            name="chair", affiliation="CMU", email="chair@conf.org", level="chair"
        )
        created["chair"] = [chair]
        created["pc"] = ConfUser.objects.bulk_create(
            [
                ConfUser(
                    name=f"pc{index}",
                    affiliation=f"University {index}",
                    email=f"pc{index}@conf.org",
                    level="pc",
                )
                for index in range(pc_members)
            ]
        )
        created["users"] = ConfUser.objects.bulk_create(
            [
                ConfUser(
                    name=f"author{index}",
                    affiliation=f"Institute {index % 17}",
                    email=f"author{index}@conf.org",
                    level="normal",
                )
                for index in range(users)
            ]
        )
        created["papers"] = Paper.objects.bulk_create(
            [
                Paper(
                    title=f"Paper {index}",
                    author=created["users"][index % len(created["users"])],
                )
                for index in range(papers)
            ]
        )
        assignments: list = []
        conflicts: list = []
        reviews: list = []
        for index, paper in enumerate(created["papers"]):
            pc = created["pc"][index % pc_members] if pc_members else chair
            assignments.append(ReviewAssignment(paper=paper, pc=pc))
            if pc_members > 1:
                conflicted = created["pc"][(index + 1) % pc_members]
                conflicts.append(PaperPCConflict(paper=paper, pc=conflicted))
            for review_index in range(reviews_per_paper):
                reviews.append(
                    Review(
                        paper=paper,
                        reviewer=pc,
                        contents=f"Review {review_index} of paper {index}",
                        score=(index + review_index) % 5 + 1,
                    )
                )
        ReviewAssignment.objects.bulk_create(assignments)
        PaperPCConflict.objects.bulk_create(conflicts)
        created["reviews"] = Review.objects.bulk_create(reviews)
    return created


def seed_baseline_conference(
    db: BaselineDB,
    papers: int = 8,
    users: Optional[int] = None,
    pc_members: int = 4,
    reviews_per_paper: int = 1,
) -> Dict[str, list]:
    """Populate the hand-coded-policy stack with the same workload."""
    users = users if users is not None else papers
    created: Dict[str, list] = {"users": [], "pc": [], "papers": [], "reviews": []}
    with use_baseline_db(db):
        chair = DjangoConfUser.objects.create(
            name="chair", affiliation="CMU", email="chair@conf.org", level="chair"
        )
        created["chair"] = [chair]
        for index in range(pc_members):
            member = DjangoConfUser.objects.create(
                name=f"pc{index}",
                affiliation=f"University {index}",
                email=f"pc{index}@conf.org",
                level="pc",
            )
            created["pc"].append(member)
        for index in range(users):
            author = DjangoConfUser.objects.create(
                name=f"author{index}",
                affiliation=f"Institute {index % 17}",
                email=f"author{index}@conf.org",
                level="normal",
            )
            created["users"].append(author)
        for index in range(papers):
            author = created["users"][index % len(created["users"])]
            paper = DjangoPaper.objects.create(title=f"Paper {index}", author=author)
            created["papers"].append(paper)
            pc = created["pc"][index % pc_members] if pc_members else chair
            DjangoReviewAssignment.objects.create(paper=paper, pc=pc)
            if pc_members > 1:
                conflicted = created["pc"][(index + 1) % pc_members]
                DjangoPaperPCConflict.objects.create(paper=paper, pc=conflicted)
            for review_index in range(reviews_per_paper):
                review = DjangoReview.objects.create(
                    paper=paper,
                    reviewer=pc,
                    contents=f"Review {review_index} of paper {index}",
                    score=(index + review_index) % 5 + 1,
                )
                created["reviews"].append(review)
    return created
