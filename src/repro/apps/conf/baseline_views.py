"""Django-style views with hand-coded policy checks.

Every view that touches sensitive data must iterate over its query results,
call the right ``policy_*`` methods and scrub fields the viewer may not see
(the pattern of Figure 8).  The repeated checks are exactly the policy code
that Figure 6 counts inside ``views.py`` for the Django implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.baseline import BaselineDB, use_baseline_db
from repro.baseline.model import DoesNotExist
from repro.db.engine import Database
from repro.web import BaselineApp, Response

from repro.apps.conf.baseline_models import (
    BASELINE_CONF_MODELS,
    BaselineConfPhase,
    DjangoConfUser,
    DjangoPaper,
    DjangoReview,
    DjangoReviewAssignment,
)
from repro.apps.conf.views import (
    PAPER_DETAIL_TEMPLATE,
    PAPER_LIST_TEMPLATE,
    USER_DETAIL_TEMPLATE,
    USER_LIST_TEMPLATE,
)


def setup_baseline_conf(database: Optional[Database] = None) -> BaselineDB:
    """Create a baseline database with the conference schema registered."""
    db = BaselineDB(database or Database())
    db.register_all(BASELINE_CONF_MODELS)
    BaselineConfPhase.reset()
    return db


def build_baseline_conf_app(db: BaselineDB) -> BaselineApp:
    """Assemble the hand-coded-policy conference application."""
    app = BaselineApp(db, name="conf-django")
    app.add_template("papers", PAPER_LIST_TEMPLATE)
    app.add_template("paper", PAPER_DETAIL_TEMPLATE)
    app.add_template("users", USER_LIST_TEMPLATE)
    app.add_template("profile", USER_DETAIL_TEMPLATE)

    def load_user(user_id):
        with use_baseline_db(db):
            try:
                return DjangoConfUser.objects.get(pk=user_id)
            except DoesNotExist:
                return None

    app.auth.set_user_loader(load_user)

    @app.route("/login", methods=("POST",))
    def login(request):
        try:
            user = DjangoConfUser.objects.get(name=request.form("username"))
        except DoesNotExist:
            return Response.forbidden("unknown user")
        app.auth.force_login(request.session, user.pk, request.form("username"))
        return Response.redirect("/papers")

    @app.route("/papers", methods=("GET",), template="papers")
    def all_papers(request):
        # Hand-coded policy enforcement: iterate over the rows *again* and
        # scrub the author field wherever the viewer fails the policy check.
        papers = list(DjangoPaper.objects.all())
        for paper in papers:
            if not paper.policy_author(request.user):
                paper.author_id = None
                paper.__dict__.pop("_fk_cache_author", None)
            if not paper.policy_accepted(request.user):
                paper.accepted = False
        return {"papers": papers}

    @app.route("/paper/<pk>", methods=("GET",), template="paper")
    def paper_detail(request):
        pk = int(request.param("pk"))
        try:
            paper = DjangoPaper.objects.get(pk=pk)
        except DoesNotExist:
            return Response.not_found("no such paper")
        if not paper.policy_author(request.user):
            paper.author_id = None
            paper.__dict__.pop("_fk_cache_author", None)
        if not paper.policy_accepted(request.user):
            paper.accepted = False
        reviews = list(DjangoReview.objects.filter(paper_id=pk))
        for review in reviews:
            if not review.policy_reviewer(request.user):
                review.reviewer_id = None
                review.__dict__.pop("_fk_cache_reviewer", None)
            if not review.policy_contents(request.user):
                review.contents = "[review not yet available]"
                review.score = 0
        return {"paper": paper, "reviews": reviews}

    @app.route("/users", methods=("GET",), template="users")
    def all_users(request):
        users = list(DjangoConfUser.objects.all())
        for person in users:
            if not person.policy_email(request.user):
                person.email = "[hidden email]"
        return {"users": users}

    @app.route("/user/<pk>", methods=("GET",), template="profile")
    def user_detail(request):
        pk = int(request.param("pk"))
        try:
            profile = DjangoConfUser.objects.get(pk=pk)
        except DoesNotExist:
            return Response.not_found("no such user")
        if not profile.policy_email(request.user):
            profile.email = "[hidden email]"
        papers = list(DjangoPaper.objects.filter(author_id=pk))
        visible_papers = []
        for paper in papers:
            if paper.policy_author(request.user):
                visible_papers.append(paper)
        return {"profile": profile, "papers": visible_papers}

    @app.route("/submit", methods=("POST",))
    def submit_paper(request):
        if request.user is None:
            return Response.forbidden("login required")
        DjangoPaper.objects.create(title=request.form("title"), author=request.user)
        return Response.redirect("/papers")

    @app.route("/review", methods=("POST",))
    def submit_review(request):
        if request.user is None:
            return Response.forbidden("login required")
        DjangoReview.objects.create(
            paper_id=int(request.form("paper")),
            reviewer=request.user,
            contents=request.form("contents", ""),
            score=int(request.form("score", 0)),
        )
        return Response.redirect("/papers")

    @app.route("/assign", methods=("POST",))
    def assign_review(request):
        if not request.user or getattr(request.user, "level", "") != "chair":
            return Response.forbidden("chair only")
        DjangoReviewAssignment.objects.create(
            paper_id=int(request.form("paper")), pc_id=int(request.form("pc"))
        )
        return Response.redirect("/papers")

    @app.route("/phase", methods=("POST",))
    def set_phase(request):
        if not request.user or getattr(request.user, "level", "") != "chair":
            return Response.forbidden("chair only")
        BaselineConfPhase.set(request.form("phase"))
        return Response.redirect("/papers")

    return app
