"""Jacqueline models for the conference management system.

Policies (all declared here, next to the data they protect):

* a paper's **author** is visible after the final decision, to the author
  themselves, and to PC members / the chair unless they are conflicted with
  the paper (Figure 7 of the paper);
* a paper's **accepted** bit is visible to the chair at any time and to
  everyone once the conference enters the ``final`` phase;
* a review's **reviewer** identity is visible to PC members and the chair
  only (never to the paper's author);
* a review's **contents and score** are visible to PC members/chair and, once
  the decision is out, to the paper's author;
* a user's **email** is visible to the user themselves and to the chair.

Permissions depend on the conference phase (``submission``, ``review``,
``final``), held in :class:`ConferencePhase`.
"""

from __future__ import annotations

from repro.cache import bump_policy_epoch
from repro.form import (
    BooleanField,
    CharField,
    ForeignKey,
    IntegerField,
    JModel,
    TextField,
    jacqueline,
    label_for,
)


class ConferencePhase:
    """The global stage of the conference; policies consult it at output time."""

    SUBMISSION = "submission"
    REVIEW = "review"
    FINAL = "final"

    current = SUBMISSION

    @classmethod
    def set(cls, phase: str) -> None:
        if phase not in (cls.SUBMISSION, cls.REVIEW, cls.FINAL):
            raise ValueError(f"unknown conference phase {phase!r}")
        cls.current = phase
        # The phase is policy-relevant state living outside the database, so
        # the invalidation bus cannot see it change; bumping the policy
        # epoch expires every memoised label/fragment cache entry instead.
        bump_policy_epoch()

    @classmethod
    def reset(cls) -> None:
        cls.current = cls.SUBMISSION
        bump_policy_epoch()


def _is_committee(user) -> bool:
    """PC members and the chair."""
    return user is not None and getattr(user, "level", None) in ("pc", "chair")


def _is_chair(user) -> bool:
    return user is not None and getattr(user, "level", None) == "chair"


class ConfUser(JModel):
    """A conference user: author, PC member or chair."""

    name = CharField(max_length=128)
    affiliation = CharField(max_length=256)
    email = CharField(max_length=128)
    level = CharField(max_length=16, default="normal")  # normal | pc | chair

    @staticmethod
    def jacqueline_get_public_email(user):
        return "[hidden email]"

    @staticmethod
    @label_for("email")
    @jacqueline
    def jacqueline_restrict_email(user, ctxt):
        """Emails are visible to the user themselves and to the chair."""
        return (ctxt is not None and ctxt == user) or _is_chair(ctxt)


class Paper(JModel):
    """A submitted paper."""

    title = CharField(max_length=256)
    author = ForeignKey(ConfUser)
    accepted = BooleanField(default=False)

    @staticmethod
    def jacqueline_get_public_author(paper):
        return None

    @staticmethod
    @label_for("author")
    @jacqueline
    def jacqueline_restrict_author(paper, ctxt):
        """The Figure 7 policy: anonymous during review, except to the author
        and unconflicted committee members."""
        if ConferencePhase.current == ConferencePhase.FINAL:
            return True
        if paper is None:
            return False
        if PaperPCConflict.objects.get(paper=paper, pc=ctxt) is not None:
            return False
        return (paper.author_id is not None and ctxt is not None and paper.author_id == ctxt.jid) or _is_committee(ctxt)

    @staticmethod
    def jacqueline_get_public_accepted(paper):
        return False

    @staticmethod
    @label_for("accepted")
    @jacqueline
    def jacqueline_restrict_accepted(paper, ctxt):
        """Decisions are visible to the chair, and to everyone once final."""
        return ConferencePhase.current == ConferencePhase.FINAL or _is_chair(ctxt)


class PaperPCConflict(JModel):
    """A conflict of interest between a paper and a PC member."""

    paper = ForeignKey(Paper)
    pc = ForeignKey(ConfUser)


class ReviewAssignment(JModel):
    """An assignment of a paper to a PC member for review."""

    paper = ForeignKey(Paper)
    pc = ForeignKey(ConfUser)


class Review(JModel):
    """A review of a paper."""

    paper = ForeignKey(Paper)
    reviewer = ForeignKey(ConfUser)
    contents = TextField()
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_reviewer(review):
        return None

    @staticmethod
    @label_for("reviewer")
    @jacqueline
    def jacqueline_restrict_reviewer(review, ctxt):
        """Reviewer identities stay within the committee."""
        return _is_committee(ctxt)

    @staticmethod
    def jacqueline_get_public_contents(review):
        return "[review not yet available]"

    @staticmethod
    def jacqueline_get_public_score(review):
        return 0

    @staticmethod
    @label_for("contents", "score")
    @jacqueline
    def jacqueline_restrict_contents(review, ctxt):
        """Review bodies are visible to the committee, and to the paper's
        author once the decision is final."""
        if _is_committee(ctxt):
            return True
        if ConferencePhase.current != ConferencePhase.FINAL:
            return False
        paper = Paper.objects.get(jid=review.paper_id)
        return paper is not None and ctxt is not None and paper.author_id == ctxt.jid


CONF_MODELS = [ConfUser, Paper, PaperPCConflict, ReviewAssignment, Review]
