"""The conference management system case study (Section 6.1).

Two parallel implementations of the same application:

* :mod:`repro.apps.conf.models` / :mod:`repro.apps.conf.views` -- the
  Jacqueline version; every information-flow policy lives in the model
  definitions, views are policy-agnostic.
* :mod:`repro.apps.conf.baseline_models` / :mod:`repro.apps.conf.baseline_views`
  -- the Django-style version; the schema holds no policies and every view
  calls hand-written policy checks and scrubs fields before rendering
  (Figure 8).

:mod:`repro.apps.conf.seed` populates either stack with synthetic users,
papers, reviews and conflicts for the stress tests (Figure 9a, Tables 3-4).
"""

from repro.apps.conf.models import (
    CONF_MODELS,
    ConferencePhase,
    ConfUser,
    Paper,
    PaperPCConflict,
    Review,
    ReviewAssignment,
)
from repro.apps.conf.views import build_conf_app, setup_conf
from repro.apps.conf.baseline_models import (
    BASELINE_CONF_MODELS,
    BaselineConfPhase,
    DjangoConfUser,
    DjangoPaper,
    DjangoPaperPCConflict,
    DjangoReview,
    DjangoReviewAssignment,
)
from repro.apps.conf.baseline_views import build_baseline_conf_app, setup_baseline_conf
from repro.apps.conf.seed import seed_conference, seed_baseline_conference

__all__ = [
    "ConfUser",
    "Paper",
    "PaperPCConflict",
    "Review",
    "ReviewAssignment",
    "ConferencePhase",
    "CONF_MODELS",
    "build_conf_app",
    "setup_conf",
    "DjangoConfUser",
    "DjangoPaper",
    "DjangoPaperPCConflict",
    "DjangoReview",
    "DjangoReviewAssignment",
    "BaselineConfPhase",
    "BASELINE_CONF_MODELS",
    "build_baseline_conf_app",
    "setup_baseline_conf",
    "seed_conference",
    "seed_baseline_conference",
]
