"""Policy-agnostic views for the Jacqueline conference management system.

Note what is *absent* here compared to :mod:`repro.apps.conf.baseline_views`:
no view checks who is allowed to see an author, a decision or a review --
the FORM and the application runtime resolve that from the policies in
:mod:`repro.apps.conf.models` when the page is rendered.
"""

from __future__ import annotations

from typing import Optional

from repro.db.engine import Database
from repro.form import FORM, use_form
from repro.web import JacquelineApp, Response

from repro.apps.conf.models import (
    CONF_MODELS,
    ConferencePhase,
    ConfUser,
    Paper,
    PaperPCConflict,
    Review,
    ReviewAssignment,
)

PAPER_LIST_TEMPLATE = """
<h1>Submitted papers</h1>
<ul>
{% for entry in papers %}
  <li>{{ entry.title }} — author: {% if entry.author %}{{ entry.author.name }}{% else %}[anonymous]{% endif %}</li>
{% endfor %}
</ul>
"""

PAPER_DETAIL_TEMPLATE = """
<h1>{{ paper.title }}</h1>
<p>Author: {% if paper.author %}{{ paper.author.name }}{% else %}[anonymous]{% endif %}</p>
<p>Accepted: {{ paper.accepted }}</p>
<h2>Reviews</h2>
<ul>
{% for review in reviews %}
  <li>score {{ review.score }}: {{ review.contents }}
      (by {% if review.reviewer %}{{ review.reviewer.name }}{% else %}[anonymous reviewer]{% endif %})</li>
{% endfor %}
</ul>
"""

USER_LIST_TEMPLATE = """
<h1>Registered users</h1>
<ul>
{% for person in users %}
  <li>{{ person.name }} ({{ person.affiliation }}) — {{ person.email }}</li>
{% endfor %}
</ul>
"""

USER_DETAIL_TEMPLATE = """
<h1>{{ profile.name }}</h1>
<p>Affiliation: {{ profile.affiliation }}</p>
<p>Email: {{ profile.email }}</p>
<h2>Papers</h2>
<ul>
{% for entry in papers %}
  <li>{{ entry.title }}</li>
{% endfor %}
</ul>
"""


def setup_conf(database: Optional[Database] = None, cache_config=None) -> FORM:
    """Create a FORM with the conference schema registered.

    ``cache_config`` is forwarded to the FORM; pass
    ``CacheConfig.disabled()`` for paper-faithful uncached benchmarks.
    """
    form = FORM(database or Database(), cache_config=cache_config)
    form.register_all(CONF_MODELS)
    ConferencePhase.reset()
    return form


def build_conf_app(form: FORM, early_pruning: bool = True) -> JacquelineApp:
    """Assemble the Jacqueline conference application."""
    app = JacquelineApp(form, name="conf-jacqueline", early_pruning=early_pruning)
    app.add_template("papers", PAPER_LIST_TEMPLATE)
    app.add_template("paper", PAPER_DETAIL_TEMPLATE)
    app.add_template("users", USER_LIST_TEMPLATE)
    app.add_template("profile", USER_DETAIL_TEMPLATE)

    def load_user(user_id):
        with use_form(form):
            return ConfUser.objects.get(jid=user_id)

    app.auth.set_user_loader(load_user)

    @app.route("/register", methods=("POST",))
    def register(request):
        user = ConfUser.objects.create(
            name=request.form("name"),
            affiliation=request.form("affiliation", ""),
            email=request.form("email", ""),
            level=request.form("level", "normal"),
        )
        app.auth.register(request.form("name"), request.form("password", "pw"), user.jid)
        return Response.redirect("/papers")

    @app.route("/login", methods=("POST",))
    def login(request):
        user = ConfUser.objects.get(name=request.form("username"))
        if user is None:
            return Response.forbidden("unknown user")
        app.auth.force_login(request.session, user.jid, request.form("username"))
        return Response.redirect("/papers")

    @app.route("/papers", methods=("GET",), template="papers")
    def all_papers(request):
        """The "view all papers" stress-test page (Figure 9a, Table 3)."""
        return {"papers": Paper.objects.all().fetch()}

    @app.route("/paper/<jid>", methods=("GET",), template="paper")
    def paper_detail(request):
        """The single-paper page of Table 4."""
        jid = int(request.param("jid"))
        paper = Paper.objects.get(jid=jid)
        reviews = Review.objects.filter(paper_id=jid).fetch()
        return {"paper": paper, "reviews": reviews}

    @app.route("/users", methods=("GET",), template="users")
    def all_users(request):
        """The "view all users" stress-test page (Figure 9a, Table 3)."""
        return {"users": ConfUser.objects.all().fetch()}

    @app.route("/user/<jid>", methods=("GET",), template="profile")
    def user_detail(request):
        """The single-user page of Table 4."""
        jid = int(request.param("jid"))
        profile = ConfUser.objects.get(jid=jid)
        papers = Paper.objects.filter(author_id=jid).fetch()
        return {"profile": profile, "papers": papers}

    @app.route("/submit", methods=("POST",))
    def submit_paper(request):
        if request.user is None:
            return Response.forbidden("login required")
        Paper.objects.create(title=request.form("title"), author=request.user)
        return Response.redirect("/papers")

    @app.route("/review", methods=("POST",))
    def submit_review(request):
        if request.user is None:
            return Response.forbidden("login required")
        Review.objects.create(
            paper_id=int(request.form("paper")),
            reviewer=request.user,
            contents=request.form("contents", ""),
            score=int(request.form("score", 0)),
        )
        return Response.redirect("/papers")

    @app.route("/assign", methods=("POST",))
    def assign_review(request):
        if not request.user or getattr(request.user, "level", "") != "chair":
            return Response.forbidden("chair only")
        ReviewAssignment.objects.create(
            paper_id=int(request.form("paper")), pc_id=int(request.form("pc"))
        )
        return Response.redirect("/papers")

    @app.route("/phase", methods=("POST",))
    def set_phase(request):
        if not request.user or getattr(request.user, "level", "") != "chair":
            return Response.forbidden("chair only")
        ConferencePhase.set(request.form("phase"))
        return Response.redirect("/papers")

    return app
