"""Views and application wiring for the calendar example."""

from __future__ import annotations

import datetime
from typing import Optional

from repro.db.engine import Database
from repro.form import FORM, use_form
from repro.web import JacquelineApp, Response

from repro.apps.calendar.models import CALENDAR_MODELS, Event, EventGuest, UserProfile

EVENT_LIST_TEMPLATE = """
<h1>Events for {{ user.name }}</h1>
<ul>
{% for event in events %}
  <li>{{ event.name }} at {{ event.location }}</li>
{% endfor %}
</ul>
"""

EVENT_DETAIL_TEMPLATE = """
<h1>{{ event.name }}</h1>
<p>Location: {{ event.location }}</p>
<p>Guests:</p>
<ul>
{% for entry in guests %}
  <li>{{ entry.guest.name }}</li>
{% endfor %}
</ul>
"""


def setup_calendar(database: Optional[Database] = None, cache_config=None) -> FORM:
    """Create a FORM with the calendar schema registered.

    ``cache_config`` is forwarded to the FORM; pass
    ``CacheConfig.disabled()`` for paper-faithful uncached benchmarks.
    """
    form = FORM(database or Database(), cache_config=cache_config)
    form.register_all(CALENDAR_MODELS)
    return form


def build_calendar_app(form: FORM, early_pruning: bool = True) -> JacquelineApp:
    """The calendar application: login, event list and event detail pages."""
    app = JacquelineApp(form, name="calendar", early_pruning=early_pruning)
    app.add_template("events", EVENT_LIST_TEMPLATE)
    app.add_template("event", EVENT_DETAIL_TEMPLATE)

    def load_user(user_id):
        with use_form(form):
            return UserProfile.objects.get(jid=user_id)

    app.auth.set_user_loader(load_user)

    @app.route("/login", methods=("POST",))
    def login(request):
        user = UserProfile.objects.get(name=request.form("username"))
        if user is None:
            return Response.forbidden("unknown user")
        app.auth.force_login(request.session, user.jid, request.form("username"))
        return Response.redirect("/events")

    @app.route("/events", methods=("GET",), template="events")
    def events(request):
        return {"events": Event.objects.all().fetch()}

    @app.route("/event/<jid>", methods=("GET",), template="event")
    def event_detail(request):
        event = Event.objects.get(jid=int(request.param("jid")))
        guests = EventGuest.objects.filter(event_id=int(request.param("jid"))).fetch()
        return {"event": event, "guests": guests}

    @app.route("/event", methods=("POST",))
    def create_event(request):
        event = Event.objects.create(
            name=request.form("name"),
            location=request.form("location"),
            time=datetime.datetime(2026, 6, 16, 19, 0),
            description=request.form("description", ""),
        )
        for guest_name in request.form("guests", "").split(","):
            guest_name = guest_name.strip()
            if not guest_name:
                continue
            guest = UserProfile.objects.get(name=guest_name)
            if guest is not None:
                EventGuest.objects.create(event=event, guest=guest)
        return Response.redirect("/events")

    return app
