"""The social-calendar example of Section 2 (Carol's surprise party)."""

from repro.apps.calendar.models import Event, EventGuest, UserProfile
from repro.apps.calendar.app import build_calendar_app, setup_calendar

__all__ = ["Event", "EventGuest", "UserProfile", "build_calendar_app", "setup_calendar"]
