"""Schemas and policies for the calendar example (Figure 2 of the paper).

The ``Event`` fields ``name`` and ``location`` share one label per event: a
viewer sees the real values only if they appear on the event's guest list,
and the guest-list policy itself queries the protected ``EventGuest`` table
(a circular dependency Jacqueline handles through its constraint semantics).
"""

from __future__ import annotations

from repro.form import CharField, DateTimeField, ForeignKey, JModel, jacqueline, label_for


class UserProfile(JModel):
    """A calendar user."""

    name = CharField(max_length=64)
    email = CharField(max_length=128)


class Event(JModel):
    """A calendar event with guest-only visibility of its details."""

    name = CharField(max_length=256)
    location = CharField(max_length=512)
    time = DateTimeField()
    description = CharField(max_length=1024)

    @staticmethod
    def jacqueline_get_public_name(event):
        """Public value for the name field."""
        return "Private event"

    @staticmethod
    def jacqueline_get_public_location(event):
        """Public value for the location field."""
        return "Undisclosed location"

    @staticmethod
    @label_for("name", "location")
    @jacqueline
    def jacqueline_restrict_event(event, ctxt):
        """Only guests of the event may see its name and location."""
        return EventGuest.objects.get(event=event, guest=ctxt) is not None


class EventGuest(JModel):
    """The guest list: one row per (event, guest) pair."""

    event = ForeignKey(Event)
    guest = ForeignKey(UserProfile)

    @staticmethod
    def jacqueline_get_public_guest(eventguest):
        """Non-guests see no guest identity at all (explicitly ``None``,
        which is also what the FORM would fall back to -- declaring it
        keeps the policy/public-method pairing complete; lint JQL002)."""
        return None

    @staticmethod
    @label_for("guest")
    @jacqueline
    def jacqueline_restrict_guest(eventguest, ctxt):
        """A viewer must themselves be on the guest list to see who is invited.

        The policy for the ``guest`` field depends on the guest list itself --
        the mutual-dependency example of Section 2.3.
        """
        return EventGuest.objects.get(event_id=eventguest.event_id, guest=ctxt) is not None


CALENDAR_MODELS = [UserProfile, Event, EventGuest]
