"""λJDB by example: running the core calculus that backs the paper's proofs.

Evaluates a handful of λJDB programs with the faceted big-step interpreter,
shows how faceted rows are stored in tables, how relational queries stay
guarded, how ``print`` resolves policies per viewer, and checks the
Projection Theorem on one of the runs.  Pass a file of s-expressions to
evaluate your own program::

    python examples/lambda_jdb_repl.py [program.jdb]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.lambda_jdb import evaluate, make_view, parse, project_expr, project_value
from repro.lambda_jdb.pprint import pretty_value

EXAMPLES = [
    (
        "A faceted row is stored as two branch-annotated rows",
        '(label k (facet k (row "Alice" "Smith") (row "Bob" "Jones")))',
    ),
    (
        "Selection on a faceted table keeps results guarded",
        '(label k (select 0 1 (facet k (row "x" "x") (row "x" "y"))))',
    ),
    (
        "Folding counts only the rows a view can see",
        """
        (label k
          (fold (lambda (r) (lambda (acc) (+ acc 1))) 0
                (facet k (union (row "a") (row "b")) (row "a"))))
        """,
    ),
    (
        "print resolves policies for the viewer (alice is on the guest list)",
        """
        (label k
          (let guests (union (row "alice") (row "bob"))
            (let party (facet k (row "Carol party" "Dagstuhl")
                                (row "Private event" "Undisclosed"))
              (let _ (restrict k (lambda (ctxt)
                       (fold (lambda (g) (lambda (acc) (or acc (== g ctxt)))) false guests)))
                (print "alice" party)))))
        """,
    ),
    (
        "the same print for carol shows only the public facet",
        """
        (label k
          (let party (facet k (row "Carol party" "Dagstuhl")
                              (row "Private event" "Undisclosed"))
            (let _ (restrict k (lambda (ctxt) (== ctxt "alice")))
              (print "carol" party))))
        """,
    ),
]


def run_source(title: str, source: str) -> None:
    expr = parse(source)
    value, interp = evaluate(expr)
    print(f"-- {title}")
    print("   result:", pretty_value(value))
    if interp.outputs:
        channel, output = interp.outputs[-1]
        print(f"   printed to {channel!r}:", pretty_value(output))
    print()


def check_projection_theorem() -> None:
    source = '(label k (select 0 1 (facet k (row "x" "x") (row "x" "y"))))'
    expr = parse(source)
    value, interp = evaluate(expr)
    label = next(iter({name for name, _ in _all_branches(value)}), "k$1")
    for view_labels in (frozenset(), frozenset({label})):
        view = make_view(view_labels)
        projected_value, _ = evaluate(project_expr(parse(source.replace("k", "k")), view))
        lhs = pretty_value(project_value(value, view))
        print(f"   view {set(view_labels) or '{}'}: faceted run projects to {lhs}")


def _all_branches(value):
    from repro.lambda_jdb.values import TableV

    if isinstance(value, TableV):
        for branches, _fields in value.rows:
            yield from branches


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            run_source(sys.argv[1], handle.read())
        return
    for title, source in EXAMPLES:
        run_source(title, source)
    print("-- Projection Theorem, checked on the selection example")
    check_projection_theorem()


if __name__ == "__main__":
    main()
