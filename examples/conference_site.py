"""Run the conference management system and compare both stacks.

Seeds the Jacqueline conference app and the hand-coded-policy (Django-style)
baseline with the same workload, drives both through the in-process test
client as several users, and shows that the rendered pages agree while only
the Jacqueline version keeps its views policy-free.

Run with::

    python examples/conference_site.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.conf import (
    ConferencePhase,
    build_baseline_conf_app,
    build_conf_app,
    seed_baseline_conference,
    seed_conference,
    setup_baseline_conf,
    setup_conf,
)
from repro.web import TestClient


def main() -> None:
    papers = 10

    form = setup_conf()
    created = seed_conference(form, papers=papers, users=papers, pc_members=3)
    jacqueline_app = build_conf_app(form)

    db = setup_baseline_conf()
    baseline_created = seed_baseline_conference(db, papers=papers, users=papers, pc_members=3)
    baseline_app = build_baseline_conf_app(db)

    viewers = [
        ("author0 (submitted paper 0)", created["users"][0], baseline_created["users"][0]),
        ("pc1 (committee member)", created["pc"][1], baseline_created["pc"][1]),
        ("chair", created["chair"][0], baseline_created["chair"][0]),
    ]

    for title, jacq_user, base_user in viewers:
        jacq_client = TestClient(jacqueline_app)
        jacq_client.force_login(jacq_user.jid, jacq_user.name)
        base_client = TestClient(baseline_app)
        base_client.force_login(base_user.pk, base_user.name)

        jacq_page = jacq_client.get("/papers").body
        base_page = base_client.get("/papers").body
        anonymous = jacq_page.count("[anonymous]")
        print(f"== {title} ==")
        print(f"   papers listed: {papers}, shown anonymously: {anonymous}")
        print(f"   Jacqueline and Django pages identical: {jacq_page == base_page}")

    # A paper is submitted through the policy-agnostic app, then the chair
    # flips the conference to the final phase and authorship becomes public.
    author_client = TestClient(jacqueline_app)
    author_client.force_login(created["users"][2].jid, created["users"][2].name)
    author_client.post("/submit", title="Faceted execution in practice")

    chair_client = TestClient(jacqueline_app)
    chair_client.force_login(created["chair"][0].jid, "chair")
    chair_client.post("/phase", phase="final")

    outsider = TestClient(jacqueline_app)
    outsider.force_login(created["users"][5].jid, created["users"][5].name)
    page = outsider.get("/papers").body
    print("\nAfter the decision phase, an unrelated author sees every author name:")
    print("   anonymous entries left:", page.count("[anonymous]"))
    ConferencePhase.reset()


if __name__ == "__main__":
    main()
