"""HIPAA-style health records: role- and state-dependent visibility.

Demonstrates the health record manager case study: the same record list is
rendered for a patient, their doctor, an unrelated doctor, and two insurers
(one holding a permission waiver, one not).  The views contain no policy
code; everything is driven by the ``label_for`` policies on the models.

Run with::

    python examples/health_records.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.health import Waiver, build_health_app, seed_health, setup_health
from repro.form import use_form
from repro.web import TestClient


def visible_diagnoses(app, user) -> int:
    client = TestClient(app)
    client.force_login(user.jid, user.name)
    body = client.get("/records").body
    return body.count("Diagnosis")


def main() -> None:
    form = setup_health()
    created = seed_health(form, patients=8, doctors=2, insurers=2, records_per_patient=1)
    app = build_health_app(form)

    patient = created["patients"][0]
    treating_doctor = created["doctors"][0]      # treats even-indexed patients
    other_doctor = created["doctors"][1]
    waived_insurer = created["insurers"][0]      # holds waivers from some patients
    other_insurer = created["insurers"][1]

    total = len(created["records"])
    print(f"{total} records in the system.\n")
    for title, user in [
        ("patient0 (sees only their own record)", patient),
        ("doctor0 (treats half the patients)", treating_doctor),
        ("doctor1 (treats the other half)", other_doctor),
        ("insurer0 (holds waivers)", waived_insurer),
        ("insurer1 (no waivers)", other_insurer),
    ]:
        print(f"  {title:45s} -> {visible_diagnoses(app, user)} diagnosis(es) visible")

    # Visibility is stateful: signing a waiver immediately changes what the
    # insurer can see, without touching any view code.
    with use_form(form):
        Waiver.objects.create(patient=created["patients"][1], insurer=other_insurer)
    print("\nAfter patient1 signs a waiver for insurer1:")
    print(f"  insurer1 now sees {visible_diagnoses(app, other_insurer)} diagnosis(es)")


if __name__ == "__main__":
    main()
