"""Quickstart: policy-agnostic programming with the faceted runtime and ORM.

This walks through the paper's Section 2 example end to end:

1. declare schemas with policies attached to sensitive fields;
2. create data through the ordinary ORM API (no policy checks anywhere);
3. query it back -- the same query yields different results per viewer;
4. show a derived value and an implicit-flow write staying protected.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import datetime
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core import feq
from repro.db import Database
from repro.form import (
    CharField,
    DateTimeField,
    FORM,
    ForeignKey,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


# -- 1. schemas and policies (the only place policies appear) ---------------------


class UserProfile(JModel):
    name = CharField(max_length=64)


class Event(JModel):
    name = CharField(max_length=256)
    location = CharField(max_length=512)
    time = DateTimeField()

    @staticmethod
    def jacqueline_get_public_name(event):
        return "Private event"

    @staticmethod
    def jacqueline_get_public_location(event):
        return "Undisclosed location"

    @staticmethod
    @label_for("name", "location")
    @jacqueline
    def jacqueline_restrict_event(event, ctxt):
        """Only guests may see what and where the event is."""
        return EventGuest.objects.get(event=event, guest=ctxt) is not None


class EventGuest(JModel):
    event = ForeignKey(Event)
    guest = ForeignKey(UserProfile)


def main() -> None:
    form = FORM(Database())
    form.register_all([UserProfile, Event, EventGuest])

    with use_form(form):
        # -- 2. create data; no policy code anywhere below this line ---------------
        alice = UserProfile.objects.create(name="Alice")
        bob = UserProfile.objects.create(name="Bob")
        carol = UserProfile.objects.create(name="Carol")

        party = Event.objects.create(
            name="Carol's surprise party",
            location="Schloss Dagstuhl",
            time=datetime.datetime(2026, 6, 16, 19, 0),
        )
        EventGuest.objects.create(event=party, guest=alice)
        EventGuest.objects.create(event=party, guest=bob)

        print("How the FORM stores the faceted record (Table 1):")
        for row in form.database.rows("Event"):
            print("  ", {k: row[k] for k in ("id", "name", "location", "jid", "jvars")})

        # -- 3. the same query, three viewers --------------------------------------
        print("\nWhat each viewer sees on the events page:")
        for viewer in (alice, bob, carol):
            with viewer_context(viewer):
                events = [(e.name, e.location) for e in Event.objects.all()]
            print(f"  {viewer.name:5s} -> {events}")

        # Queries on sensitive fields do not leak either.
        for viewer in (alice, carol):
            with viewer_context(viewer):
                matches = list(Event.objects.filter(location="Schloss Dagstuhl"))
            print(f"  filter(location='Schloss Dagstuhl') as {viewer.name}: {len(matches)} match(es)")

        # -- 4. derived values and guarded writes ----------------------------------
        runtime = form.runtime
        faceted_events = Event.objects.all().fetch()
        headline = runtime.jfun(
            lambda events: "Alice's events: " + ", ".join(e.name for e in events),
            faceted_events,
        )
        print("\nA derived string stays faceted until it reaches a viewer:")
        print("   alice sees:", runtime.concretize(headline, alice))
        print("   carol sees:", runtime.concretize(headline, carol))

        def mark_dagstuhl(event):
            def then():
                event.location = "Dagstuhl (updated)"
                event.save()

            runtime.jif(feq(event.location, "Schloss Dagstuhl"), then)

        runtime.jfor(faceted_events, mark_dagstuhl)
        print("\nAfter an update made inside a sensitive conditional:")
        for viewer in (alice, carol):
            with viewer_context(viewer):
                locations = [e.location for e in Event.objects.all()]
            print(f"   {viewer.name:5s} -> {locations}")


if __name__ == "__main__":
    main()
