"""Tests for the Jeeves runtime: policies, control flow, state, concretisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    UNASSIGNED,
    Facet,
    JeevesRuntime,
    Label,
    PolicyError,
    View,
    feq,
    get_runtime,
    reset_runtime,
    set_runtime,
)
from repro.core.policy import PolicyEnv, always_allow, never_allow


def test_mk_labeled_concretizes_by_policy(runtime):
    value = runtime.mk_labeled("secret", "public", lambda viewer: viewer == "alice")
    assert runtime.concretize(value, "alice") == "secret"
    assert runtime.concretize(value, "carol") == "public"


def test_policy_checks_accumulate_conjunctively(runtime):
    label = runtime.label("k")
    runtime.restrict(label, lambda viewer: viewer != "eve")
    runtime.restrict(label, lambda viewer: viewer == "alice")
    value = runtime.mk_sensitive(label, 1, 0)
    assert runtime.concretize(value, "alice") == 1
    assert runtime.concretize(value, "bob") == 0
    assert runtime.concretize(value, "eve") == 0


def test_derived_values_keep_protection(runtime):
    value = runtime.mk_labeled(41, 0, lambda viewer: viewer == "alice")
    derived = value + 1
    assert runtime.concretize(derived, "alice") == 42
    assert runtime.concretize(derived, "bob") == 1


def test_failing_policy_fails_closed(runtime):
    def broken(viewer):
        raise RuntimeError("boom")

    value = runtime.mk_labeled("secret", "public", broken)
    with pytest.raises(PolicyError):
        runtime.concretize(value, "alice")


def test_jif_merges_branch_results(runtime):
    secret_flag = runtime.mk_labeled(True, False, lambda viewer: viewer == "alice")
    result = runtime.jif(secret_flag, lambda: "yes", lambda: "no")
    assert runtime.concretize(result, "alice") == "yes"
    assert runtime.concretize(result, "bob") == "no"


def test_jif_guards_side_effects_on_cells(runtime):
    secret_flag = runtime.mk_labeled(True, False, lambda viewer: viewer == "alice")
    counter = runtime.cell(0)
    runtime.jif(secret_flag, lambda: counter.set(counter.get() + 1))
    assert runtime.concretize(counter.get(), "alice") == 1
    assert runtime.concretize(counter.get(), "bob") == 0


def test_namespace_assignment_is_guarded(runtime):
    secret_flag = runtime.mk_labeled(True, False, lambda viewer: viewer == "alice")
    state = runtime.namespace(description="old")
    runtime.jif(secret_flag, lambda: setattr(state, "description", "new"))
    assert runtime.concretize(state.description, "alice") == "new"
    assert runtime.concretize(state.description, "bob") == "old"
    assert "description" in state
    assert state.snapshot().keys() == {"description"}


def test_namespace_unknown_attribute_raises(runtime):
    state = runtime.namespace()
    with pytest.raises(AttributeError):
        _ = state.missing


def test_jfor_iterates_faceted_collections(runtime):
    label = runtime.label("k")
    runtime.restrict(label, lambda viewer: viewer == "alice")
    collection = runtime.mk_sensitive(label, ["a", "b"], [])
    seen = runtime.jfor(collection, lambda item: item.upper())
    # Both facets are explored; the secret facet contributes its items.
    assert seen == ["A", "B"]


def test_jfor_guarded_accumulation(runtime):
    label = runtime.label("k")
    runtime.restrict(label, lambda viewer: viewer == "alice")
    collection = runtime.mk_sensitive(label, [1, 2, 3], [1])
    total = runtime.cell(0)
    runtime.jfor(collection, lambda item: total.set(total.get() + item))
    assert runtime.concretize(total.get(), "alice") == 6
    assert runtime.concretize(total.get(), "bob") == 1


def test_jfun_and_jcond(runtime):
    value = runtime.mk_labeled(3, 0, lambda viewer: viewer == "alice")
    squared = runtime.jfun(lambda x: x * x, value)
    assert runtime.concretize(squared, "alice") == 9
    chosen = runtime.jcond(feq(value, 3), "match", "no match")
    assert runtime.concretize(chosen, "alice") == "match"
    assert runtime.concretize(chosen, "bob") == "no match"


def test_unassigned_values_flow_through_branches(runtime):
    flag = runtime.mk_labeled(True, False, lambda viewer: viewer == "alice")
    state = runtime.namespace()
    runtime.jif(flag, lambda: setattr(state, "result", 7))
    assert runtime.concretize(state.result, "alice") == 7
    assert runtime.concretize(state.result, "bob") is UNASSIGNED


def test_policy_reading_sensitive_data_mutual_dependency(runtime):
    """A policy that depends on the value it guards (Section 2.3)."""
    label = runtime.label("guests")
    guest_list = runtime.mk_sensitive(label, ["alice", "bob"], [])
    runtime.restrict(label, lambda viewer: runtime.jfun(lambda gs: viewer in gs, guest_list))
    assert runtime.concretize(guest_list, "alice") == ["alice", "bob"]
    assert runtime.concretize(guest_list, "carol") == []


def test_jprint_returns_and_forwards_text(runtime):
    captured = []
    value = runtime.mk_labeled("secret", "public", lambda viewer: viewer == "alice")
    text = runtime.jprint(value, "alice", sink=captured.append)
    assert text == "secret"
    assert captured == ["secret"]


def test_view_for_reports_label_assignment(runtime):
    value = runtime.mk_labeled("secret", "public", lambda viewer: viewer == "alice")
    label = value.label
    assert runtime.view_for(value, "alice").can_see(label)
    assert not runtime.view_for(value, "bob").can_see(label)


def test_prune_for_viewer_collapses_facets(runtime):
    value = runtime.mk_labeled("secret", "public", lambda viewer: viewer == "alice")
    assert runtime.prune_for_viewer(value, "alice") == "secret"
    assert runtime.prune_for_viewer(value, "bob") == "public"


def test_guarded_outside_branch_is_identity(runtime):
    assert runtime.guarded("new", "old") == "new"


def test_under_pc_and_under_branch_nesting(runtime):
    label = runtime.label("k")
    with runtime.under_branch(label, True) as pc:
        assert pc.polarity_of(label) is True
        assert runtime.current_pc() is pc
    assert not runtime.current_pc()


def test_reset_clears_policies(runtime):
    label = runtime.label("k")
    runtime.restrict(label, never_allow)
    runtime.reset()
    assert len(runtime.policy_env) == 0


def test_thread_local_default_runtime_roundtrip():
    fresh = reset_runtime()
    assert get_runtime() is fresh
    replacement = JeevesRuntime()
    set_runtime(replacement)
    assert get_runtime() is replacement
    reset_runtime()


def test_policy_env_defaults_and_copy():
    env = PolicyEnv()
    label = Label("k")
    assert env.evaluate(label, "anyone") is True  # default allow
    env.declare(label)
    env.restrict(label, never_allow)
    clone = env.copy()
    assert clone.evaluate(label, "anyone") is False
    assert label in clone and len(clone) == 1


@given(st.integers(min_value=-100, max_value=100), st.integers(min_value=-100, max_value=100))
@settings(max_examples=50)
def test_property_arithmetic_matches_plain_python(secret, public):
    runtime = JeevesRuntime()
    value = runtime.mk_labeled(secret, public, lambda viewer: viewer == "high")
    expression = (value + 3) * 2 - value
    assert runtime.concretize(expression, "high") == (secret + 3) * 2 - secret
    assert runtime.concretize(expression, "low") == (public + 3) * 2 - public


@given(st.booleans(), st.text(max_size=5))
@settings(max_examples=50)
def test_property_concretize_never_leaks_other_facet(secret_allowed, viewer_name):
    runtime = JeevesRuntime()
    value = runtime.mk_labeled(
        "SECRET", "PUBLIC", lambda viewer: secret_allowed and viewer == "alice"
    )
    shown = runtime.concretize(value, viewer_name)
    if viewer_name == "alice" and secret_allowed:
        assert shown == "SECRET"
    else:
        assert shown == "PUBLIC"
