"""Unit and property tests for faceted values."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import MixedFacetError, UnassignedValueError
from repro.core.facets import (
    UNASSIGNED,
    Facet,
    collect_labels,
    facet_apply,
    facet_cond,
    facet_depth,
    facet_leaf_count,
    facet_map,
    fand,
    feq,
    fge,
    fgt,
    fle,
    flt,
    fne,
    fnot,
    for_,
    is_facet,
    iter_leaves,
    mk_facet,
    mk_facet_branches,
    project,
    project_assignment,
    prune,
)
from repro.core.labels import Branch, Label, View
from repro.core.pathcondition import PathCondition


@pytest.fixture
def k():
    return Label("k")


@pytest.fixture
def m():
    return Label("m")


def test_mk_facet_collapses_identical_sides(k):
    assert mk_facet(k, 42, 42) == 42
    assert isinstance(mk_facet(k, 1, 2), Facet)


def test_mk_facet_normalises_nested_same_label(k):
    inner = Facet(k, "secret", "public")
    outer = mk_facet(k, inner, "other")
    assert outer.high == "secret"


def test_mk_facet_branches_polarity(k, m):
    value = mk_facet_branches([Branch(k, True), Branch(m, False)], "hi", "lo")
    assert project(value, View({k})) == "hi"       # k true, m false
    assert project(value, View({k, m})) == "lo"    # m true -> low
    assert project(value, View(set())) == "lo"


def test_facet_repr_and_structural_equality(k):
    facet = Facet(k, 1, 2)
    assert facet == Facet(k, 1, 2)
    assert facet != Facet(k, 1, 3)
    assert "k" in repr(facet)
    assert hash(facet) == hash(Facet(k, 1, 2))


def test_facet_is_immutable(k):
    facet = Facet(k, 1, 2)
    with pytest.raises(AttributeError):
        facet.high = 7


def test_native_bool_branching_is_rejected(k):
    with pytest.raises(MixedFacetError):
        if Facet(k, True, False):
            pass


def test_unassigned_is_singleton_and_unbranchable():
    assert UNASSIGNED is type(UNASSIGNED)()
    with pytest.raises(UnassignedValueError):
        bool(UNASSIGNED)


def test_facet_apply_arithmetic(k):
    facet = Facet(k, 10, 1)
    result = facet + 5
    assert project(result, View({k})) == 15
    assert project(result, View(set())) == 6
    assert project(facet * 2 - 1, View({k})) == 19


def test_facet_apply_respects_path_condition(k):
    facet = Facet(k, 10, 1)
    pc = PathCondition([Branch(k, True)])
    assert facet_apply(operator.add, facet, 1, pc=pc) == 11


def test_facet_apply_unassigned_propagates(k):
    facet = Facet(k, UNASSIGNED, 3)
    result = facet + 1
    assert project(result, View(set())) == 4
    assert project(result, View({k})) is UNASSIGNED


def test_comparison_helpers(k):
    facet = Facet(k, 5, 0)
    assert project(feq(facet, 5), View({k})) is True
    assert project(feq(facet, 5), View(set())) is False
    assert project(fne(facet, 5), View(set())) is True
    assert project(flt(facet, 3), View({k})) is False
    assert project(fle(facet, 5), View({k})) is True
    assert project(fgt(facet, 3), View({k})) is True
    assert project(fge(facet, 6), View({k})) is False
    assert project(fnot(feq(facet, 0)), View(set())) is False
    assert project(fand(True, feq(facet, 5)), View({k})) is True
    assert project(for_(False, feq(facet, 5)), View(set())) is False


def test_facet_string_concatenation(k):
    name = Facet(k, "party", "private")
    joined = "event: " + name
    assert project(joined, View({k})) == "event: party"
    assert project(joined, View(set())) == "event: private"


def test_facet_cond_selects_by_condition(k):
    condition = Facet(k, True, False)
    result = facet_cond(condition, "then", "else")
    assert project(result, View({k})) == "then"
    assert project(result, View(set())) == "else"
    assert facet_cond(True, 1, 2) == 1
    assert facet_cond(UNASSIGNED, 1, 2) is UNASSIGNED


def test_project_traverses_containers(k):
    value = {"events": [Facet(k, "secret", "public")], "count": (Facet(k, 1, 0),)}
    visible = project(value, View({k}))
    hidden = project(value, View(set()))
    assert visible == {"events": ["secret"], "count": (1,)}
    assert hidden == {"events": ["public"], "count": (0,)}


def test_project_assignment_defaults_to_low(k, m):
    value = Facet(k, Facet(m, 1, 2), 3)
    assert project_assignment(value, {k: True}) == 2
    assert project_assignment(value, {k: True, m: True}) == 1
    assert project_assignment(value, {}) == 3


def test_collect_labels_and_leaves(k, m):
    value = [Facet(k, Facet(m, "a", "b"), "c"), "d"]
    assert collect_labels(value) == {k, m}
    leaves = dict()
    for branches, leaf in iter_leaves(value[0]):
        leaves[leaf] = branches
    assert set(leaves) == {"a", "b", "c"}
    assert Branch(k, True) in leaves["a"] and Branch(m, True) in leaves["a"]


def test_facet_map_preserves_structure(k):
    value = Facet(k, 1, 2)
    doubled = facet_map(lambda x: x * 2, value)
    assert project(doubled, View({k})) == 2 * 1
    assert project(doubled, View(set())) == 4


def test_prune_under_path_condition(k, m):
    value = Facet(k, Facet(m, 1, 2), 3)
    pruned = prune(value, PathCondition([Branch(k, True)]))
    assert isinstance(pruned, Facet) and pruned.label == m
    assert prune(value, PathCondition([Branch(k, False)])) == 3


def test_depth_and_leaf_count(k, m):
    value = Facet(k, Facet(m, 1, 2), 3)
    assert facet_depth(value) == 2
    assert facet_leaf_count(value) == 3
    assert facet_depth("raw") == 0
    assert facet_leaf_count("raw") == 1
    assert is_facet(value) and not is_facet(3)


# -- property tests --------------------------------------------------------------------

_label_pool = [Label(name=f"L{i}", hint=f"L{i}") for i in range(4)]


def faceted_ints(max_depth=3):
    return st.recursive(
        st.integers(min_value=-50, max_value=50),
        lambda children: st.builds(
            Facet, st.sampled_from(_label_pool), children, children
        ),
        max_leaves=6,
    )


def views():
    return st.sets(st.sampled_from(_label_pool)).map(View)


@given(faceted_ints(), faceted_ints(), views())
@settings(max_examples=80)
def test_projection_commutes_with_strict_operations(a, b, view):
    """L(a op b) == L(a) op L(b) -- the value-level projection property."""
    result = facet_apply(operator.add, a, b)
    assert project(result, view) == project(a, view) + project(b, view)


@given(faceted_ints(), views())
@settings(max_examples=80)
def test_projection_of_mk_facet_matches_definition(a, view):
    label = _label_pool[0]
    other = 999
    combined = mk_facet(label, a, other)
    expected = project(a, view) if view.can_see(label) else other
    assert project(combined, view) == expected


@given(faceted_ints())
@settings(max_examples=80)
def test_leaf_enumeration_consistent_with_projection(value):
    for branches, leaf in iter_leaves(value):
        polarity = {}
        contradictory = False
        for branch in branches:
            if branch.label in polarity and polarity[branch.label] != branch.positive:
                contradictory = True
                break
            polarity[branch.label] = branch.positive
        if contradictory:
            # Hand-built facets may nest the same label twice; such leaves are
            # unreachable under any view.
            continue
        view = View({label for label, positive in polarity.items() if positive})
        assert project(value, view) == leaf
