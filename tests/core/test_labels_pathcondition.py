"""Tests for labels, branches, views and path conditions."""

import pytest

from repro.core.errors import PathConditionError
from repro.core.labels import Branch, Label, View, branches_visible_to
from repro.core.pathcondition import EMPTY_PC, PathCondition


def test_labels_are_fresh_even_with_same_hint():
    assert Label("k") != Label("k")
    named = Label(name="fixed")
    assert named == Label(name="fixed")
    assert hash(named) == hash(Label(name="fixed"))


def test_label_ordering_is_by_name():
    assert sorted([Label(name="b"), Label(name="a")])[0].name == "a"


def test_branch_negation_and_visibility():
    k = Label("k")
    positive = Branch(k, True)
    assert positive.negate() == Branch(k, False)
    assert positive.visible_to(View({k}))
    assert not positive.visible_to(View(set()))
    assert positive.negate().visible_to(View(set()))


def test_branch_requires_label():
    with pytest.raises(TypeError):
        Branch("not a label", True)


def test_view_operations():
    k, m = Label("k"), Label("m")
    view = View({k})
    assert view.can_see(k) and not view.can_see(m)
    assert view.with_label(m).can_see(m)
    assert not view.without_label(k).can_see(k)
    assert View.from_assignment({k: True, m: False}) == View({k})


def test_branches_visible_to_requires_all():
    k, m = Label("k"), Label("m")
    branches = [Branch(k, True), Branch(m, False)]
    assert branches_visible_to(branches, View({k}))
    assert not branches_visible_to(branches, View({k, m}))


def test_pathcondition_extension_and_queries():
    k, m = Label("k"), Label("m")
    pc = EMPTY_PC.extend(Branch(k, True))
    assert pc.contains(Branch(k, True))
    assert pc.has_label(k) and not pc.has_label(m)
    assert pc.polarity_of(k) is True
    assert pc.polarity_of(m) is None
    assert len(pc.extend(Branch(k, True))) == 1  # idempotent
    assert pc.labels() == {k}


def test_pathcondition_rejects_contradiction():
    k = Label("k")
    pc = EMPTY_PC.extend(Branch(k, True))
    with pytest.raises(PathConditionError):
        pc.extend(Branch(k, False))


def test_pathcondition_consistency_and_visibility():
    k, m = Label("k"), Label("m")
    pc = PathCondition([Branch(k, True)])
    assert pc.consistent_with([Branch(k, True), Branch(m, False)])
    assert not pc.consistent_with([Branch(k, False)])
    assert pc.visible_to(View({k}))
    assert not pc.visible_to(View(set()))
    assert EMPTY_PC.visible_to(View(set()))


def test_pathcondition_equality_ignores_order():
    k, m = Label("k"), Label("m")
    first = PathCondition([Branch(k, True), Branch(m, False)])
    second = PathCondition([Branch(m, False), Branch(k, True)])
    assert first == second
    assert hash(first) == hash(second)
    assert bool(first) and not bool(EMPTY_PC)
