"""Unit and property tests for the boolean formula layer."""

import pytest
from hypothesis import given, strategies as st

from repro.solver.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
    from_bool,
    nnf,
)


def test_constants_evaluate():
    assert TRUE.evaluate({}) is True
    assert FALSE.evaluate({}) is False


def test_var_evaluation_and_missing_variable():
    formula = Var("k")
    assert formula.evaluate({"k": True}) is True
    assert formula.evaluate({"k": False}) is False
    with pytest.raises(KeyError):
        formula.evaluate({})


def test_connective_evaluation():
    k, m = Var("k"), Var("m")
    env = {"k": True, "m": False}
    assert And(k, m).evaluate(env) is False
    assert Or(k, m).evaluate(env) is True
    assert Not(m).evaluate(env) is True
    assert Implies(k, m).evaluate(env) is False
    assert Implies(m, k).evaluate(env) is True
    assert Iff(k, m).evaluate(env) is False
    assert Iff(k, k).evaluate(env) is True


def test_operator_overloads_build_connectives():
    k, m = Var("k"), Var("m")
    assert isinstance(k & m, And)
    assert isinstance(k | m, Or)
    assert isinstance(~k, Not)
    assert isinstance(k >> m, Implies)


def test_free_vars():
    formula = Implies(Var("a"), And(Var("b"), Not(Var("c"))))
    assert formula.free_vars() == {"a", "b", "c"}
    assert TRUE.free_vars() == frozenset()


def test_simplify_constant_folding():
    k = Var("k")
    assert And(TRUE, k).simplify() == k
    assert And(FALSE, k).simplify() == FALSE
    assert Or(FALSE, k).simplify() == k
    assert Or(TRUE, k).simplify() == TRUE
    assert Not(Not(k)).simplify() == k
    assert Implies(FALSE, k).simplify() == TRUE
    assert Implies(k, TRUE).simplify() == TRUE
    assert Iff(k, k).simplify() == TRUE


def test_partial_evaluate_keeps_unknowns():
    formula = And(Var("a"), Var("b"))
    reduced = formula.partial_evaluate({"a": True})
    assert reduced == Var("b")
    assert formula.partial_evaluate({"a": False}) == FALSE


def test_substitute():
    formula = Or(Var("a"), Var("b"))
    substituted = formula.substitute({"a": FALSE})
    assert substituted == Var("b")


def test_conj_disj_identities():
    assert conj([]) == TRUE
    assert disj([]) == FALSE
    assert conj([True, Var("x")]) == Var("x")
    assert disj([False, Var("x")]) == Var("x")


def test_from_bool_rejects_non_boolean():
    with pytest.raises(TypeError):
        from_bool("yes")


def test_immutability():
    with pytest.raises(AttributeError):
        Var("k").name = "other"
    with pytest.raises(AttributeError):
        TRUE.value = False


# -- property tests ----------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])


def formulas(depth=3):
    base = st.one_of(_names.map(Var), st.just(TRUE), st.just(FALSE))
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: And(*pair)),
            st.tuples(children, children).map(lambda pair: Or(*pair)),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
            st.tuples(children, children).map(lambda pair: Iff(*pair)),
            children.map(Not),
        ),
        max_leaves=depth * 4,
    )


_assignments = st.fixed_dictionaries(
    {"a": st.booleans(), "b": st.booleans(), "c": st.booleans(), "d": st.booleans()}
)


@given(formulas(), _assignments)
def test_simplify_preserves_semantics(formula, assignment):
    assert formula.simplify().evaluate(assignment) == formula.evaluate(assignment)


@given(formulas(), _assignments)
def test_nnf_preserves_semantics(formula, assignment):
    assert nnf(formula).evaluate(assignment) == formula.evaluate(assignment)


@given(formulas())
def test_nnf_negations_only_on_variables(formula):
    def check(node):
        if isinstance(node, Not):
            assert isinstance(node.operand, (Var, Const))
        for attr in ("left", "right", "operand"):
            child = getattr(node, attr, None)
            if child is not None:
                check(child)

    check(nnf(formula))
