"""Tests for CNF conversion and the DPLL solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.cnf import CNF, is_tseitin_var, to_cnf, tseitin
from repro.solver.dpll import DPLLSolver, solve
from repro.solver.formula import FALSE, TRUE, And, Iff, Implies, Not, Or, Var

from tests.solver.test_formula import formulas, _assignments


def brute_force_satisfiable(formula):
    names = sorted(formula.free_vars())
    for values in itertools.product([False, True], repeat=len(names)):
        if formula.evaluate(dict(zip(names, values))):
            return True
    return False if names else formula.evaluate({})


def test_to_cnf_simple_equivalence():
    formula = Implies(Var("a"), Var("b"))
    cnf = to_cnf(formula)
    for a in (True, False):
        for b in (True, False):
            assert cnf.evaluate({"a": a, "b": b}) == formula.evaluate({"a": a, "b": b})


def test_cnf_empty_and_contradiction():
    assert len(to_cnf(TRUE)) == 0
    contradiction = to_cnf(FALSE)
    assert solve(contradiction) is None


def test_dpll_finds_model_for_satisfiable_instance():
    formula = And(Or(Var("a"), Var("b")), Or(Not(Var("a")), Var("c")))
    model = solve(to_cnf(formula))
    assert model is not None
    assert formula.evaluate({name: model.get(name, False) for name in "abc"})


def test_dpll_detects_unsat():
    formula = And(Var("a"), Not(Var("a")))
    assert solve(to_cnf(formula)) is None


def test_preference_is_respected_when_free():
    # Both values satisfy the formula; preference decides.
    formula = Or(Var("a"), Not(Var("a")))
    model_true = solve(to_cnf(formula), prefer={"a": True})
    model_false = solve(to_cnf(formula), prefer={"a": False})
    assert model_true["a"] is True
    assert model_false["a"] is False


def test_preference_cannot_override_constraints():
    formula = Not(Var("a"))
    model = solve(to_cnf(formula), prefer={"a": True})
    assert model["a"] is False


def test_tseitin_variables_are_marked():
    cnf = tseitin(Or(And(Var("a"), Var("b")), Var("c")))
    auxiliary = [name for name in cnf.variables() if is_tseitin_var(name)]
    assert auxiliary, "Tseitin transformation should introduce fresh variables"
    for name in ("a", "b", "c"):
        assert not is_tseitin_var(name)


def test_solver_statistics_populated():
    formula = And(Or(Var("a"), Var("b")), Or(Not(Var("a")), Not(Var("b"))))
    solver = DPLLSolver(to_cnf(formula))
    assert solver.solve() is not None
    assert solver.statistics["propagations"] >= 0
    assert solver.statistics["decisions"] >= 0


# -- property tests -------------------------------------------------------------------


@given(formulas(), _assignments)
@settings(max_examples=60)
def test_direct_cnf_is_equivalent(formula, assignment):
    cnf = to_cnf(formula)
    assert cnf.evaluate(dict(assignment)) == formula.evaluate(assignment)


@given(formulas())
@settings(max_examples=60)
def test_dpll_agrees_with_brute_force_on_satisfiability(formula):
    cnf = to_cnf(formula)
    model = solve(cnf)
    expected = brute_force_satisfiable(formula)
    assert (model is not None) == expected
    if model is not None:
        total = {name: model.get(name, False) for name in formula.free_vars()}
        assert formula.evaluate(total)


@given(formulas())
@settings(max_examples=60)
def test_tseitin_equisatisfiable(formula):
    assert (solve(tseitin(formula)) is not None) == brute_force_satisfiable(formula)
