"""Tests for the label assignment front end (k => policy_k systems)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.assignment import LabelAssigner, UnsatisfiableError
from repro.solver.formula import FALSE, TRUE, And, Implies, Not, Or, Var


def test_independent_policies_resolve_directly():
    assigner = LabelAssigner()
    result = assigner.assign({"k1": TRUE, "k2": FALSE})
    assert result["k1"] is True
    assert result["k2"] is False


def test_show_maximising_preference():
    # k may be shown; the solver should prefer showing it.
    assigner = LabelAssigner()
    assert assigner.assign({"k": TRUE})["k"] is True


def test_mutually_dependent_policies():
    # Policy for k requires k itself (the guest-list-guards-itself example):
    # both all-False and all-True satisfy k => k; prefer True.
    assigner = LabelAssigner()
    result = assigner.assign({"k": Var("k")})
    assert result["k"] is True


def test_mutual_exclusion_between_labels():
    # k1 may be shown only if k2 is hidden and vice versa.
    assigner = LabelAssigner()
    result = assigner.assign({"k1": Not(Var("k2")), "k2": Not(Var("k1"))})
    assert result["k1"] != result["k2"] or (not result["k1"] and not result["k2"])
    # The constraint system must hold.
    assert (not result["k1"]) or (not result["k2"])


def test_chained_dependencies():
    assigner = LabelAssigner()
    result = assigner.assign({"k1": Var("k2"), "k2": Var("k3"), "k3": TRUE})
    assert result == {"k1": True, "k2": True, "k3": True}


def test_forced_hidden_propagates():
    assigner = LabelAssigner()
    result = assigner.assign({"k1": Var("k2"), "k2": FALSE})
    assert result["k2"] is False
    assert result["k1"] is False


def test_extra_constraints_can_make_unsat():
    assigner = LabelAssigner()
    assigner.add_constraint(Var("k"))
    assigner.add_constraint(Not(Var("k")))
    with pytest.raises(UnsatisfiableError):
        assigner.assign({"k": TRUE})


def test_greedy_strategy_matches_solver_on_independent_policies():
    policies = {"a": TRUE, "b": FALSE, "c": TRUE}
    assigner = LabelAssigner()
    assert assigner.assign(policies) == assigner.assign_greedy(policies)


_label_names = ["k1", "k2", "k3"]


def _policy_formulas():
    atoms = st.one_of(
        st.just(TRUE),
        st.just(FALSE),
        st.sampled_from(_label_names).map(Var),
        st.sampled_from(_label_names).map(lambda name: Not(Var(name))),
    )
    return st.one_of(
        atoms,
        st.tuples(atoms, atoms).map(lambda pair: And(*pair)),
        st.tuples(atoms, atoms).map(lambda pair: Or(*pair)),
    )


@given(st.fixed_dictionaries({name: _policy_formulas() for name in _label_names}))
@settings(max_examples=80)
def test_assignment_always_satisfies_every_policy_constraint(policies):
    """For every label k, the produced assignment satisfies k => policy_k."""
    assigner = LabelAssigner()
    result = assigner.assign(policies)
    env = {name: result.get(name, False) for name in _label_names}
    for name, policy in policies.items():
        if env[name]:
            assert policy.evaluate(env), f"constraint violated for {name}"
