"""Tests for the s-expression parser and pretty printer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lambda_jdb import parse, parse_program, pretty, ParseError
from repro.lambda_jdb import ast
from repro.lambda_jdb.parser import read_sexprs, tokenize
from repro.lambda_jdb.pprint import pretty_value
from repro.lambda_jdb.values import Closure, FacetV, TableV


def test_tokenize_strings_and_comments():
    tokens = tokenize('(row "hello world") ; trailing comment\n(+ 1 2)')
    assert '"hello world' in tokens
    assert ";" not in "".join(tokens)


def test_tokenize_unterminated_string():
    with pytest.raises(ParseError):
        tokenize('(row "oops)')


def test_parse_atoms():
    assert parse("42") == ast.Const(42)
    assert parse("true") == ast.Const(True)
    assert parse("false") == ast.Const(False)
    assert parse("unit") == ast.Const(None)
    assert parse('"text"') == ast.Const("text")
    assert parse("x") == ast.Var("x")


def test_parse_core_forms():
    assert isinstance(parse("(lambda (x) x)"), ast.Lam)
    assert isinstance(parse("(let x 1 x)"), ast.Let)
    assert isinstance(parse("(facet k 1 2)"), ast.FacetExpr)
    assert isinstance(parse("(label k 1)"), ast.LabelDecl)
    assert isinstance(parse("(restrict k (lambda (v) true))"), ast.Restrict)
    assert isinstance(parse("(ref 1)"), ast.Ref)
    assert isinstance(parse("(deref x)"), ast.Deref)
    assert isinstance(parse("(assign x 1)"), ast.Assign)
    assert isinstance(parse('(row "a")'), ast.Row)
    assert isinstance(parse("(select 0 1 t)"), ast.Select)
    assert isinstance(parse("(project (0 1) t)"), ast.Project)
    assert isinstance(parse("(join a b)"), ast.Join)
    assert isinstance(parse("(union a b)"), ast.Union)
    assert isinstance(parse("(fold f i t)"), ast.Fold)
    assert isinstance(parse('(print "v" x)'), ast.Print)
    assert isinstance(parse("(if a b c)"), ast.If)
    assert isinstance(parse("(+ 1 2)"), ast.BinOp)


def test_parse_application_curries():
    expr = parse("(f a b)")
    assert isinstance(expr, ast.App)
    assert isinstance(expr.fn, ast.App)


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("(let x 1)")  # missing body
    with pytest.raises(ParseError):
        parse("(lambda x x)")  # parameter list missing
    with pytest.raises(ParseError):
        parse("(select a 1 t)")  # non-integer index
    with pytest.raises(ParseError):
        parse("(+ 1 2) (+ 3 4)")  # two expressions for parse()
    with pytest.raises(ParseError):
        parse("(")
    with pytest.raises(ParseError):
        parse(")")


def test_parse_program_returns_all_statements():
    program = parse_program("(+ 1 2) (print \"v\" 3)")
    assert len(program) == 2


def test_read_sexprs_nested():
    assert read_sexprs("(a (b c) d)") == [["a", ["b", "c"], "d"]]


def test_free_vars_and_size_helpers():
    expr = parse("(lambda (x) (+ x y))")
    assert ast.free_vars(expr) == {"y"}
    assert ast.expr_size(expr) >= 3
    labelled = parse("(label k (facet k 1 2))")
    assert ast.mentioned_labels(labelled) == {"k"}


def test_pretty_value_renders_facets_tables_closures():
    assert "k" in pretty_value(FacetV("k", 1, 2))
    assert "table[" in pretty_value(TableV(((frozenset({("k", False)}), ("a",)),)))
    assert "lambda" in pretty_value(Closure("x", ast.Var("x"), ()))


# Round-trip property: pretty-printing then parsing yields the same AST.

_atoms = st.one_of(
    st.integers(min_value=0, max_value=9).map(ast.Const),
    st.sampled_from(["x", "y", "z"]).map(ast.Var),
    st.sampled_from(["hello", "a b", ""]).map(ast.Const),
    st.booleans().map(ast.Const),
)


def _exprs():
    return st.recursive(
        _atoms,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: ast.BinOp("+", *pair)),
            st.tuples(children, children).map(lambda pair: ast.App(*pair)),
            children.map(lambda child: ast.Lam("x", child)),
            st.tuples(children, children).map(
                lambda pair: ast.FacetExpr("k", pair[0], pair[1])
            ),
            st.tuples(children, children, children).map(lambda t: ast.If(*t)),
            children.map(lambda child: ast.Row((child,))),
            st.tuples(children, children).map(lambda pair: ast.Let("v", *pair)),
        ),
        max_leaves=8,
    )


@given(_exprs())
@settings(max_examples=80)
def test_pretty_parse_round_trip(expr):
    assert parse(pretty(expr)) == expr
