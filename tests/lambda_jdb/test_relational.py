"""Tests for λJDB's relational operators over faceted tables."""

import pytest

from repro.lambda_jdb import EvalError, evaluate, parse
from repro.lambda_jdb.values import FacetV, TableV, make_facet_value


def run(source, **kwargs):
    return evaluate(parse(source), **kwargs)


def rows_of(value):
    assert isinstance(value, TableV)
    return {(frozenset(branches), fields) for branches, fields in value.rows}


def test_row_creates_single_row_table():
    value, _ = run('(row "Alice" "Smith")')
    assert rows_of(value) == {(frozenset(), ("Alice", "Smith"))}


def test_row_coerces_scalars_to_strings():
    value, _ = run("(row 1 true unit)")
    assert list(value.rows)[0][1] == ("1", "true", "")


def test_union_appends_tables():
    value, _ = run('(union (row "a") (row "b"))')
    assert {fields for _branches, fields in value.rows} == {("a",), ("b",)}


def test_select_filters_on_column_equality():
    value, _ = run('(select 0 1 (union (row "x" "x") (row "x" "y")))')
    assert {fields for _branches, fields in value.rows} == {("x", "x")}


def test_project_keeps_columns():
    value, _ = run('(project (1) (row "a" "b" "c"))')
    assert {fields for _branches, fields in value.rows} == {("b",)}


def test_project_out_of_range_is_stuck():
    with pytest.raises(EvalError):
        run('(project (7) (row "a"))')


def test_join_is_cross_product_with_branch_union():
    value, _ = run('(join (union (row "a") (row "b")) (row "1" "2"))')
    assert {fields for _branches, fields in value.rows} == {("a", "1", "2"), ("b", "1", "2")}


def test_faceted_table_representation_shares_common_rows():
    """The ⟨⟨k ? T1 : T2⟩⟩ operation annotates only differing rows (Section 4.2)."""
    value, _ = run(
        '(label k (facet k (union (row "shared") (row "secret")) (row "shared")))'
    )
    rows = rows_of(value)
    assert (frozenset(), ("shared",)) in rows
    secret_rows = [row for row in rows if row[1] == ("secret",)]
    assert len(secret_rows) == 1
    (branches, _fields) = secret_rows[0]
    assert len(branches) == 1 and next(iter(branches))[1] is True


def test_faceted_row_from_paper_example():
    value, _ = run('(label k (facet k (row "Alice" "Smith") (row "Bob" "Jones")))')
    rows = rows_of(value)
    annotations = {fields: branches for branches, fields in rows}
    assert set(annotations) == {("Alice", "Smith"), ("Bob", "Jones")}
    alice_branch = next(iter(annotations[("Alice", "Smith")]))
    bob_branch = next(iter(annotations[("Bob", "Jones")]))
    assert alice_branch[1] is True and bob_branch[1] is False
    assert alice_branch[0] == bob_branch[0]


def test_mixing_tables_and_scalars_in_a_facet_is_stuck():
    with pytest.raises((EvalError, TypeError)):
        run('(label k (facet k 3 (row "Alice")))')


def test_selection_on_faceted_table_guards_results():
    value, _ = run(
        '(label k (select 0 1 (facet k (row "x" "x") (row "x" "y"))))'
    )
    rows = rows_of(value)
    assert len(rows) == 1
    branches, fields = next(iter(rows))
    assert fields == ("x", "x")
    assert next(iter(branches))[1] is True


def test_fold_sums_rows():
    value, _ = run(
        """
        (fold (lambda (r) (lambda (acc) (+ acc 1))) 0
              (union (row "a") (union (row "b") (row "c"))))
        """
    )
    assert value == 3


def test_fold_over_faceted_table_produces_faceted_result():
    value, _ = run(
        """
        (label k
          (fold (lambda (r) (lambda (acc) (+ acc 1))) 0
                (facet k (union (row "a") (row "b")) (row "a"))))
        """
    )
    assert isinstance(value, FacetV)
    assert value.high == 2 and value.low == 1


def test_fold_membership_check_on_guest_list():
    value, _ = run(
        """
        (label k
          (let guests (facet k (union (row "alice") (row "bob")) (row "alice"))
            (fold (lambda (r) (lambda (acc) (or acc (== r "bob")))) false guests)))
        """
    )
    assert isinstance(value, FacetV)
    assert value.high is True and value.low is False


def test_fold_receives_multi_column_rows_as_tuples():
    # The formal rules fold the tail before applying the head row, so the
    # head row's contribution is appended last.
    value, _ = run(
        """
        (fold (lambda (r) (lambda (acc) (+ acc (field r 1)))) ""
              (union (row "a" "1") (row "b" "2")))
        """
    )
    assert value == "21"


def test_fold_inconsistent_rows_are_skipped_under_pc():
    # Inside the high branch of k, rows annotated ¬k are ignored.
    value, _ = run(
        """
        (label k
          (let t (facet k (row "secret") (row "public"))
            (facet k (fold (lambda (r) (lambda (acc) (+ acc 1))) 0 t) 99)))
        """
    )
    assert isinstance(value, FacetV)
    assert value.high == 1 and value.low == 99


def test_select_arity_error_is_stuck():
    with pytest.raises(EvalError):
        run('(select 0 5 (row "only"))')


def test_make_facet_value_rejects_mixed_kinds_directly():
    with pytest.raises(TypeError):
        make_facet_value("k", TableV(()), 3)


def test_early_pruning_drops_invisible_rows():
    source = '(label k (facet k (fold (lambda (r) (lambda (acc) (+ acc 1))) 0 (facet k (row "a") (union (row "b") (row "c")))) 0))'
    pruned_value, _ = evaluate(parse(source), early_pruning=True)
    unpruned_value, _ = evaluate(parse(source), early_pruning=False)
    # Both agree on observable results (F-PRUNE preserves projections).
    assert pruned_value.high == unpruned_value.high == 1
    assert pruned_value.low == unpruned_value.low == 0
