"""Unit tests for the λJDB big-step interpreter (non-relational core)."""

import pytest

from repro.lambda_jdb import (
    App,
    Assign,
    BinOp,
    Const,
    Deref,
    EvalError,
    FacetExpr,
    If,
    Interpreter,
    LabelDecl,
    Lam,
    Let,
    Print,
    Ref,
    Restrict,
    Var,
    evaluate,
    parse,
)
from repro.lambda_jdb.values import FacetV, TableV


def run(source, **kwargs):
    return evaluate(parse(source), **kwargs)


def test_constants_and_let():
    value, _ = run("(let x 41 (+ x 1))")
    assert value == 42


def test_lambda_application_and_currying():
    value, _ = run("(((lambda (x) (lambda (y) (+ x y))) 2) 3)")
    assert value == 5


def test_unbound_variable_is_stuck():
    with pytest.raises(EvalError):
        run("missing")


def test_if_on_plain_booleans():
    assert run("(if true 1 2)")[0] == 1
    assert run('(if (== "a" "b") 1 2)')[0] == 2


def test_binop_coverage():
    assert run("(- 7 2)")[0] == 5
    assert run("(* 3 4)")[0] == 12
    assert run("(< 1 2)")[0] is True
    assert run("(>= 2 2)")[0] is True
    assert run("(and true false)")[0] is False
    assert run("(or false true)")[0] is True
    assert run('(+ "ab" "cd")')[0] == "abcd"
    assert run("(!= 1 2)")[0] is True
    assert run("(<= 3 2)")[0] is False
    assert run("(> 3 2)")[0] is True


def test_unknown_binop_is_stuck():
    with pytest.raises(EvalError):
        evaluate(BinOp("^", Const(1), Const(2)))


def test_references_allocate_read_and_assign():
    value, _ = run("(let r (ref 1) (let _ (assign r 5) (deref r)))")
    assert value == 5


def test_deref_distributes_over_faceted_addresses():
    from repro.lambda_jdb.views import make_view, project_value

    value, interp = run(
        "(label k (let r (if (facet k true false) (ref 5) (ref 7)) (deref r)))"
    )
    assert isinstance(value, FacetV)
    label = value.label
    # The authorised view reads the cell written in its branch; the other view
    # reads the other cell (F-REF guards the initial write with the pc).
    assert project_value(value, make_view({label})) == 5
    assert project_value(value, make_view(set())) == 7


def test_deref_of_unbound_address_is_null():
    from repro.lambda_jdb.values import Address, EMPTY_PC

    interp = Interpreter()
    assert interp._deref_raw(Address(999), EMPTY_PC) is None


def test_facet_expression_builds_faceted_value():
    value, _ = run("(label k (facet k 1 2))")
    assert isinstance(value, FacetV)
    assert value.high == 1 and value.low == 2


def test_facet_left_right_rules_short_circuit():
    # Nested facet on the same label: inner one follows the outer branch.
    value, _ = run("(label k (facet k (facet k 1 2) (facet k 3 4)))")
    assert isinstance(value, FacetV)
    assert value.high == 1
    assert value.low == 4


def test_strict_context_distributes_over_facets():
    value, _ = run("(label k (+ 1 (facet k 10 20)))")
    assert isinstance(value, FacetV)
    assert value.high == 11 and value.low == 21


def test_faceted_function_application():
    value, _ = run(
        "(label k ((facet k (lambda (x) (+ x 1)) (lambda (x) (- x 1))) 10))"
    )
    assert value.high == 11 and value.low == 9


def test_assignment_under_facet_guards_the_heap():
    value, interp = run(
        """
        (label k
          (let r (ref 0)
            (let _ (if (facet k true false) (assign r 1) 0)
              (deref r))))
        """
    )
    assert isinstance(value, FacetV)
    assert value.high == 1 and value.low == 0


def test_label_declaration_freshens_names():
    value, _ = run("(label k (label k (facet k 1 2)))")
    assert isinstance(value, FacetV)
    # The inner declaration shadows the outer one with a fresh runtime name.
    assert value.label.startswith("k$")


def test_print_respects_policy():
    value, interp = run(
        """
        (label k
          (let v (facet k "secret" "public")
            (let _ (restrict k (lambda (viewer) (== viewer "alice")))
              (print "alice" v))))
        """
    )
    assert value == "secret"
    assert interp.outputs == [("alice", "secret")]

    value, interp = run(
        """
        (label k
          (let v (facet k "secret" "public")
            (let _ (restrict k (lambda (viewer) (== viewer "alice")))
              (print "bob" v))))
        """
    )
    assert value == "public"


def test_print_with_no_policy_defaults_to_show():
    value, _ = run('(label k (print "anyone" (facet k "secret" "public")))')
    assert value == "secret"


def test_restrict_conjoins_policies():
    value, _ = run(
        """
        (label k
          (let v (facet k 1 0)
            (let _ (restrict k (lambda (viewer) (== viewer "alice")))
              (let _ (restrict k (lambda (viewer) false))
                (print "alice" v)))))
        """
    )
    assert value == 0


def test_policy_depending_on_secret_value_mutual_dependency():
    # The policy for k consults a value guarded by k itself.
    value, _ = run(
        """
        (label k
          (let v (facet k "alice" "nobody")
            (let _ (restrict k (lambda (viewer) (== viewer v)))
              (print "alice" v))))
        """
    )
    assert value == "alice"


def test_divergent_programs_are_cut_off():
    omega = "(let w (lambda (x) (x x)) (w w))"
    with pytest.raises((EvalError, RecursionError)):
        evaluate(parse(omega), early_pruning=False)


def test_step_budget_is_enforced():
    interp = Interpreter(max_steps=10)
    with pytest.raises(EvalError):
        interp.run(parse("(+ (+ 1 2) (+ (+ 3 4) (+ 5 (+ 6 7))))"))


def test_run_with_initial_environment():
    interp = Interpreter()
    assert interp.run(parse("(+ x 1)"), env={"x": 41}) == 42
